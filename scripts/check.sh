#!/usr/bin/env bash
# Tier-1 gate, fully offline: everything resolves against the in-repo
# shims (see shims/README.md), so no network or registry access is needed.
#
#   scripts/check.sh            # build + tests + release property/kernel
#                               # equivalence suite + fmt + clippy + audit
#   scripts/check.sh --quick    # tier-1 subset: build + debug tests +
#                               # release decode-equivalence subset + audit
#   scripts/check.sh --fast     # alias for --quick (kept for muscle memory)
#   scripts/check.sh --audit    # just the szx-audit static-analysis pass,
#                               # refreshing results/AUDIT.json
#   scripts/check.sh --fuzz     # long differential fuzz campaign (in-tree
#                               # engine), minimized findings saved to
#                               # tests/corpus/; FUZZ_SECS / FUZZ_SEED /
#                               # FUZZ_ITERS tune the budget
#   scripts/check.sh --sanitize # nightly-only ASan (and TSan when rust-src
#                               # is installed) over the unsafe surface;
#                               # skips gracefully when nightly is absent
#
# Run from anywhere; the script cd's to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Keep cargo away from the network: the workspace pins every external
# dependency to a local path shim, so an offline build must succeed.
export CARGO_NET_OFFLINE=true

# In-tree static analysis (crates/szx-audit): unsafe hygiene, call-graph
# panic reachability from the decode entry points (full call chains in the
# output), hot-loop allocation, checked parse-path arithmetic, and the
# trace-buffer atomics protocol. Prints per-rule finding counts, exits
# non-zero on any finding, refreshes the committed report (CI diffs it for
# freshness), and writes a SARIF 2.1.0 report for code-scanning upload.
run_audit() {
    echo "==> szx-audit (unsafe/panic-reach/alloc/arith/atomics audit)"
    mkdir -p target
    cargo run -q --release -p szx-audit -- \
        --json results/AUDIT.json --sarif target/AUDIT.sarif
}

# Metrics-exposition smoke: one tiny compress with every observability
# artifact requested must yield a Prometheus exposition, a JSON-lines event
# log, and a run manifest the observatory comparator accepts (compared
# against itself: zero regressions, exit 0).
#
# Every step checks its own exit status instead of leaning on `set -e`:
# `set -e` is silently disabled inside a function invoked from any guarded
# context (`if run_obs_smoke`, `run_obs_smoke || ...`), which once let a
# partially built target dir run a stale szx-cli binary, fail the schema
# validate, and still report the gate green. The explicit up-front build
# also guarantees `cargo run -q` below executes today's binaries, not
# whatever an interrupted earlier build left behind.
run_obs_smoke() {
    echo "==> szx metrics-exposition smoke"
    local dir
    dir="$(mktemp -d)"
    obs_fail() {
        echo "==> FAIL obs smoke: $1" >&2
        rm -rf "$dir"
        exit 1
    }
    cargo build -q --release -p szx-cli -p bench \
        || obs_fail "building szx-cli/bench"
    cargo run -q --release -p szx-cli -- gen cesm "$dir/fields" --scale tiny >/dev/null \
        || obs_fail "generating tiny CESM fields"
    local field
    field="$(find "$dir/fields" -name '*.f32' | sort | head -1)"
    [[ -n "$field" ]] || obs_fail "no .f32 field generated"
    cargo run -q --release -p szx-cli -- compress "$field" "$dir/out.szx" \
        --abs 1e-3 --metrics "$dir/m.prom" --events "$dir/e.jsonl" \
        --manifest "$dir/run.json" >/dev/null \
        || obs_fail "compress with observability artifacts"
    grep -q '^# TYPE szx_compress_bytes_raw_total counter$' "$dir/m.prom" \
        || obs_fail "metrics exposition missing bytes_raw counter"
    grep -q '^# TYPE szx_process_peak_rss_bytes gauge$' "$dir/m.prom" \
        || obs_fail "metrics exposition missing peak-RSS gauge"
    grep -q '"event":"run.start"' "$dir/e.jsonl" \
        || obs_fail "event log missing run.start"
    cargo run -q --release -p bench --bin observatory -- \
        validate "$dir/run.json" >/dev/null \
        || obs_fail "observatory schema validate"
    cargo run -q --release -p bench --bin observatory -- \
        compare "$dir/run.json" "$dir/run.json" \
        || obs_fail "observatory self-compare"
    rm -rf "$dir"
}

# Profiler smoke: compress ~8 MB of CESM data with --profile and assert the
# folded output is non-empty with every frame name resolved. The sampler is
# run above its default rate so even a fast machine lands well over the
# handful of ticks the assertion needs; an unresolved frame renders as
# "??<id>" and means the zone-slot publish protocol leaked a bad name id.
run_profile_smoke() {
    echo "==> szx profiler smoke (--profile on ~8 MB CESM)"
    local dir
    dir="$(mktemp -d)"
    prof_fail() {
        echo "==> FAIL profile smoke: $1" >&2
        rm -rf "$dir"
        exit 1
    }
    cargo build -q --release -p szx-cli \
        || prof_fail "building szx-cli"
    cargo run -q --release -p szx-cli -- gen cesm "$dir/fields" --scale large >/dev/null \
        || prof_fail "generating large CESM fields"
    # One large field is ~6.5 MB; concatenate to cross 8 MB so the compress
    # spans dozens of sampler ticks. head reads from a process substitution
    # rather than a pipeline: the suite is far bigger than 16 MB, so a
    # `cat | head -c` pipeline always ends in cat taking SIGPIPE, which
    # `set -o pipefail` (correctly) reports as failure.
    head -c 16000000 <(cat "$dir"/fields/*.f32) > "$dir/big.f32" \
        || prof_fail "assembling 16 MB input"
    SZX_PROFILE_HZ=4000 cargo run -q --release -p szx-cli -- \
        compress "$dir/big.f32" "$dir/out.szx" --abs 1e-3 \
        --profile "$dir/p.folded" --profile-svg "$dir/p.svg" >/dev/null \
        || prof_fail "compress with --profile"
    [[ -s "$dir/p.folded" ]] \
        || prof_fail "folded profile is empty (no samples accumulated)"
    grep -Eq '^[^ ]+ [0-9]+$' "$dir/p.folded" \
        || prof_fail "folded profile is not in collapsed-stack format"
    if grep -q '??' "$dir/p.folded"; then
        prof_fail "unresolved frame id in folded profile (zone-slot protocol bug)"
    fi
    grep -q '</svg>' "$dir/p.svg" \
        || prof_fail "SVG flamegraph is truncated"
    # On hosts with the ISA extension the explicit SIMD path must show up
    # in the profile under its own zone — that attribution is how a perf
    # regression in dispatch (silently falling back to the portable kernel)
    # becomes visible. Skipped elsewhere: Auto resolves to the portable
    # kernel there and no simd zone can exist.
    if grep -q '^flags.* avx2' /proc/cpuinfo 2>/dev/null; then
        SZX_PROFILE_HZ=4000 cargo run -q --release -p szx-cli -- \
            compress "$dir/big.f32" "$dir/out2.szx" --abs 1e-3 \
            --kernel simd --profile "$dir/ps.folded" >/dev/null \
            || prof_fail "compress with --kernel simd --profile"
        grep -q 'compress\.simd' "$dir/ps.folded" \
            || prof_fail "no compress.simd zone in the folded profile (simd dispatch fell back?)"
    fi
    rm -rf "$dir"
}

# SIMD equivalence gate: the explicit AVX2/NEON path must be byte-identical
# to the portable kernel and the scalar oracle — same compressed stream,
# same decode bits, same error messages. Release mode only: the intrinsic
# kernels and the autovectorized portable kernels both need optimizations
# to exercise their real codegen. Also proves the CLI-level plumbing end to
# end with a stream `cmp` across --kernel selections.
run_simd_equivalence() {
    echo "==> SIMD equivalence (scalar vs kernel vs simd, release)"
    cargo test -q --release -p szx-core simd \
        || { echo "==> FAIL szx-core simd equivalence tests" >&2; exit 1; }
    cargo test -q --release -p szx-integration-tests --test simd_dispatch \
        || { echo "==> FAIL simd dispatch integration tests" >&2; exit 1; }
    local dir
    dir="$(mktemp -d)"
    simd_fail() {
        echo "==> FAIL simd equivalence: $1" >&2
        rm -rf "$dir"
        exit 1
    }
    cargo build -q --release -p szx-cli \
        || simd_fail "building szx-cli"
    cargo run -q --release -p szx-cli -- gen cesm "$dir/fields" --scale small >/dev/null \
        || simd_fail "generating small CESM fields"
    local field
    field="$(find "$dir/fields" -name '*.f32' | sort | head -1)"
    [[ -n "$field" ]] || simd_fail "no .f32 field generated"
    local sel
    for sel in scalar kernel simd; do
        cargo run -q --release -p szx-cli -- compress "$field" \
            "$dir/$sel.szx" --abs 1e-3 --kernel "$sel" >/dev/null \
            || simd_fail "compress --kernel $sel"
        cargo run -q --release -p szx-cli -- decompress "$dir/$sel.szx" \
            "$dir/$sel.f32" --kernel "$sel" >/dev/null \
            || simd_fail "decompress --kernel $sel"
    done
    cmp -s "$dir/scalar.szx" "$dir/kernel.szx" \
        || simd_fail "scalar and kernel streams differ"
    cmp -s "$dir/scalar.szx" "$dir/simd.szx" \
        || simd_fail "scalar and simd streams differ"
    cmp -s "$dir/scalar.f32" "$dir/simd.f32" \
        || simd_fail "scalar and simd decodes differ bitwise"
    rm -rf "$dir"
}

# Bounded differential fuzz smoke (fixed seed, deterministic): replay the
# committed corpus, then a short mutation campaign per target. Any finding
# — panic, six-path divergence, or bound violation — exits nonzero.
run_fuzz_smoke() {
    echo "==> szx-fuzz differential smoke (fixed seed, bounded)"
    cargo run -q --release -p szx-fuzz -- smoke --corpus tests/corpus \
        --seed 12648430 --iters 400 --time-secs 30 \
        || { echo "==> FAIL fuzz smoke" >&2; exit 1; }
}

if [[ "${1:-}" == "--audit" ]]; then
    run_audit
    echo "==> OK (audit only)"
    exit 0
fi

if [[ "${1:-}" == "--fuzz" ]]; then
    # Long campaign: all three targets, minimized findings written straight
    # into tests/corpus/ (commit them — fuzz_regressions.rs replays them
    # forever after). Deterministic for a given FUZZ_SEED.
    secs="${FUZZ_SECS:-600}"
    seed="${FUZZ_SEED:-1}"
    iters="${FUZZ_ITERS:-2000000}"
    echo "==> szx-fuzz long campaign (seed=$seed, ${secs}s/target budget)"
    cargo build -q --release -p szx-fuzz
    cargo run -q --release -p szx-fuzz -- run all --corpus tests/corpus \
        --seed "$seed" --iters "$iters" --time-secs "$secs" \
        --save-dir tests/corpus \
        || { echo "==> findings saved to tests/corpus/ — minimize done," \
                  "commit them and fix the bug" >&2; exit 1; }
    echo "==> OK (fuzz campaign clean)"
    exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
    # Sanitizers need -Z flags, hence nightly. The container images this
    # repo builds in do not always carry a nightly toolchain (or the
    # rust-src component TSan's -Zbuild-std needs), so every missing piece
    # downgrades to an explicit skip instead of a failure.
    if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
        echo "==> SKIP --sanitize: no nightly toolchain installed"
        exit 0
    fi
    target="$(rustc -vV | sed -n 's/^host: //p')"
    # --lib --tests: doctest binaries fail to link the sanitizer runtime.
    #
    # The SIMD module is the workspace's largest unsafe surface — raw
    # intrinsic loads/stores, overlapping 8-byte commits, gather-style
    # provider reconstruction — so it gets a dedicated focused pass first
    # (fast signal, precise attribution), then the broad crate run covers
    # everything else.
    echo "==> AddressSanitizer over the SIMD kernels (nightly, ${target})"
    RUSTFLAGS="-Zsanitizer=address" \
        cargo +nightly test -q --target "$target" --lib \
        -p szx-core simd
    echo "==> AddressSanitizer (nightly, ${target})"
    RUSTFLAGS="-Zsanitizer=address" \
        cargo +nightly test -q --target "$target" --lib --tests \
        -p szx-telemetry -p szx-core
    if rustup component list --toolchain nightly --installed 2>/dev/null \
        | grep -q '^rust-src'; then
        echo "==> ThreadSanitizer (nightly, -Zbuild-std, ${target})"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -q -Zbuild-std --target "$target" \
            --lib --tests -p szx-telemetry
    else
        echo "==> SKIP ThreadSanitizer: rust-src component not installed"
    fi
    echo "==> OK (sanitize)"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" == "--fast" || "${1:-}" == "--quick" ]]; then
    # The decode kernel only matters under optimizations (overlapping loads,
    # autovectorized assembly sweep), so even the quick gate runs the
    # scalar-vs-kernel decode equivalence subset in release mode.
    echo "==> cargo test --release (decode kernel equivalence subset)"
    cargo test -q --release -p szx-core dekernels
    cargo test -q --release -p szx-integration-tests \
        --test roundtrip_properties --test fuzz_regressions
    run_simd_equivalence
    run_audit
    run_obs_smoke
    run_profile_smoke
    run_fuzz_smoke
    echo "==> OK (quick: skipped full release suites, fmt, clippy)"
    exit 0
fi

# The scalar-vs-kernel equivalence and roundtrip property suites again in
# release mode: autovectorization only kicks in with optimizations, so this
# is the build that actually exercises the branch-free kernel codegen.
echo "==> cargo test --release (kernel equivalence + properties)"
cargo test -q --release -p szx-core kernels
cargo test -q --release -p szx-core dekernels
cargo test -q --release -p szx-integration-tests \
    --test roundtrip_properties --test edge_cases \
    --test corrupt_archive --test scratch_allocation \
    --test fuzz_regressions

run_simd_equivalence

echo "==> cargo fmt --check"
cargo fmt --all --check

# Lint the crates this PR series actively maintains; -D warnings keeps the
# gate binary (a finding fails the script, not just prints).
echo "==> cargo clippy -D warnings"
cargo clippy --release \
    -p szx-telemetry -p szx-core -p szx-cli -p szx-data \
    -p szx-integration-tests -p szx-examples -p bench -p szx-audit \
    -p szx-fuzz -p szx-profile \
    --all-targets -- -D warnings

run_audit

# Observatory smoke: a tiny sweep must bootstrap BENCH_0.json, validate
# against the schema, and a second identical sweep must pass the gate
# (throughput ignored — CI timing is noisy; ratio/PSNR are deterministic).
echo "==> bench observatory smoke (tiny)"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
obs() { cargo run -q --release -p bench --bin observatory -- "$@"; }
obs run --scale tiny --samples 1 --fields 1 --bounds 1e-3 \
    --out-dir "$obs_dir" --quiet
obs validate "$obs_dir/BENCH_0.json"
obs run --scale tiny --samples 1 --fields 1 --bounds 1e-3 \
    --out-dir "$obs_dir" --quiet --ignore-throughput

run_obs_smoke

run_profile_smoke

run_fuzz_smoke

echo "==> OK"
