#!/usr/bin/env bash
# Tier-1 gate, fully offline: everything resolves against the in-repo
# shims (see shims/README.md), so no network or registry access is needed.
#
#   scripts/check.sh           # build + tests + fmt + clippy
#   scripts/check.sh --fast    # build + tests only
#
# Run from anywhere; the script cd's to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Keep cargo away from the network: the workspace pins every external
# dependency to a local path shim, so an offline build must succeed.
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" == "--fast" ]]; then
    echo "==> OK (fast: skipped fmt/clippy)"
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

# Lint the crates this PR series actively maintains; -D warnings keeps the
# gate binary (a finding fails the script, not just prints).
echo "==> cargo clippy -D warnings"
cargo clippy --release \
    -p szx-telemetry -p szx-core -p szx-cli -p szx-data \
    -p szx-integration-tests -p szx-examples -p bench \
    --all-targets -- -D warnings

echo "==> OK"
