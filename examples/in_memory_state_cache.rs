//! In-memory state cache: the quantum-circuit-simulation use case from the
//! paper's introduction. A long-running computation keeps many state
//! vectors; holding them compressed in memory trades a bounded error for a
//! large capacity win — but only if (de)compression is fast enough not to
//! dominate the iteration time. SZx is built for exactly this.
//!
//! The example simulates an iterative solver that checkpoints state
//! snapshots into a compressed in-memory cache and periodically restores
//! one, tracking the time and memory budget.
//!
//! ```sh
//! cargo run --release -p szx-examples --bin in_memory_state_cache
//! ```

use std::time::Instant;

use szx_core::{compress, decompress_into, SzxConfig};

/// A minimal compressed-snapshot store.
struct StateCache {
    cfg: SzxConfig,
    slots: Vec<Vec<u8>>,
    raw_bytes_per_state: usize,
}

impl StateCache {
    fn new(cfg: SzxConfig, state_len: usize) -> Self {
        StateCache {
            cfg,
            slots: Vec::new(),
            raw_bytes_per_state: state_len * 4,
        }
    }

    fn store(&mut self, state: &[f32]) -> usize {
        let bytes = compress(state, &self.cfg).expect("compress state");
        self.slots.push(bytes);
        self.slots.len() - 1
    }

    fn restore(&self, slot: usize, out: &mut [f32]) {
        decompress_into(&self.slots[slot], out).expect("decompress state");
    }

    fn compressed_bytes(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    fn raw_bytes(&self) -> usize {
        self.slots.len() * self.raw_bytes_per_state
    }
}

/// One "solver" step: a smooth evolution with slowly growing modes, like
/// amplitudes in a state-vector simulation.
fn evolve(state: &mut [f32], step: usize) {
    let phase = step as f32 * 0.1;
    for (i, v) in state.iter_mut().enumerate() {
        let x = i as f32 * 1e-5 + phase;
        *v = 0.9 * *v + 0.1 * (x.sin() * (x * 0.37).cos());
    }
}

fn main() {
    const STATE_LEN: usize = 1 << 21; // 8 MB per snapshot
    const SNAPSHOTS: usize = 12;

    let mut state = vec![0f32; STATE_LEN];
    for (i, v) in state.iter_mut().enumerate() {
        *v = ((i as f32) * 1e-5).sin();
    }

    let mut cache = StateCache::new(SzxConfig::relative(1e-4), STATE_LEN);
    let mut scratch = vec![0f32; STATE_LEN];

    let mut compress_time = 0.0;
    let mut restore_time = 0.0;
    for step in 0..SNAPSHOTS {
        evolve(&mut state, step);
        let t = Instant::now();
        let slot = cache.store(&state);
        compress_time += t.elapsed().as_secs_f64();

        // Every few steps, restore an earlier snapshot (e.g. for a
        // re-computation against a previous state).
        if step % 3 == 2 {
            let t = Instant::now();
            cache.restore(slot / 2, &mut scratch);
            restore_time += t.elapsed().as_secs_f64();
            assert!(scratch.iter().all(|v| v.is_finite()));
        }
    }

    let raw = cache.raw_bytes();
    let compressed = cache.compressed_bytes();
    println!(
        "snapshots:        {SNAPSHOTS} x {} MB",
        STATE_LEN * 4 / (1 << 20)
    );
    println!("raw footprint:    {:.1} MB", raw as f64 / 1e6);
    println!("cached footprint: {:.1} MB", compressed as f64 / 1e6);
    println!("memory saved:     {:.1}x", raw as f64 / compressed as f64);
    println!(
        "compress speed:   {:.0} MB/s",
        raw as f64 / compress_time / 1e6
    );
    if restore_time > 0.0 {
        println!(
            "restore speed:    {:.0} MB/s",
            (SNAPSHOTS / 3 * STATE_LEN * 4) as f64 / restore_time / 1e6
        );
    }
}
