//! Quickstart: compress a scientific field with a value-range-based
//! relative error bound, decompress it, and verify the guarantee.
//!
//! ```sh
//! cargo run --release -p szx-examples --bin quickstart
//! ```

use szx_core::{compress, decompress, inspect, SzxConfig};

fn main() {
    // A smooth-ish synthetic signal standing in for simulation output.
    let data: Vec<f32> = (0..1_000_000)
        .map(|i| {
            let x = i as f32 * 1e-4;
            (x * 3.0).sin() * 10.0 + (x * 41.0).sin() * 0.05
        })
        .collect();

    // REL 1e-3: pointwise error at most 0.1% of the global value range.
    let cfg = SzxConfig::relative(1e-3);
    let compressed = compress(&data, &cfg).expect("compression failed");
    let restored: Vec<f32> = decompress(&compressed).expect("decompression failed");

    let header = inspect(&compressed).expect("valid stream");
    let max_err = data
        .iter()
        .zip(&restored)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0f64, f64::max);

    println!("elements:          {}", data.len());
    println!("raw size:          {} bytes", data.len() * 4);
    println!("compressed size:   {} bytes", compressed.len());
    println!(
        "compression ratio: {:.2}x",
        (data.len() * 4) as f64 / compressed.len() as f64
    );
    println!("absolute bound:    {:.3e}", header.eb);
    println!("max |error|:       {:.3e}", max_err);
    println!(
        "constant blocks:   {:.1}%",
        100.0 * (header.num_blocks() - header.n_nonconstant) as f64 / header.num_blocks() as f64
    );
    assert!(max_err <= header.eb, "SZx must respect the bound");
    println!("bound respected ✓");
}
