//! Online instrument-data compression: the LCLS-II use case from the
//! paper's introduction — a detector produces frames at a fixed rate and
//! each frame must be compressed before the next one arrives, or data is
//! dropped. The example streams frames through [`szx_core::FrameWriter`]
//! and reads the sustained throughput and per-frame latency straight off
//! its built-in [`szx_core::FrameStats`] — no ad-hoc stopwatch code.
//!
//! ```sh
//! cargo run --release -p szx-examples --bin instrument_stream
//! ```

use szx_core::{FrameReader, FrameWriter, SzxConfig};
use szx_data::grf;

/// Synthesize a detector frame: a diffraction-like pattern (smooth rings +
/// shot noise), different per frame.
fn make_frame(width: usize, height: usize, frame_no: u64) -> Vec<f32> {
    let dims = [width, height, 1];
    let mut frame = vec![0f32; width * height];
    let (cx, cy) = (width as f32 * 0.5, height as f32 * 0.5);
    let phase = frame_no as f32 * 0.21;
    for y in 0..height {
        for x in 0..width {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let r = (dx * dx + dy * dy).sqrt();
            frame[y * width + x] = ((r * 0.08 + phase).sin() * (-r * 0.004).exp()).max(0.0) * 1e3;
        }
    }
    let noise = grf::fractal_field(dims, &[(2, 12.0)], 0x1c15 + frame_no);
    for (f, n) in frame.iter_mut().zip(&noise) {
        *f += n.abs();
    }
    frame
}

fn main() {
    const W: usize = 1024;
    const H: usize = 1024;
    const FRAMES: u64 = 40;
    // Target: a 4 MP float detector at 1 kHz = 4 GB/s per node.
    const TARGET_GBPS: f64 = 4.0;
    const FRAME_BUDGET_NS: f64 = 1e6; // 1 kHz → 1 ms per frame

    // Synthesize up front so the stats measure compression, not generation.
    let frames: Vec<Vec<f32>> = (0..FRAMES).map(|i| make_frame(W, H, i)).collect();

    let mut writer = FrameWriter::new(SzxConfig::relative(1e-3)).expect("config");
    for frame in &frames {
        writer.push(frame).expect("compress frame");
    }

    // Everything below comes from the writer's own per-frame accounting.
    let s = *writer.stats();
    let gbps = s.throughput_gbps();
    println!(
        "frames:            {} x {W}x{H} f32 ({:.1} MB each)",
        s.frames,
        (W * H * 4) as f64 / 1e6
    );
    println!("compress time:     {:.2} s", s.compress_ns as f64 / 1e9);
    println!("compress rate:     {gbps:.2} GB/s (target {TARGET_GBPS} GB/s)");
    println!("compression ratio: {:.2}x", s.ratio());
    println!(
        "frame latency:     min {:.2} ms  mean {:.2} ms  max {:.2} ms",
        s.min_frame_ns as f64 / 1e6,
        s.mean_frame_ns() / 1e6,
        s.max_frame_ns as f64 / 1e6
    );
    println!(
        "frame budget used: {:.0}% (worst frame)",
        100.0 * s.max_frame_ns as f64 / FRAME_BUDGET_NS
    );
    if gbps >= TARGET_GBPS {
        println!("=> keeps up with the instrument ✓");
    } else {
        println!("=> needs {:.1} more nodes at this rate", TARGET_GBPS / gbps);
    }

    // The container is a valid SZXS stream: prove any frame reads back.
    let bytes = writer.into_bytes();
    let reader = FrameReader::new(&bytes).expect("parse container");
    let mid: Vec<f32> = reader.frame(FRAMES as usize / 2).expect("decode frame");
    assert_eq!(mid.len(), W * H);
    println!(
        "container:         {} frames, {:.1} MB total",
        reader.num_frames(),
        bytes.len() as f64 / 1e6
    );
}
