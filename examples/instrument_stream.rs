//! Online instrument-data compression: the LCLS-II use case from the
//! paper's introduction — a detector produces frames at a fixed rate and
//! each frame must be compressed before the next one arrives, or data is
//! dropped. The example streams frames through the multicore compressor
//! and reports the sustained throughput against a target ingest rate.
//!
//! ```sh
//! cargo run --release -p szx-examples --bin instrument_stream
//! ```

use std::time::Instant;

use szx_core::{parallel, SzxConfig};
use szx_data::grf;

/// Synthesize a detector frame: a diffraction-like pattern (smooth rings +
/// shot noise), different per frame.
fn make_frame(width: usize, height: usize, frame_no: u64) -> Vec<f32> {
    let dims = [width, height, 1];
    let mut frame = vec![0f32; width * height];
    let (cx, cy) = (width as f32 * 0.5, height as f32 * 0.5);
    let phase = frame_no as f32 * 0.21;
    for y in 0..height {
        for x in 0..width {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let r = (dx * dx + dy * dy).sqrt();
            frame[y * width + x] = ((r * 0.08 + phase).sin() * (-r * 0.004).exp()).max(0.0) * 1e3;
        }
    }
    let noise = grf::fractal_field(dims, &[(2, 12.0)], 0x1c15 + frame_no);
    for (f, n) in frame.iter_mut().zip(&noise) {
        *f += n.abs();
    }
    frame
}

fn main() {
    const W: usize = 1024;
    const H: usize = 1024;
    const FRAMES: u64 = 40;
    // Target: a 4 MP float detector at 1 kHz = 4 GB/s per node.
    const TARGET_GBPS: f64 = 4.0;

    let cfg = SzxConfig::relative(1e-3);
    let frame_bytes = W * H * 4;

    let mut compressed_total = 0usize;
    let start = Instant::now();
    for frame_no in 0..FRAMES {
        let frame = make_frame(W, H, frame_no);
        let bytes = parallel::compress(&frame, &cfg).expect("compress frame");
        compressed_total += bytes.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Generation time is part of the loop; measure compression alone too.
    let frames: Vec<Vec<f32>> = (0..FRAMES).map(|i| make_frame(W, H, i)).collect();
    let start = Instant::now();
    let mut sink = 0usize;
    for frame in &frames {
        sink += parallel::compress(frame, &cfg).expect("compress frame").len();
    }
    let compress_only = start.elapsed().as_secs_f64();

    let ingest = FRAMES as usize * frame_bytes;
    let gbps = ingest as f64 / compress_only / 1e9;
    println!("frames:            {FRAMES} x {W}x{H} f32 ({:.1} MB each)", frame_bytes as f64 / 1e6);
    println!("end-to-end time:   {elapsed:.2} s (incl. frame synthesis)");
    println!("compress time:     {compress_only:.2} s");
    println!("compress rate:     {gbps:.2} GB/s (target {TARGET_GBPS} GB/s)");
    println!("compression ratio: {:.2}x", ingest as f64 / sink as f64);
    println!("frame budget used: {:.0}%", 100.0 * (compress_only / FRAMES as f64) / 1e-3);
    let _ = compressed_total;
    if gbps >= TARGET_GBPS {
        println!("=> keeps up with the instrument ✓");
    } else {
        println!("=> needs {:.1} more nodes at this rate", TARGET_GBPS / gbps);
    }
}
