//! Compressed-archive query: bundle a simulation snapshot's fields into one
//! SZx archive, then answer point/region queries straight from the
//! compressed bytes using random-access decompression — only the blocks a
//! query touches are ever decoded. This is the post-hoc analysis workflow
//! the paper's instrument/PFS use cases feed into.
//!
//! ```sh
//! cargo run --release -p szx-examples --bin compressed_archive_query
//! ```

use szx_core::{ArchiveReader, ArchiveWriter, RandomAccess, SzxConfig};
use szx_data::{Application, Scale};

fn main() {
    // Build the archive: all Miranda fields at REL 1e-4.
    let ds = Application::Miranda.generate(Scale::Small, 7);
    let cfg = SzxConfig::relative(1e-4);
    let mut writer = ArchiveWriter::new();
    for f in &ds.fields {
        writer.add(&f.name, &f.data, &cfg).expect("add field");
    }
    let archive = writer.finish();
    let raw: usize = ds.fields.iter().map(|f| f.raw_bytes()).sum();
    println!(
        "archived {} fields: {:.2} MB -> {:.2} MB (CR {:.2})",
        ds.fields.len(),
        raw as f64 / 1e6,
        archive.len() as f64 / 1e6,
        raw as f64 / archive.len() as f64
    );

    // Query 1: a single probe value from `pressure` without decompressing
    // the field.
    let reader = ArchiveReader::new(&archive).expect("parse archive");
    let stream = reader.stream("pressure").expect("pressure present");
    let ra = RandomAccess::<f32>::new(stream).expect("index stream");
    let probe_idx = ra.len() / 3;
    let probe = ra.decode_at(probe_idx).expect("probe");
    let truth = ds.field("pressure").unwrap().data[probe_idx];
    println!("probe pressure[{probe_idx}] = {probe:.5} (original {truth:.5})");

    // Query 2: a contiguous x-line out of `velocity-x`.
    let vx = ds.field("velocity-x").unwrap();
    let nx = vx.dims[0];
    let line_start = 17 * nx; // y=17, z=0
    let ra = RandomAccess::<f32>::new(reader.stream("velocity-x").unwrap()).unwrap();
    let line = ra.decode_range(line_start, line_start + nx).expect("line");
    let blocks_touched = nx.div_ceil(128) + 1;
    println!(
        "extracted one x-line ({} values) touching <= {blocks_touched} of {} blocks",
        line.len(),
        ra.num_blocks()
    );
    let max_err = line
        .iter()
        .zip(&vx.data[line_start..line_start + nx])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("line max |error| = {max_err:.2e}");

    // Query 3: headers only — which field compressed best?
    let mut best = (String::new(), 0.0f64);
    for name in reader.names() {
        let h = reader.header(name).unwrap();
        let cr = (h.n * 4) as f64 / reader.stream(name).unwrap().len() as f64;
        if cr > best.1 {
            best = (name.to_string(), cr);
        }
    }
    println!("best-compressing field: {} (CR {:.2})", best.0, best.1);
}
