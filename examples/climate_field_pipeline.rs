//! Climate-field pipeline: compress every field of a CESM-ATM-like
//! dataset under a per-field relative bound, assess quality field by field
//! (CR, PSNR, SSIM on the first slice), and print a compact report — the
//! workflow a climate data manager would run before archiving model output.
//!
//! ```sh
//! cargo run --release -p szx-examples --bin climate_field_pipeline
//! ```

use szx_core::{compress, decompress, SzxConfig};
use szx_data::{Application, Scale};
use szx_metrics::{distortion, ssim_2d};

fn main() {
    let dataset = Application::CesmAtm.generate_limited(Scale::Small, 2026, 12);
    let rel = 1e-3;
    let cfg = SzxConfig::relative(rel);

    println!(
        "CESM-ATM archive pass (REL={rel:.0e}, {} fields)",
        dataset.fields.len()
    );
    println!(
        "{:<10} {:>12} {:>8} {:>9} {:>8} {:>10}",
        "field", "elements", "CR", "PSNR(dB)", "SSIM", "max|err|"
    );

    let mut total_raw = 0usize;
    let mut total_compressed = 0usize;
    for field in &dataset.fields {
        let compressed = compress(&field.data, &cfg).expect("compress");
        let restored: Vec<f32> = decompress(&compressed).expect("decompress");
        let stats = distortion(&field.data, &restored);

        let (w, h, orig_slice) = field.slice_z(0);
        let rec_slice = &restored[0..w * h];
        let ssim = ssim_2d(&orig_slice, rec_slice, w, h, 0);

        total_raw += field.raw_bytes();
        total_compressed += compressed.len();
        println!(
            "{:<10} {:>12} {:>8.2} {:>9.1} {:>8.3} {:>10.2e}",
            field.name,
            field.len(),
            field.raw_bytes() as f64 / compressed.len() as f64,
            stats.psnr,
            ssim,
            stats.max_abs_error
        );
        let eb = rel * field.value_range();
        assert!(
            stats.max_abs_error <= eb + f64::EPSILON,
            "{}: bound violated",
            field.name
        );
    }
    println!(
        "\narchive total: {:.2} MB -> {:.2} MB (overall CR {:.2})",
        total_raw as f64 / 1e6,
        total_compressed as f64 / 1e6,
        total_raw as f64 / total_compressed as f64
    );
}
