//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the seeded-PRNG subset the workspace uses: `SmallRng::seed_from_u64` and
//! `Rng::gen_range` over float/integer ranges. The generator is
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! targets), seeded through SplitMix64 — statistically solid for the
//! synthetic-field generators in `szx-data`, and deterministic per seed so
//! dataset fixtures are reproducible across runs.

/// Sampling a uniform value out of a range type.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Minimal core-RNG abstraction: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore + Sized {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform value of a primitive type (full bit range for ints,
    /// `[0, 1)` for floats — matching `rand`'s `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// `Standard`-distribution sampling for `Rng::gen`.
pub trait Standard: Sized {
    fn from_rng(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! impl_float_range {
    ($t:ty, $standard:expr) => {
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = $standard(rng.next_u64());
                self.start + unit * (self.end - self.start)
            }
        }
    };
}
impl_float_range!(f32, |w: u64| ((w >> 40) as f32)
    * (1.0 / (1u64 << 24) as f32));
impl_float_range!(f64, |w: u64| ((w >> 11) as f64)
    * (1.0 / (1u64 << 53) as f64));

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the span sizes used
                // here; acceptable for synthetic-data generation.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for simulation use, like
    /// the real `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_splitmix(seed)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" RNG; here simply an alias-quality wrapper over the
    /// same xoshiro generator (cryptographic strength is not needed by any
    /// consumer in this workspace).
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn float_ranges_in_bounds_and_centered() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            sum += v as f64;
        }
        assert!(
            sum.abs() / (N as f64) < 0.02,
            "mean {} too far from 0",
            sum / N as f64
        );
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5u32..=6);
            assert!(v == 5 || v == 6);
        }
    }
}
