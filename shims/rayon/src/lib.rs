//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal drop-in that implements exactly the data-parallel subset the
//! codebase uses — `par_chunks`, `par_chunks_mut`, `par_iter`, `map`,
//! `enumerate`, `collect`, `reduce`, `for_each`, `try_for_each`, and
//! `current_num_threads` — with real OS threads via [`std::thread::scope`].
//!
//! Semantics match rayon where it matters here:
//! * closures run concurrently across up to [`current_num_threads`] workers;
//! * item order is preserved by all collecting adapters;
//! * panics in worker closures propagate to the caller.
//!
//! It is *not* a work-stealing scheduler: each terminal operation splits its
//! items into contiguous runs, one per worker thread. For the block/chunk
//! granularity this workspace uses, that is the same parallel shape the
//! paper's OpenMP implementation has.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Run `f` over `items` on up to [`current_num_threads`] threads, preserving
/// item order in the result.
fn par_apply<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous runs, one per worker; the first `rem` runs get one extra.
    let base = n / workers;
    let rem = n % workers;
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    for w in (0..workers).rev() {
        let size = base + usize::from(w < rem);
        groups.push(items.split_off(items.len() - size));
    }
    groups.reverse();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|g| s.spawn(move || g.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // PANIC-OK: join() only fails if the worker closure itself
            // panicked — this re-raises, it cannot originate a panic.
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// The parallel-iterator trait: adapters build lazily, terminal operations
/// evaluate on worker threads.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Evaluate the pipeline, returning all items in order (terminal).
    fn collect_items(self) -> Vec<Self::Item>;

    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_items(self.collect_items())
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        par_apply(self.collect_items(), f);
    }

    fn try_for_each<F, E>(self, f: F) -> Result<(), E>
    where
        F: Fn(Self::Item) -> Result<(), E> + Sync + Send,
        E: Send,
    {
        par_apply(self.collect_items(), f).into_iter().collect()
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.collect_items().into_iter().fold(identity(), &op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.collect_items().into_iter().sum()
    }
}

/// Conversion out of a finished parallel pipeline (rayon's `collect` bound).
pub trait FromParallelIterator<T> {
    fn from_par_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_items(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// `map` adapter. The mapping closure is what actually runs in parallel.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn collect_items(self) -> Vec<R> {
        par_apply(self.base.collect_items(), self.f)
    }
}

/// `enumerate` adapter (indices follow source order, as in rayon's indexed
/// iterators).
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn collect_items(self) -> Vec<(usize, I::Item)> {
        self.base.collect_items().into_iter().enumerate().collect()
    }
}

/// Source: `&slice.par_chunks(n)`.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn collect_items(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.size).collect()
    }
}

/// Source: `&mut slice.par_chunks_mut(n)`.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn collect_items(self) -> Vec<&'a mut [T]> {
        self.slice.chunks_mut(self.size).collect()
    }
}

/// Source: `collection.par_iter()`.
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn collect_items(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        // PANIC-OK: programmer contract on chunk size (mirrors rayon and
        // std::slice::chunks_mut) — callers pass compile-time group sizes.
        assert!(size > 0, "chunk size must be non-zero");
        Chunks { slice: self, size }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        // PANIC-OK: programmer contract on chunk size (mirrors rayon and
        // std::slice::chunks_mut) — callers pass compile-time group sizes.
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut { slice: self, size }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let data: Vec<u32> = (0..1000).collect();
        let sums: Vec<u32> = data.par_chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        let expect: Vec<u32> = data.chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn par_chunks_mut_enumerate_try_for_each() {
        let mut data = vec![0u32; 100];
        data.par_chunks_mut(9)
            .enumerate()
            .try_for_each(|(i, c)| -> Result<(), ()> {
                for v in c.iter_mut() {
                    *v = i as u32;
                }
                Ok(())
            })
            .unwrap();
        for (i, c) in data.chunks(9).enumerate() {
            assert!(c.iter().all(|&v| v == i as u32));
        }
    }

    #[test]
    fn reduce_and_collect_result() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (lo, hi) = data.par_chunks(13).map(|c| (c[0], c[c.len() - 1])).reduce(
            || (f64::INFINITY, f64::NEG_INFINITY),
            |a, b| (a.0.min(b.0), a.1.max(b.1)),
        );
        assert_eq!((lo, hi), (0.0, 99.0));

        let ok: Result<Vec<u32>, String> = data.par_iter().map(|&v| Ok(v as u32)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u32>, String> = data
            .par_iter()
            .map(|&v| {
                if v > 50.0 {
                    Err("boom".to_string())
                } else {
                    Ok(v as u32)
                }
            })
            .collect();
        assert!(err.is_err());
    }
}
