//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the property-testing subset the workspace's test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_filter` / `prop_flat_map`,
//! * range strategies, [`any`], [`Just`], tuple strategies,
//!   [`collection::vec`], [`prop_oneof!`], and [`sample::Index`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Cases are generated from a deterministic per-test seed (override with
//! `PROPTEST_SEED`), so failures are reproducible. Unlike real proptest
//! there is **no shrinking**: a failing case reports its exact inputs
//! instead. For the regression-style invariants tested here that is an
//! acceptable trade for zero dependencies.

use std::fmt::Debug;

/// The per-case random source (SplitMix64: tiny and statistically fine for
/// test-case generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            x: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. `gen` returns `None` when a filter rejected the
/// candidate (the runner then retries the whole case).
pub trait Strategy {
    type Value: Debug;

    fn gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<R: Debug, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        strategy::Map { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> strategy::Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        strategy::Filter {
            base: self,
            reason,
            pred,
        }
    }

    fn prop_flat_map<S2: Strategy, F>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
    {
        strategy::FlatMap { base: self, f }
    }

    /// Type-erase (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn gen(&self, rng: &mut TestRng) -> Option<V> {
        self.as_ref().gen(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform-over-the-type strategy; for floats this draws raw bit patterns,
/// so NaNs and infinities appear (matching real proptest's `any::<f32>()`
/// in spirit).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

pub mod strategy {
    use super::{Arbitrary, Debug, Strategy, TestRng};

    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, R: Debug, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
        type Value = R;
        fn gen(&self, rng: &mut TestRng) -> Option<R> {
            self.base.gen(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) base: S,
        #[allow(dead_code)]
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Retry locally a few times before bubbling the rejection up;
            // keeps sparse filters (e.g. "finite" over raw f32 bits) cheap.
            for _ in 0..32 {
                if let Some(v) = self.base.gen(rng) {
                    if (self.pred)(&v) {
                        return Some(v);
                    }
                }
            }
            None
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let mid = self.base.gen(rng)?;
            (self.f)(mid).gen(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V: Debug> {
        pub arms: Vec<super::BoxedStrategy<V>>,
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn gen(&self, rng: &mut TestRng) -> Option<V> {
            let i = rng.below(self.arms.len());
            self.arms[i].gen(rng)
        }
    }
}

macro_rules! impl_float_range_strategy {
    ($t:ty) => {
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                debug_assert!(self.start < self.end);
                Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }
        }
    };
}
impl_float_range_strategy!(f32);
impl_float_range_strategy!(f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                debug_assert!(self.start < self.end);
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + off as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                debug_assert!(start <= end);
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                Some((start as i128 + off as i128) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.gen(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1));
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.elem.gen(rng)?);
            }
            Some(out)
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known inside the
    /// test body (`any::<Index>()` + `idx.index(len)`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        unit: f64,
    }

    impl Index {
        /// Map onto `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.unit * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                unit: rng.unit_f64(),
            }
        }
    }
}

pub mod test_runner {
    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Abandon the test if this many candidate cases get rejected by
        /// filters/`prop_assume!` before `cases` successes.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

/// Outcome of one generated case.
pub enum CaseResult {
    Pass,
    Reject,
    Fail(String),
}

pub mod runner {
    use super::{test_runner::Config, CaseResult, TestRng};

    fn base_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: deterministic, distinct per test.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drive `case` until `cfg.cases` cases pass, a case fails, or the
    /// reject budget is exhausted.
    pub fn run<F>(cfg: Config, test_name: &str, case: F)
    where
        F: Fn(&mut TestRng, &mut Vec<String>) -> CaseResult + std::panic::RefUnwindSafe,
    {
        let seed = base_seed(test_name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_no = 0u64;
        while passed < cfg.cases {
            let mut rng = TestRng::new(seed.wrapping_add(case_no.wrapping_mul(0x9E3779B97F4A7C15)));
            case_no += 1;
            let mut inputs: Vec<String> = Vec::new();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng, &mut inputs)
            }));
            match outcome {
                Ok(CaseResult::Pass) => passed += 1,
                Ok(CaseResult::Reject) => {
                    rejected += 1;
                    if rejected > cfg.max_global_rejects {
                        panic!(
                            "proptest '{test_name}': too many rejected cases \
                             ({rejected}) before {} passes",
                            cfg.cases
                        );
                    }
                }
                Ok(CaseResult::Fail(msg)) => {
                    panic!(
                        "proptest '{test_name}' failed at case #{case_no} (seed {seed}):\n\
                         {msg}\ninputs:\n{}",
                        inputs.join("\n")
                    );
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".into());
                    panic!(
                        "proptest '{test_name}' panicked at case #{case_no} (seed {seed}):\n\
                         {msg}\ninputs:\n{}",
                        inputs.join("\n")
                    );
                }
            }
        }
    }
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, v in pvec(any::<f32>(), 1..50)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                $crate::runner::run(cfg, stringify!($name), |__rng, __inputs| {
                    $(
                        let __val = match $crate::Strategy::gen(&($strat), __rng) {
                            Some(v) => v,
                            None => return $crate::CaseResult::Reject,
                        };
                        __inputs.push(format!(
                            "  {} = {:?}",
                            stringify!($pat),
                            __val
                        ));
                        let $pat = __val;
                    )*
                    // Bodies use `prop_assert*`/`prop_assume!`, which early-
                    // return a CaseResult; falling through means the case
                    // passed.
                    #[allow(unused_braces)]
                    { $body }
                    $crate::CaseResult::Pass
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {
        $crate::strategy::Union { arms: vec![ $( $crate::Strategy::boxed($arm) ),+ ] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), va, vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), format!($($fmt)+), va, vb
            ));
        }
    }};
}

/// Discard the current case (not a failure) when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
}

pub mod prelude {
    /// `prop::` paths (`prop::sample::Index`, `prop::collection::vec`, …).
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, CaseResult, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec as pvec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in pvec(0u8..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_filter_compose(
            v in prop_oneof![Just(1u32), 5u32..10, Just(3u32)],
            f in any::<f32>().prop_filter("finite", |x| x.is_finite()),
        ) {
            prop_assert!(v == 1 || v == 3 || (5..10).contains(&v));
            prop_assert!(f.is_finite());
        }

        #[test]
        fn flat_map_links_sizes((n, v) in (1usize..20).prop_flat_map(|n| {
            (Just(n), pvec(any::<u8>(), n..=n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn index_is_always_valid(idx in any::<prop::sample::Index>(), len in 1usize..100) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn any_f32_produces_nonfinite_eventually() {
        let mut rng = TestRng::new(1);
        let s = any::<f32>();
        let nonfinite = (0..10_000)
            .filter(|_| !Strategy::gen(&s, &mut rng).unwrap().is_finite())
            .count();
        assert!(
            nonfinite > 10,
            "raw-bit f32s must include NaN/Inf, saw {nonfinite}"
        );
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn always_small(x in 0u32..1000) {
                prop_assert!(x < 2, "x = {}", x);
            }
        }
        always_small();
    }
}
