//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so benches link against
//! this minimal harness exposing the subset the workspace uses:
//! `benchmark_group` / `throughput` / `sample_size` / `bench_function` /
//! `Bencher::iter`, plus the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark warms up for ~0.3 s, picks an iteration
//! count that makes one sample ≥ ~20 ms, then takes `sample_size` samples
//! and reports min / median / mean wall-clock per iteration (and
//! throughput when configured). No plots, no statistics beyond that —
//! enough to compare codecs and catch large regressions offline.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured quantity used to derive a throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark identifier (`function / parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Harness entry point; one per bench binary.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`; take the
        // first non-flag token as a substring filter, mirroring criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full) {
            return self;
        }

        // Warm up and calibrate the per-sample iteration count.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut one_iter = Duration::ZERO;
        while warmup_start.elapsed() < Duration::from_millis(300) {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            one_iter = b.elapsed.max(Duration::from_nanos(1));
        }
        let per_sample = (Duration::from_millis(20).as_nanos() / one_iter.as_nanos()).max(1);
        let iters_per_sample = per_sample.min(1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let mut line = format!(
            "{full:<48} time: [min {} | median {} | mean {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64 / 1e9, "GB/s"),
                Throughput::Elements(n) => (n as f64 / 1e6, "Melem/s"),
            };
            line.push_str(&format!("  thrpt: {:.3} {unit}", amount / median));
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Timed iterations over pre-built inputs (`iter_batched` with cheap
    /// setup; setup time is excluded from the measurement).
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        g.bench_function(BenchmarkId::new("noop", "x"), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut g = c.benchmark_group("g");
        let mut runs = 0u64;
        g.bench_function("other", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
