//! Property-based tests for the core SZx invariants:
//!
//! 1. The pointwise error bound is respected for every finite input, every
//!    error bound, every block size, and every commit strategy.
//! 2. Non-finite values round-trip bit-exactly.
//! 3. The parallel compressor emits byte-identical streams and the parallel
//!    decompressor agrees with the serial one.
//! 4. A zero error bound is lossless.
//! 5. Compressed streams decode to exactly the original length.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use szx_core::{parallel, CommitStrategy, SzxConfig};

fn strategies() -> impl Strategy<Value = CommitStrategy> {
    prop_oneof![
        Just(CommitStrategy::ByteAligned),
        Just(CommitStrategy::BitPack),
        Just(CommitStrategy::BytePlusResidual),
    ]
}

/// Finite f32s spanning many magnitudes, biased toward locally smooth data
/// (scientific-like) but including harsh jumps.
fn scientific_f32(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    let base = prop_oneof![
        // Smooth ramp + noise
        (any::<u32>(), 1usize..max_len).prop_map(|(seed, n)| {
            (0..n)
                .map(|i| {
                    let x = i as f32 * 0.01 + (seed % 97) as f32;
                    x.sin() * 3.0 + ((x * 13.7).sin()) * 1e-3
                })
                .collect()
        }),
        // Arbitrary finite values (harsh)
        pvec(
            any::<f32>().prop_filter("finite", |x| x.is_finite()),
            1..max_len
        ),
        // Mixed magnitudes
        pvec(
            prop_oneof![
                -1e30f32..1e30f32,
                -1.0f32..1.0f32,
                Just(0.0f32),
                Just(-0.0f32)
            ],
            1..max_len
        ),
    ];
    base
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn error_bound_respected_f32(
        data in scientific_f32(600),
        eb_exp in -8i32..1,
        block_size in 1usize..300,
        strategy in strategies(),
    ) {
        let eb = 10f64.powi(eb_exp);
        let cfg = SzxConfig::absolute(eb)
            .with_block_size(block_size)
            .with_strategy(strategy);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            let err = (a as f64 - b as f64).abs();
            prop_assert!(err <= eb, "index {}: {} vs {} (err {} > eb {})", i, a, b, err, eb);
        }
    }

    #[test]
    fn error_bound_respected_f64(
        data in pvec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 1..400),
        eb_exp in -12i32..1,
        block_size in 1usize..200,
        strategy in strategies(),
    ) {
        let eb = 10f64.powi(eb_exp);
        let cfg = SzxConfig::absolute(eb)
            .with_block_size(block_size)
            .with_strategy(strategy);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f64> = szx_core::decompress(&bytes).unwrap();
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            let err = (a - b).abs();
            prop_assert!(err <= eb, "index {}: {} vs {} (err {})", i, a, b, err);
        }
    }

    #[test]
    fn nonfinite_values_roundtrip_bit_exact(
        mut data in pvec(any::<f32>(), 1..400),
        block_size in 1usize..200,
        strategy in strategies(),
    ) {
        // `any::<f32>()` already generates NaN/Inf; make sure at least one
        // non-finite value is present.
        data[0] = f32::NAN;
        let cfg = SzxConfig::absolute(1e-3)
            .with_block_size(block_size)
            .with_strategy(strategy);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        // Blocks carrying a non-finite value are stored bit-exactly; for all
        // other values the bound holds.
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            if a.is_finite() {
                let err = (a as f64 - b as f64).abs();
                // The value may live in a bit-exact block (err 0) or a
                // normal block (err <= eb).
                prop_assert!(err <= 1e-3, "index {}: {} vs {}", i, a, b);
            } else {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "non-finite at {}", i);
            }
        }
    }

    #[test]
    fn zero_bound_is_lossless(
        data in pvec(any::<f32>(), 1..500),
        block_size in 1usize..200,
        strategy in strategies(),
    ) {
        let cfg = SzxConfig::absolute(0.0)
            .with_block_size(block_size)
            .with_strategy(strategy);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parallel_agrees_with_serial(
        data in scientific_f32(5000),
        eb_exp in -6i32..0,
        strategy in strategies(),
    ) {
        let eb = 10f64.powi(eb_exp);
        let cfg = SzxConfig::absolute(eb).with_strategy(strategy);
        let serial = szx_core::compress(&data, &cfg).unwrap();
        let par = parallel::compress(&data, &cfg).unwrap();
        prop_assert_eq!(&serial, &par);
        let a: Vec<f32> = szx_core::decompress(&serial).unwrap();
        let b: Vec<f32> = parallel::decompress(&serial).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn relative_bound_respected(
        data in scientific_f32(2000),
        rel_exp in -5i32..-1,
    ) {
        let rel = 10f64.powi(rel_exp);
        let cfg = SzxConfig::relative(rel);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        let range = szx_core::config::value_range(&data);
        let eb = rel * range;
        for (&a, &b) in data.iter().zip(&back) {
            prop_assert!((a as f64 - b as f64).abs() <= eb,
                "{} vs {} under resolved eb {}", a, b, eb);
        }
    }

    #[test]
    fn decompress_never_panics_on_mutated_streams(
        data in scientific_f32(500),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let cfg = SzxConfig::absolute(1e-3);
        let mut bytes = szx_core::compress(&data, &cfg).unwrap();
        let i = flip_at.index(bytes.len());
        bytes[i] = new_byte;
        // Any outcome is fine except a panic or out-of-bounds access. A
        // mutated stream may still decode (the mutation can land in payload
        // bits), in which case the length must still match.
        if let Ok(out) = szx_core::decompress::<f32>(&bytes) {
            prop_assert_eq!(out.len(), data.len());
        }
        let _ = parallel::decompress::<f32>(&bytes);
    }
}
