//! Golden stream-format test: the byte layout of an SZx stream is a
//! compatibility contract (decoders in other processes/languages and the
//! GPU path all rely on it). This test freezes a small stream byte-for-byte
//! so accidental format changes fail loudly instead of silently breaking
//! interchange.

use szx_core::{CommitStrategy, SzxConfig};

/// Deterministic input: two constant blocks around one non-constant block.
fn golden_input() -> Vec<f32> {
    let mut data = vec![1.5f32; 8]; // block 0: constant
    data.extend([0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875]); // block 1
    data.extend(vec![-2.0f32; 8]); // block 2: constant
    data
}

#[test]
fn stream_bytes_are_frozen() {
    let cfg = SzxConfig::absolute(0.01).with_block_size(8);
    let bytes = szx_core::compress(&golden_input(), &cfg).unwrap();

    // Header.
    assert_eq!(&bytes[0..4], b"SZXR", "magic");
    assert_eq!(bytes[4], 1, "version");
    assert_eq!(bytes[5], 0, "dtype f32");
    assert_eq!(bytes[6], 2, "strategy C");
    assert_eq!(bytes[7], 0, "reserved");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        8,
        "block size"
    );
    assert_eq!(
        u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        24,
        "n"
    );
    assert_eq!(
        f64::from_le_bytes(bytes[20..28].try_into().unwrap()),
        0.01,
        "eb"
    );
    assert_eq!(
        u64::from_le_bytes(bytes[28..36].try_into().unwrap()),
        1,
        "non-constant"
    );

    // State bits: blocks C, NC, C -> 0b010 packed MSB-first = 0x40.
    assert_eq!(bytes[36], 0x40, "state bits");

    // μ array: 1.5, 0.4375 ((0+0.875)/2), -2.0 as LE f32.
    assert_eq!(&bytes[37..41], &1.5f32.to_le_bytes());
    assert_eq!(&bytes[41..45], &0.4375f32.to_le_bytes());
    assert_eq!(&bytes[45..49], &(-2.0f32).to_le_bytes());

    // zsize for the one non-constant block.
    let zsize = u16::from_le_bytes(bytes[49..51].try_into().unwrap()) as usize;
    assert_eq!(bytes.len(), 51 + zsize, "payload fills the rest exactly");

    // Payload: required length first. radius = 0.4375 (expo -2),
    // eb 0.01 (expo -7): R = 9 + (-2) - (-7) + 1 = 15.
    assert_eq!(bytes[51], 15, "required length");

    // Full golden stream (hex) — update ONLY on a deliberate format bump.
    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    let expected = "535a585201000200080000001800000000000000\
                    7b14ae47e17a843f0100000000000000\
                    400000c03f0000e03e000000c0\
                    0f000f14055f7050205ec01ec01f205070";
    assert_eq!(hex, expected, "golden stream changed — format break?");
}

#[test]
fn golden_stream_decodes_back() {
    let cfg = SzxConfig::absolute(0.01).with_block_size(8);
    let data = golden_input();
    let bytes = szx_core::compress(&data, &cfg).unwrap();
    let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
    for (a, b) in data.iter().zip(&back) {
        assert!((a - b).abs() <= 0.01);
    }
}

#[test]
fn all_strategy_codes_are_stable() {
    // Strategy codes are part of the format.
    for (strategy, code) in [
        (CommitStrategy::BitPack, 0u8),
        (CommitStrategy::BytePlusResidual, 1),
        (CommitStrategy::ByteAligned, 2),
    ] {
        let cfg = SzxConfig::absolute(0.01)
            .with_block_size(8)
            .with_strategy(strategy);
        let bytes = szx_core::compress(&golden_input(), &cfg).unwrap();
        assert_eq!(bytes[6], code, "{strategy:?}");
    }
}
