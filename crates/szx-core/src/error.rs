//! Error type shared by all szx-core entry points.

use core::fmt;

/// Errors returned by compression, decompression, and stream parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzxError {
    /// The configuration is not usable (e.g. zero or oversized block size,
    /// negative error bound).
    InvalidConfig(String),
    /// The compressed stream is malformed: bad magic, unsupported version,
    /// or a section that ends prematurely.
    CorruptStream(String),
    /// The stream was produced for a different element type than the one
    /// requested (e.g. decompressing an f64 stream as f32).
    TypeMismatch {
        expected: &'static str,
        found: &'static str,
    },
    /// The input is empty. SZx streams always carry at least one block.
    EmptyInput,
}

impl fmt::Display for SzxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SzxError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SzxError::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
            SzxError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "element type mismatch: stream holds {found}, requested {expected}"
                )
            }
            SzxError::EmptyInput => write!(f, "input dataset is empty"),
        }
    }
}

impl std::error::Error for SzxError {}

/// Convenience alias used across the crate.
pub type Result<T> = core::result::Result<T, SzxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SzxError::InvalidConfig("block size must be nonzero".into());
        assert!(e.to_string().contains("block size"));
        let e = SzxError::TypeMismatch {
            expected: "f32",
            found: "f64",
        };
        assert!(e.to_string().contains("f64"));
        let e = SzxError::CorruptStream("truncated header".into());
        assert!(e.to_string().contains("truncated"));
        assert_eq!(SzxError::EmptyInput.to_string(), "input dataset is empty");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SzxError::EmptyInput);
    }
}
