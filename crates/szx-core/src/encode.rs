//! The SZx compressor (Algorithm 1 + the §5.1 commit strategies).

use crate::bitio::BitWriter;
use crate::block::{bytes_for, required_length, shift_for, BlockStats};
use crate::config::{CommitStrategy, ErrorBound, KernelPath, SzxConfig};
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;
use crate::kernels::{self, EncodeScratch};
use crate::stream::Header;

/// Per-chunk telemetry accumulated with plain (non-atomic) arithmetic while
/// blocks are encoded, then merged and flushed to the global registry once
/// per top-level call in [`assemble`]. Rayon workers each own one of these
/// inside their `ChunkOutput`, so enabling telemetry adds no shared-memory
/// traffic to the block loop.
#[derive(Debug)]
pub(crate) struct BlockEncodeStats {
    /// Blocks representable by `μ` alone.
    pub constant: u64,
    /// Blocks with a truncated-significand payload.
    pub nonconstant: u64,
    /// Non-constant blocks stored bit-exactly (`R_k == FULL_BITS`: NaN/∞
    /// carriers or radii that defeat normalization).
    pub fallback: u64,
    /// Mid-bytes (payload body after the `R_k` byte and the leading-code
    /// section) actually written.
    pub mid_bytes: u64,
    /// Bytes the XOR leading-byte codes avoided writing, relative to a
    /// codec that stores every value at full required width.
    pub lead_saved_bytes: u64,
    /// Histogram of `R_k` over non-constant blocks (index = required
    /// length, 0..=64) — same shape as
    /// [`crate::analysis::BlockReport::req_len_histogram`].
    pub req_len_hist: [u64; 65],
    /// Wall time spent in the per-block range-scan kernel (only measured
    /// while telemetry is enabled; flushed as the
    /// `compress.kernel.range_scan` span).
    pub ns_range_scan: u64,
    /// Wall time spent encoding non-constant payloads (the
    /// `compress.kernel.encode` span).
    pub ns_encode: u64,
    /// Scratch-arena growth events — nonzero only while the per-chunk
    /// [`EncodeScratch`] warms up to the largest block.
    pub scratch_grows: u64,
    /// Final arena footprint of the chunk's [`EncodeScratch`] in bytes;
    /// merged as a max (chunks size independently), published as the
    /// `compress.scratch.arena_bytes` gauge.
    pub scratch_arena_bytes: u64,
}

impl Default for BlockEncodeStats {
    fn default() -> Self {
        BlockEncodeStats {
            constant: 0,
            nonconstant: 0,
            fallback: 0,
            mid_bytes: 0,
            lead_saved_bytes: 0,
            req_len_hist: [0; 65],
            ns_range_scan: 0,
            ns_encode: 0,
            scratch_grows: 0,
            scratch_arena_bytes: 0,
        }
    }
}

impl BlockEncodeStats {
    fn merge(&mut self, other: &BlockEncodeStats) {
        self.constant += other.constant;
        self.nonconstant += other.nonconstant;
        self.fallback += other.fallback;
        self.mid_bytes += other.mid_bytes;
        self.lead_saved_bytes += other.lead_saved_bytes;
        for (a, b) in self.req_len_hist.iter_mut().zip(&other.req_len_hist) {
            *a += b;
        }
        self.ns_range_scan += other.ns_range_scan;
        self.ns_encode += other.ns_encode;
        self.scratch_grows += other.scratch_grows;
        self.scratch_arena_bytes = self.scratch_arena_bytes.max(other.scratch_arena_bytes);
    }

    /// Record one non-constant block. The space accounting is derived from
    /// the payload size so the hot strategy loops stay untouched: `zsize`
    /// minus the `R_k` byte and the leading-code section is the body
    /// actually written, and the no-deduplication body size follows from
    /// `R_k` and the strategy.
    fn record_nonconstant(
        &mut self,
        req_len: u32,
        zsize: usize,
        blen: usize,
        full_bits: u32,
        strategy: CommitStrategy,
    ) {
        self.nonconstant += 1;
        self.req_len_hist[req_len as usize] += 1;
        if req_len == full_bits {
            self.fallback += 1;
        }
        let lead_section = (2 * blen).div_ceil(8);
        let body = zsize.saturating_sub(1 + lead_section) as u64;
        self.mid_bytes += body;
        let no_dedup = match strategy {
            CommitStrategy::ByteAligned => bytes_for(req_len) * blen,
            CommitStrategy::BitPack => (req_len as usize * blen).div_ceil(8),
            CommitStrategy::BytePlusResidual => {
                (req_len as usize / 8) * blen + ((req_len as usize % 8) * blen).div_ceil(8)
            }
        } as u64;
        self.lead_saved_bytes += no_dedup.saturating_sub(body);
    }
}

/// Per-chunk compression output; chunks are later stitched into one stream.
/// The serial compressor uses a single chunk covering every block.
#[derive(Debug, Default)]
pub(crate) struct ChunkOutput<F: SzxFloat> {
    /// One entry per block: `true` = non-constant.
    pub states: Vec<bool>,
    /// One `μ` per block (0.0 for bit-exact blocks).
    pub mus: Vec<F>,
    /// Payload length per non-constant block.
    pub zsizes: Vec<u16>,
    /// Concatenated non-constant payloads.
    pub payload: Vec<u8>,
    /// Telemetry local to this chunk (untouched when telemetry is off).
    pub stats: BlockEncodeStats,
}

impl<F: SzxFloat> ChunkOutput<F> {
    pub(crate) fn with_capacity(nblocks: usize, data_bytes: usize) -> Self {
        ChunkOutput {
            states: Vec::with_capacity(nblocks),
            mus: Vec::with_capacity(nblocks),
            zsizes: Vec::with_capacity(nblocks),
            // Non-constant payloads rarely exceed half the raw size on
            // compressible data; growing is cheap if they do.
            payload: Vec::with_capacity(data_bytes / 2 + 64),
            stats: BlockEncodeStats::default(),
        }
    }
}

/// Resolve the configured error bound against the data, using the selected
/// range-scan implementation (all paths produce identical values; see
/// [`kernels::value_range`] and [`crate::simd::value_range`]).
pub(crate) fn resolve_bound<F: SzxFloat>(data: &[F], cfg: &SzxConfig) -> f64 {
    match cfg.error_bound {
        ErrorBound::Absolute(e) => e,
        ErrorBound::Relative(rel) => {
            let range = match cfg.kernel.resolve() {
                KernelPath::Simd => crate::simd::value_range(data),
                KernelPath::Kernel => kernels::value_range(data),
                KernelPath::Scalar => crate::config::value_range(data),
            };
            rel * range
        }
    }
}

/// Compress `data` into a self-describing SZx stream.
///
/// This is the serial reference path; see [`crate::parallel`] for the
/// multicore version. The relative error bound, if configured, is resolved
/// against the global value range here and the stream records the resulting
/// absolute bound.
pub fn compress<F: SzxFloat>(data: &[F], cfg: &SzxConfig) -> Result<Vec<u8>> {
    let _total = szx_telemetry::span("compress.total");
    cfg.validate()?;
    if data.is_empty() {
        return Err(SzxError::EmptyInput);
    }
    let eb = {
        let _s = szx_telemetry::span("compress.range_scan");
        resolve_bound(data, cfg)
    };
    if !eb.is_finite() || eb < 0.0 {
        return Err(SzxError::InvalidConfig(format!(
            "resolved error bound is not usable: {eb}"
        )));
    }

    let nblocks = data.len().div_ceil(cfg.block_size);
    let mut chunk = ChunkOutput::with_capacity(nblocks, data.len() * F::BYTES);
    let mut scratch = EncodeScratch::default();
    {
        let _s = szx_telemetry::span("compress.encode_blocks");
        encode_blocks(
            data,
            cfg.block_size,
            eb,
            cfg.strategy,
            cfg.kernel.resolve(),
            &mut chunk,
            &mut scratch,
        );
    }

    Ok(assemble(&[chunk], data.len(), eb, cfg))
}

/// Encode every block of `data` (a whole number of blocks except possibly
/// the last) into `out`. Shared by the serial and parallel paths; `path`
/// selects among the explicit SIMD kernels, the branch-free portable
/// kernels, and the scalar oracle (byte-identical outputs, see
/// [`crate::kernels`] and [`crate::simd`]).
pub(crate) fn encode_blocks<F: SzxFloat>(
    data: &[F],
    block_size: usize,
    eb: f64,
    strategy: CommitStrategy,
    path: KernelPath,
    out: &mut ChunkOutput<F>,
    scratch: &mut EncodeScratch,
) {
    // Zone-only attribution of which hot-loop path ran: the profiler and
    // flight recorder see simd vs kernel vs scalar time separately, at the
    // cost of one zone per chunk (never per block).
    match path {
        KernelPath::Simd => {
            let _z = szx_telemetry::trace_zone("compress.simd.encode", 0);
            encode_blocks_impl::<F, { KERNEL_SIMD }>(data, block_size, eb, strategy, out, scratch);
        }
        KernelPath::Kernel => {
            let _z = szx_telemetry::trace_zone("compress.encode.kernel", 0);
            encode_blocks_impl::<F, { KERNEL_PORTABLE }>(
                data, block_size, eb, strategy, out, scratch,
            );
        }
        KernelPath::Scalar => {
            let _z = szx_telemetry::trace_zone("compress.encode.scalar", 0);
            encode_blocks_impl::<F, { KERNEL_SCALAR }>(
                data, block_size, eb, strategy, out, scratch,
            );
        }
    }
    // Surface the scratch arena's growth events through the chunk stats so
    // the allocation-regression test can observe them; the counter is reset
    // so a reused scratch is not double-counted.
    out.stats.scratch_grows += scratch.take_grows();
    out.stats.scratch_arena_bytes = out.stats.scratch_arena_bytes.max(scratch.arena_bytes());
}

/// Path discriminants for the monomorphized block loop (a const-generic
/// enum is not expressible, so the three paths are const `u8` values).
const KERNEL_SCALAR: u8 = 0;
const KERNEL_PORTABLE: u8 = 1;
const KERNEL_SIMD: u8 = 2;

/// The monomorphized block loop. `PATH` is a const so each path compiles
/// to its own fully-inlined loop with zero dispatch inside.
fn encode_blocks_impl<F: SzxFloat, const PATH: u8>(
    data: &[F],
    block_size: usize,
    eb: f64,
    strategy: CommitStrategy,
    out: &mut ChunkOutput<F>,
    scratch: &mut EncodeScratch,
) {
    // Hoisted once per chunk: with telemetry off the block loop carries no
    // accounting (and no clock reads) at all; with it on the accounting is
    // chunk-local.
    let record = szx_telemetry::enabled();
    for block in data.chunks(block_size) {
        let t0 = record.then(std::time::Instant::now);
        let stats = match PATH {
            KERNEL_SIMD => crate::simd::block_stats(block),
            KERNEL_PORTABLE => kernels::block_stats(block),
            _ => BlockStats::compute(block),
        };
        let t1 = record.then(std::time::Instant::now);
        if let (Some(t0), Some(t1)) = (t0, t1) {
            out.stats.ns_range_scan += t1.duration_since(t0).as_nanos() as u64;
        }
        if stats.is_constant_for(eb, block) {
            out.states.push(false);
            out.mus.push(stats.mu);
            if record {
                out.stats.constant += 1;
            }
        } else {
            out.states.push(true);
            let start = out.payload.len();
            let (mu, req_len) = match PATH {
                KERNEL_SIMD => crate::simd::encode_nonconstant(
                    block,
                    &stats,
                    eb,
                    strategy,
                    &mut out.payload,
                    scratch,
                ),
                KERNEL_PORTABLE => kernels::encode_nonconstant(
                    block,
                    &stats,
                    eb,
                    strategy,
                    &mut out.payload,
                    scratch,
                ),
                _ => encode_nonconstant(block, &stats, eb, strategy, &mut out.payload, scratch),
            };
            out.mus.push(mu);
            let zsize = out.payload.len() - start;
            debug_assert!(
                zsize <= u16::MAX as usize,
                "payload {zsize} exceeds zsize range"
            );
            out.zsizes.push(zsize as u16);
            if record {
                out.stats
                    .record_nonconstant(req_len, zsize, block.len(), F::FULL_BITS, strategy);
                if let Some(t1) = t1 {
                    out.stats.ns_encode += t1.elapsed().as_nanos() as u64;
                }
            }
        }
    }
}

/// Stitch chunk outputs into the final stream.
pub(crate) fn assemble<F: SzxFloat>(
    chunks: &[ChunkOutput<F>],
    n: usize,
    eb: f64,
    cfg: &SzxConfig,
) -> Vec<u8> {
    let _s = szx_telemetry::span("compress.assemble");
    let n_nonconstant: usize = chunks.iter().map(|c| c.zsizes.len()).sum();
    let nblocks: usize = chunks.iter().map(|c| c.states.len()).sum();
    let payload_len: usize = chunks.iter().map(|c| c.payload.len()).sum();

    let header = Header {
        dtype: F::DTYPE_CODE,
        strategy: cfg.strategy,
        block_size: cfg.block_size,
        n,
        eb,
        n_nonconstant,
    };

    let mut bytes = Vec::with_capacity(
        crate::stream::HEADER_LEN
            + nblocks.div_ceil(8)
            + nblocks * F::BYTES
            + n_nonconstant * 2
            + payload_len,
    );
    header.write(&mut bytes);

    // State bits. Chunk boundaries are multiples of 8 blocks (enforced by
    // the parallel splitter), so per-chunk bit packing concatenates cleanly;
    // the serial path has a single chunk and needs no such care.
    let mut bitw = BitWriter::with_capacity(nblocks.div_ceil(8));
    for c in chunks {
        for &s in &c.states {
            bitw.write_bit(s);
        }
    }
    bytes.extend_from_slice(bitw.as_bytes());

    for c in chunks {
        for &mu in &c.mus {
            mu.write_le(&mut bytes);
        }
    }
    for c in chunks {
        for &z in &c.zsizes {
            bytes.extend_from_slice(&z.to_le_bytes());
        }
    }
    for c in chunks {
        bytes.extend_from_slice(&c.payload);
    }

    if szx_telemetry::enabled() {
        flush_encode_telemetry(chunks, n * F::BYTES, bytes.len());
    }
    bytes
}

/// Merge every chunk's local stats and publish them to the global registry —
/// the single join point shared by the serial and parallel compressors, so
/// the registry sees exactly one flush per top-level call regardless of how
/// many rayon workers produced the chunks.
fn flush_encode_telemetry<F: SzxFloat>(
    chunks: &[ChunkOutput<F>],
    raw_bytes: usize,
    stream_bytes: usize,
) {
    let mut merged = BlockEncodeStats::default();
    for c in chunks {
        merged.merge(&c.stats);
    }

    let tel = szx_telemetry::global();
    tel.counter("compress.calls").incr();
    tel.counter("compress.blocks.constant").add(merged.constant);
    tel.counter("compress.blocks.nonconstant")
        .add(merged.nonconstant);
    tel.counter("compress.blocks.fallback").add(merged.fallback);
    tel.counter("compress.bytes.mid").add(merged.mid_bytes);
    tel.counter("compress.bytes.lead_saved")
        .add(merged.lead_saved_bytes);
    tel.counter("compress.bytes.raw").add(raw_bytes as u64);
    tel.counter("compress.bytes.stream")
        .add(stream_bytes as u64);
    tel.counter("compress.scratch.grows")
        .add(merged.scratch_grows);
    tel.gauge("compress.scratch.arena_bytes")
        .set_max(merged.scratch_arena_bytes as f64);
    // Per-kernel time attribution: one aggregate record per top-level call
    // (per-block clock reads happen only while telemetry is on).
    if merged.ns_range_scan > 0 {
        tel.span_stats("compress.kernel.range_scan")
            .record(merged.ns_range_scan);
    }
    if merged.ns_encode > 0 {
        tel.span_stats("compress.kernel.encode")
            .record(merged.ns_encode);
    }

    let req_hist = tel.hist_linear("compress.req_len", 64);
    for (r, &count) in merged.req_len_hist.iter().enumerate() {
        req_hist.record_n(r as u64, count);
    }
    let zsize_hist = tel.hist_log2("compress.block_zsize");
    for c in chunks {
        for &z in &c.zsizes {
            zsize_hist.record(z as u64);
        }
    }
}

/// Encode one non-constant block. Returns the μ actually used (0.0 when the
/// block is stored bit-exactly) and the block's required length `R_k`.
///
/// Payload layout (all strategies): `[R_k: u8][2-bit leading codes][data...]`
/// where `data` depends on the strategy:
/// * Solution C: mid-bytes only (plain memcpy commits) — the paper's design.
/// * Solution A: one tightly bit-packed pool of `R_k − 8·L_i` bits per value.
/// * Solution B: whole-byte pool followed by a `β = R_k mod 8`-bit residual
///   pool.
fn encode_nonconstant<F: SzxFloat>(
    block: &[F],
    stats: &BlockStats<F>,
    eb: f64,
    strategy: CommitStrategy,
    payload: &mut Vec<u8>,
    scratch: &mut EncodeScratch,
) -> (F, u32) {
    let req_len = required_length::<F>(stats.radius, eb);
    let raw = req_len == F::FULL_BITS;
    let mu = if raw { F::ZERO } else { stats.mu };

    payload.push(req_len as u8);
    let lead_off = payload.len();
    let lead_bytes = (2 * block.len()).div_ceil(8);
    payload.resize(lead_off + lead_bytes, 0);

    match strategy {
        CommitStrategy::ByteAligned => {
            let s = shift_for(req_len);
            let nb = bytes_for(req_len);
            let lead_cap = nb.min(3);
            let mut prev = 0u64;
            for (i, &d) in block.iter().enumerate() {
                let v = if raw { d } else { d - mu };
                let w = v.to_word() >> s;
                let xor = w ^ prev;
                let lead = ((xor.leading_zeros() / 8) as usize).min(lead_cap);
                payload[lead_off + i / 4] |= (lead as u8) << (6 - 2 * (i % 4));
                let be = w.to_be_bytes();
                payload.extend_from_slice(&be[lead..nb]);
                prev = w;
            }
        }
        CommitStrategy::BitPack => {
            let lead_cap = (req_len / 8).min(3) as usize;
            scratch.bits.clear();
            let mut prev = 0u64;
            for (i, &d) in block.iter().enumerate() {
                let v = if raw { d } else { d - mu };
                let w = v.to_word();
                let xor = w ^ prev;
                let lead = ((xor.leading_zeros() / 8) as usize).min(lead_cap);
                payload[lead_off + i / 4] |= (lead as u8) << (6 - 2 * (i % 4));
                let t = req_len - 8 * lead as u32;
                if t > 0 {
                    let bits = (w << (8 * lead)) >> (64 - t);
                    scratch.bits.write_bits(bits, t);
                }
                prev = w;
            }
            payload.extend_from_slice(scratch.bits.as_bytes());
        }
        CommitStrategy::BytePlusResidual => {
            let beta = req_len % 8;
            let lead_cap = (req_len / 8).min(3) as usize;
            scratch.bytes_pool.clear();
            scratch.bits.clear();
            let mut prev = 0u64;
            for (i, &d) in block.iter().enumerate() {
                let v = if raw { d } else { d - mu };
                let w = v.to_word();
                let xor = w ^ prev;
                let lead = ((xor.leading_zeros() / 8) as usize).min(lead_cap);
                payload[lead_off + i / 4] |= (lead as u8) << (6 - 2 * (i % 4));
                // α whole bytes after the identical prefix...
                let alpha = (req_len / 8) as usize - lead;
                let be = w.to_be_bytes();
                scratch
                    .bytes_pool
                    .extend_from_slice(&be[lead..lead + alpha]);
                // ...then β residual bits, identical width for every value.
                if beta > 0 {
                    let shift_out = 8 * (lead + alpha) as u32;
                    let bits = (w << shift_out) >> (64 - beta);
                    scratch.bits.write_bits(bits, beta);
                }
                prev = w;
            }
            payload.extend_from_slice(&scratch.bytes_pool);
            payload.extend_from_slice(scratch.bits.as_bytes());
        }
    }
    (mu, req_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;

    #[test]
    fn compress_rejects_empty() {
        let err = compress::<f32>(&[], &SzxConfig::absolute(1e-3)).unwrap_err();
        assert_eq!(err, SzxError::EmptyInput);
    }

    #[test]
    fn compress_rejects_invalid_config() {
        let cfg = SzxConfig::absolute(1e-3).with_block_size(0);
        assert!(compress(&[1.0f32], &cfg).is_err());
    }

    #[test]
    fn constant_data_compresses_to_mu_only() {
        let data = vec![3.25f32; 1024];
        let bytes = compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        // 8 blocks: header 36 + 1 state byte + 8 μ (32 bytes) = 69 bytes.
        assert_eq!(bytes.len(), 69);
        let h = crate::stream::inspect(&bytes).unwrap();
        assert_eq!(h.n_nonconstant, 0);
    }

    #[test]
    fn relative_bound_with_nonfinite_range_errors_cleanly() {
        let data = [f32::MAX, f32::MIN, 0.0, 1.0];
        let cfg = SzxConfig {
            block_size: 4,
            error_bound: ErrorBound::Relative(1e-3),
            strategy: CommitStrategy::ByteAligned,
            kernel: crate::config::KernelSelect::Auto,
        };
        // Range overflows f64? No — f32::MAX fits in f64, so this resolves
        // fine and must compress.
        assert!(compress(&data, &cfg).is_ok());
    }

    #[test]
    fn payload_grows_with_entropy() {
        let smooth: Vec<f32> = (0..4096).map(|i| (i as f32 * 1e-4).sin()).collect();
        let rough: Vec<f32> = (0..4096)
            .map(|i| ((i as f32 * 12.9898).sin() * 43_758.547).fract())
            .collect();
        let cfg = SzxConfig::absolute(1e-3);
        let a = compress(&smooth, &cfg).unwrap().len();
        let b = compress(&rough, &cfg).unwrap().len();
        assert!(a < b, "smooth {a} must compress smaller than rough {b}");
    }
}
