//! # szx-core
//!
//! A pure-Rust implementation of **SZx**, the ultrafast error-bounded lossy
//! compressor for scientific floating-point datasets introduced in
//!
//! > Yu, Di, Zhao, Tian, Tao, Liang, Cappello.
//! > *Ultrafast Error-Bounded Lossy Compression for Scientific Datasets.*
//! > HPDC '22. <https://doi.org/10.1145/3502181.3531473>
//!
//! SZx restricts itself to lightweight operations — comparisons,
//! addition/subtraction, bitwise shifts/XOR, and memcpy — and still bounds
//! every pointwise error by a user-specified `e`:
//!
//! * the dataset is scanned as fixed-size 1-D blocks (default 128 elements);
//! * blocks whose variation radius fits inside `e` are **constant** blocks,
//!   stored as a single value `μ = (min+max)/2`;
//! * other blocks are normalized by `μ` and truncated to the *required
//!   significant bits* derived from the block radius and `e` (Formula 4),
//!   right-shifted so those bits form whole bytes (Formula 5), and
//!   deduplicated against the previous value via an XOR leading-byte code.
//!
//! ## Quick start
//!
//! ```
//! use szx_core::{compress, decompress, SzxConfig};
//!
//! let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin()).collect();
//! let cfg = SzxConfig::relative(1e-3); // value-range-based bound, block 128
//! let bytes = compress(&data, &cfg).unwrap();
//! let restored: Vec<f32> = decompress(&bytes).unwrap();
//!
//! let eb = 1e-3 * 2.0; // range of sin is 2.0
//! assert!(data.iter().zip(&restored).all(|(a, b)| (a - b).abs() as f64 <= eb));
//! assert!(bytes.len() < data.len() * 4 / 2, "compresses at least 2x");
//! ```
//!
//! ## Multicore
//!
//! [`parallel::compress`] / [`parallel::decompress`] parallelize over blocks
//! with rayon, mirroring the paper's OpenMP design (§6.1): compression
//! chunks blocks across threads, decompression prefix-sums the per-block
//! compressed sizes (`zsize_array`) to hand each thread an independent
//! starting offset.
//!
//! ## Guarantees
//!
//! * `max |d_i − d'_i| ≤ e` for every finite input — enforced by
//!   construction and by property tests;
//! * blocks containing NaN or ±∞ (and blocks whose dynamic range defeats
//!   normalization) degrade to bit-exact storage rather than corrupting data;
//! * `e = 0` yields a lossless (bit-exact) stream;
//! * decompression of corrupt or truncated streams returns an error, never
//!   panics or reads out of bounds.

// `deny` rather than `forbid`: the explicit SIMD kernels under `simd/` are
// the one sanctioned unsafe surface (intrinsics), opted in per-file with an
// inner `#![allow(unsafe_code)]`. Everything else in the crate stays safe,
// and szx-audit enforces both the attribute pair below and the allowlist.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod analysis;
pub mod archive;
pub mod bitio;
pub mod block;
pub mod config;
pub(crate) mod contracts;
pub(crate) mod cursor;
pub mod decode;
pub mod dekernels;
pub mod encode;
pub mod error;
pub mod float;
pub mod kernels;
pub mod parallel;
pub mod random_access;
pub mod simd;
pub mod stream;
pub mod streaming;

pub use archive::{ArchiveReader, ArchiveWriter};
pub use config::{
    CommitStrategy, ErrorBound, KernelPath, KernelSelect, SzxConfig, DEFAULT_BLOCK_SIZE,
    MAX_BLOCK_SIZE,
};
pub use decode::{
    decompress, decompress_into, decompress_into_scratch, decompress_into_with, decompress_with,
};
pub use dekernels::DecodeScratch;
pub use encode::compress;
pub use error::{Result, SzxError};
pub use float::SzxFloat;
pub use random_access::RandomAccess;
pub use stream::{inspect, Header};
pub use streaming::{FrameReader, FrameStats, FrameWriter};

/// Compression ratio helper: original bytes / compressed bytes.
pub fn compression_ratio<F: SzxFloat>(n_elements: usize, compressed_len: usize) -> f64 {
    (n_elements * F::BYTES) as f64 / compressed_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_ratio_math() {
        assert_eq!(compression_ratio::<f32>(1000, 400), 10.0);
        assert_eq!(compression_ratio::<f64>(1000, 800), 10.0);
    }
}
