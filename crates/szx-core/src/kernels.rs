//! Branch-free, autovectorizer-friendly implementations of the three hot
//! loops of Algorithm 1 — the paper's premise is that SZx stays ultrafast by
//! restricting itself to adds, bitwise ops, and memcpy (§4), and these
//! kernels restructure the per-value work so the compiler can actually emit
//! that shape:
//!
//! 1. **Range scan** ([`block_stats`], [`minmax`]): min/max over fixed
//!    [`LANES`]-wide accumulator stripes with no NaN branch in the loop body
//!    (NaN presence is OR-accumulated via `is_nan()` alongside the
//!    comparisons), reduced lane-by-lane at the end.
//! 2. **Normalize → shift → XOR → leading-byte coding**
//!    ([`encode_nonconstant`]): one pass materializes the high-aligned,
//!    right-shifted words (Formulas 4–5), a second pass XORs each word with
//!    its predecessor through a sliding window (no loop-carried scalar) and
//!    derives the 2-bit lead codes with table-free bit arithmetic
//!    (`clz >> 3`, clamped with a branch-free `min`), a third packs four
//!    codes per byte.
//! 3. **Mid-byte committer**: every value stores `nb − lead` bytes, but the
//!    kernel always writes a full 8-byte big-endian word (`w << 8·lead`)
//!    into the [`EncodeScratch`] arena and advances the cursor by the true
//!    length — the next store overlaps the garbage tail, so the inner loop
//!    is an unconditional 8-byte store instead of a variable-length
//!    bounds-checked `Vec` append (the Solution C "memcpy-only" commit of
//!    §5.1, without the per-value call).
//!
//! Every kernel is **byte-for-byte equivalent** to the scalar reference
//! loops in [`crate::block`] / [`crate::encode`] — including the sign of
//! zero in `μ` for mixed-zero blocks and NaN classification — which the
//! roundtrip property suite asserts over the full configuration grid. The
//! scalar loops are kept as the oracle behind
//! [`KernelSelect::Scalar`](crate::config::KernelSelect).

use crate::bitio::BitWriter;
use crate::block::{bytes_for, required_length, shift_for, BlockStats};
use crate::config::CommitStrategy;
use crate::contracts::contract;
use crate::float::SzxFloat;

/// Accumulator stripes per scan loop. Eight lanes cover a 256-bit vector of
/// `f32` (one AVX2 register) and two 256-bit vectors of `f64`; the default
/// 128-element block is 16 full stripes.
pub const LANES: usize = 8;

/// Reusable per-chunk scratch for the encode kernels. Threaded through
/// [`crate::encode::encode_blocks`] (serial: one per call; parallel: one per
/// rayon chunk) so the block loop performs **zero** allocations once the
/// arenas have grown to the chunk's largest block.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// High-aligned, normalized, shifted words — one per block element.
    /// `pub(crate)`: the SIMD encoder materializes these with intrinsics
    /// and then shares the pack/commit passes below.
    pub(crate) words: Vec<u64>,
    /// 2-bit leading-byte code per element (stored unpacked, one byte each).
    pub(crate) leads: Vec<u8>,
    /// Mid-byte arena: worst case 8 bytes per element, plus 8 bytes of slack
    /// so the committer's unconditional 8-byte stores never overrun.
    pub(crate) mid: Vec<u8>,
    /// Whole-byte pool for Solution A/B scalar fallbacks.
    pub(crate) bytes_pool: Vec<u8>,
    /// Bit pool for Solution A/B residuals.
    pub(crate) bits: BitWriter,
    /// Arena (re)allocation events — flushed to the
    /// `compress.scratch.grows` telemetry counter so tests can assert the
    /// hot loop stays allocation-free after warm-up.
    pub(crate) grows: u64,
}

impl EncodeScratch {
    /// Grow the arenas to hold a block of `blen` elements. Amortized free:
    /// after the first block of maximal size this never reallocates.
    #[inline]
    pub(crate) fn ensure(&mut self, blen: usize) {
        if self.words.len() < blen {
            self.grows += 1;
            self.words.resize(blen, 0);
            self.leads.resize(blen, 0);
            self.mid.resize(blen * 8 + 8, 0);
        }
        contract!(
            self.mid.len() >= blen * 8 + 8,
            "mid-byte arena sized for {blen} elements plus slack"
        );
    }

    /// Drain the growth-event count (for the telemetry flush).
    #[inline]
    pub(crate) fn take_grows(&mut self) -> u64 {
        std::mem::take(&mut self.grows)
    }

    /// Bytes currently reserved by the arenas — published as the
    /// `compress.scratch.arena_bytes` gauge at the telemetry flush.
    pub(crate) fn arena_bytes(&self) -> u64 {
        (self.words.capacity() * 8
            + self.leads.capacity()
            + self.mid.capacity()
            + self.bytes_pool.capacity()) as u64
    }
}

/// Branch-free equivalent of [`BlockStats::compute`]: the min/max scan runs
/// over [`LANES`] independent accumulator stripes (select, not branch, per
/// comparison) and NaN presence is folded in with `is_nan()` — no NaN branch
/// in the loop body. Bit-identical to the scalar scan, including the
/// first-element tie-breaking that pins the sign of zero in `μ`.
#[inline]
pub fn block_stats<F: SzxFloat>(block: &[F]) -> BlockStats<F> {
    debug_assert!(!block.is_empty());
    if block.len() < 2 * LANES {
        return BlockStats::compute(block);
    }
    let mut stripes = block.chunks_exact(LANES);
    let first = stripes.next().expect("len >= 2*LANES");
    let mut mins: [F; LANES] = first.try_into().expect("stripe width");
    let mut maxs = mins;
    let mut nans = [false; LANES];
    for j in 0..LANES {
        nans[j] = first[j].is_nan();
    }
    for stripe in &mut stripes {
        for j in 0..LANES {
            let d = stripe[j];
            // `if c { a } else { b }` over floats lowers to a select/vmin —
            // same comparison semantics as the scalar loop (NaN never
            // replaces, ties keep the incumbent).
            mins[j] = if d < mins[j] { d } else { mins[j] };
            maxs[j] = if d > maxs[j] { d } else { maxs[j] };
            nans[j] |= d.is_nan();
        }
    }
    // Lane reduction in stripe order, then the scalar tail: ties keep the
    // earlier lane / earlier element, so an all-equal block yields exactly
    // `block[0]` as the scalar scan does.
    let mut min = mins[0];
    let mut max = maxs[0];
    let mut has_nan = nans[0];
    for j in 1..LANES {
        min = if mins[j] < min { mins[j] } else { min };
        max = if maxs[j] > max { maxs[j] } else { max };
        has_nan |= nans[j];
    }
    for &d in stripes.remainder() {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
        has_nan |= d.is_nan();
    }
    if has_nan {
        return BlockStats {
            mu: F::ZERO,
            radius: F::from_f64(f64::NAN),
        };
    }
    let mu = F::half_sum(min, max);
    BlockStats {
        mu,
        radius: crate::block::radius_about(mu, min, max),
    }
}

/// Branch-free global min/max (NaN-ignoring), the kernel behind the
/// relative-error-bound range scan. Returns `(+inf, -inf)` for all-NaN
/// input, matching the scalar scan's untouched sentinels.
#[inline]
pub fn minmax<F: SzxFloat>(data: &[F]) -> (F, F) {
    let mut min = F::from_f64(f64::INFINITY);
    let mut max = F::from_f64(f64::NEG_INFINITY);
    let mut stripes = data.chunks_exact(LANES);
    let mut mins = [min; LANES];
    let mut maxs = [max; LANES];
    for stripe in &mut stripes {
        for j in 0..LANES {
            let d = stripe[j];
            mins[j] = if d < mins[j] { d } else { mins[j] };
            maxs[j] = if d > maxs[j] { d } else { maxs[j] };
        }
    }
    for j in 0..LANES {
        min = if mins[j] < min { mins[j] } else { min };
        max = if maxs[j] > max { maxs[j] } else { max };
    }
    for &d in stripes.remainder() {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
    }
    (min, max)
}

/// Global value range `max - min` via [`minmax`]; identical result to
/// [`crate::config::value_range`] (unique extrema have unique bit patterns,
/// and an all-zero dataset reduces to `x - x = +0.0` either way).
#[inline]
pub fn value_range<F: SzxFloat>(data: &[F]) -> f64 {
    let (min, max) = minmax(data);
    let (min, max) = (min.to_f64(), max.to_f64());
    if max >= min {
        max - min
    } else {
        0.0
    }
}

/// Kernel encode of one non-constant block: same payload layout and bytes as
/// the scalar [`crate::encode`] path, produced by four flat passes over the
/// scratch arenas instead of one branchy per-value loop.
pub(crate) fn encode_nonconstant<F: SzxFloat>(
    block: &[F],
    stats: &BlockStats<F>,
    eb: f64,
    strategy: CommitStrategy,
    payload: &mut Vec<u8>,
    scratch: &mut EncodeScratch,
) -> (F, u32) {
    let req_len = required_length::<F>(stats.radius, eb);
    let raw = req_len == F::FULL_BITS;
    let mu = if raw { F::ZERO } else { stats.mu };
    let blen = block.len();
    scratch.ensure(blen);

    payload.push(req_len as u8); // CAST: req_len <= FULL_BITS = 64

    // Pass 1 — normalize and shift (Formula 5). Solution C right-shifts so
    // the required bits fill whole bytes; A/B keep the word unshifted. The
    // bit-exact (`raw`) variant must not touch the value arithmetically:
    // `d - 0.0` would quieten signaling-NaN payloads.
    let s = match strategy {
        CommitStrategy::ByteAligned => shift_for(req_len),
        _ => 0,
    };
    let words = &mut scratch.words[..blen];
    if raw {
        for (w, &d) in words.iter_mut().zip(block) {
            *w = d.to_word() >> s;
        }
    } else {
        for (w, &d) in words.iter_mut().zip(block) {
            *w = (d - mu).to_word() >> s;
        }
    }

    // Pass 2 — XOR leading-byte codes, table-free: `clz >> 3` counts whole
    // identical leading bytes, clamped branch-free to the strategy's cap.
    // The predecessor comes from a two-element window over the materialized
    // words, so there is no loop-carried scalar dependence.
    // CAST: both arms are clamped to at most 3.
    let lead_cap = match strategy {
        CommitStrategy::ByteAligned => bytes_for(req_len).min(3),
        _ => (req_len / 8).min(3) as usize,
    } as u8; // CAST: as above
    let leads = &mut scratch.leads[..blen];
    // CAST: leading_zeros() <= 64, so clz >> 3 <= 8 fits u8.
    leads[0] = ((words[0].leading_zeros() >> 3) as u8).min(lead_cap);
    for (l, pair) in leads[1..].iter_mut().zip(words.windows(2)) {
        let xor = pair[0] ^ pair[1];
        // CAST: as above; clz >> 3 <= 8 fits u8.
        *l = ((xor.leading_zeros() >> 3) as u8).min(lead_cap);
    }

    // Pass 3 — pack four 2-bit codes per byte, MSB-first.
    pack_lead_codes(leads, payload);

    // Pass 4 — commit.
    match strategy {
        CommitStrategy::ByteAligned => {
            let nb = bytes_for(req_len);
            commit_byte_aligned(words, leads, nb, &mut scratch.mid, payload);
        }
        CommitStrategy::BitPack => {
            scratch.bits.clear();
            for (&w, &lead) in words.iter().zip(leads.iter()) {
                // CAST: lead <= lead_cap <= 3 (twice below).
                let t = req_len - 8 * lead as u32;
                if t > 0 {
                    scratch
                        .bits
                        .write_bits((w << (8 * lead as u32)) >> (64 - t), t); // CAST: as above
                }
            }
            payload.extend_from_slice(scratch.bits.as_bytes());
        }
        CommitStrategy::BytePlusResidual => {
            // Whole-byte pool through the same arena committer (α bytes per
            // value), then a constant-width β-bit residual pool: the scalar
            // loop's `shift_out = 8·(lead + α)` collapses to `8·(R/8)`.
            let beta = req_len % 8;
            let base_alpha = (req_len / 8) as usize;
            let shift_out = 8 * base_alpha as u32; // CAST: base_alpha <= 8
            scratch.bits.clear();
            let mid = &mut scratch.mid[..];
            let mut pos = 0usize;
            for (&w, &lead) in words.iter().zip(leads.iter()) {
                let lead = lead as usize;
                contract!(
                    lead <= base_alpha && pos + 8 <= mid.len(),
                    "byte-pool store at {pos} must stay inside the slack-padded arena"
                );
                // CAST: lead <= lead_cap <= 3.
                mid[pos..pos + 8].copy_from_slice(&(w << (8 * lead as u32)).to_be_bytes());
                pos += base_alpha - lead;
                if beta > 0 {
                    scratch
                        .bits
                        .write_bits((w << shift_out) >> (64 - beta), beta);
                }
            }
            payload.extend_from_slice(&mid[..pos]);
            payload.extend_from_slice(scratch.bits.as_bytes());
        }
    }
    (mu, req_len)
}

/// Pack four 2-bit lead codes per byte, MSB-first, plus a remainder byte —
/// the shared pass 3 of the kernel and SIMD encoders. `leads` may be any
/// length; a non-multiple-of-4 tail packs into one final partial byte, so
/// the SIMD path may call this on just the tail after packing full groups
/// with intrinsics (the split point must be a multiple of 4).
#[inline]
pub(crate) fn pack_lead_codes(leads: &[u8], payload: &mut Vec<u8>) {
    let mut quads = leads.chunks_exact(4);
    for q in &mut quads {
        payload.push(q[0] << 6 | q[1] << 4 | q[2] << 2 | q[3]);
    }
    let rem = quads.remainder();
    if !rem.is_empty() {
        let mut b = 0u8;
        for (j, &l) in rem.iter().enumerate() {
            b |= l << (6 - 2 * j);
        }
        payload.push(b);
    }
}

/// The Solution C mid-byte committer — the shared pass 4 of the kernel and
/// SIMD encoders: value i owes bytes `lead..nb` of its big-endian word.
/// `w << 8·lead` moves byte `lead` to the front, so one unconditional
/// 8-byte store writes them (plus a garbage tail the next store overlaps);
/// the cursor advances by the true length. The arena carries 8 bytes of
/// slack, so the slice index below never goes out of bounds.
#[inline]
pub(crate) fn commit_byte_aligned(
    words: &[u64],
    leads: &[u8],
    nb: usize,
    mid: &mut [u8],
    payload: &mut Vec<u8>,
) {
    let mut pos = 0usize;
    for (&w, &lead) in words.iter().zip(leads.iter()) {
        let lead = lead as usize;
        contract!(
            lead <= nb && pos + 8 <= mid.len(),
            "committer store at {pos} must stay inside the slack-padded arena"
        );
        // CAST: lead <= lead_cap <= 3.
        mid[pos..pos + 8].copy_from_slice(&(w << (8 * lead as u32)).to_be_bytes());
        pos += nb - lead;
    }
    payload.extend_from_slice(&mid[..pos]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_stats_matches_scalar_on_plain_data() {
        for n in [1usize, 7, 8, 15, 16, 17, 128, 1000] {
            let block: Vec<f32> = (0..n).map(|i| ((i * 37 % 97) as f32) - 48.0).collect();
            let a = BlockStats::compute(&block);
            let b = block_stats(&block);
            assert_eq!(a.mu.to_bits(), b.mu.to_bits(), "mu n={n}");
            assert_eq!(a.radius.to_bits(), b.radius.to_bits(), "radius n={n}");
        }
    }

    #[test]
    fn block_stats_matches_scalar_on_nan_blocks() {
        for pos in [0usize, 3, 9, 127] {
            let mut block = vec![1.5f32; 128];
            block[pos] = f32::NAN;
            let a = BlockStats::compute(&block);
            let b = block_stats(&block);
            assert!(a.radius.is_nan() && b.radius.is_nan(), "pos={pos}");
            assert_eq!(a.mu.to_bits(), b.mu.to_bits());
        }
    }

    #[test]
    fn block_stats_preserves_zero_sign_of_mu() {
        // All-zero mixed-sign blocks: μ must be exactly block[0], sign bit
        // included, in both paths (it is stored verbatim in the stream).
        let mut block = vec![0.0f32; 64];
        block[0] = -0.0;
        block[13] = -0.0;
        let a = BlockStats::compute(&block);
        let b = block_stats(&block);
        assert_eq!(a.mu.to_bits(), (-0.0f32).to_bits());
        assert_eq!(a.mu.to_bits(), b.mu.to_bits());
        assert_eq!(a.radius.to_bits(), b.radius.to_bits());
    }

    #[test]
    fn minmax_matches_scalar_value_range() {
        let data: Vec<f64> = (0..1003)
            .map(|i| ((i * 31 % 211) as f64) * 0.37 - 40.0)
            .collect();
        assert_eq!(value_range(&data), crate::config::value_range(&data));
        let with_nan: Vec<f32> = vec![f32::NAN, 3.0, -1.0, f32::NAN, 7.5];
        assert_eq!(
            value_range(&with_nan),
            crate::config::value_range(&with_nan)
        );
        assert_eq!(value_range::<f32>(&[f32::NAN; 20]), 0.0);
        assert_eq!(value_range::<f32>(&[]), 0.0);
    }

    #[test]
    fn scratch_grows_once_per_high_water_mark() {
        let mut s = EncodeScratch::default();
        s.ensure(128);
        s.ensure(64);
        s.ensure(128);
        assert_eq!(s.grows, 1);
        s.ensure(4096);
        assert_eq!(s.grows, 2);
        assert!(s.mid.len() >= 4096 * 8 + 8);
    }
}
