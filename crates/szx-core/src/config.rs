//! Compressor configuration: error-bound mode, block size, and the
//! bit-commit strategy of §5.1.

use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

/// Largest block size the stream format supports. The per-block compressed
/// size is recorded in a `u16` (`zsize_array`), so a block's worst-case
/// payload (`1 + ceil(2·b/8) + b·8` bytes for f64) must stay below 65536.
pub const MAX_BLOCK_SIZE: usize = 4096;

/// Default block size. The paper's exploration (§5.3, Figure 8) finds the
/// compression ratio saturates at 128 while PSNR is insensitive to block
/// size, so 128 is the best trade-off.
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// How the maximum allowed pointwise error is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|d_i - d'_i| <= e`.
    Absolute(f64),
    /// Value-range-based relative bound: the absolute bound is
    /// `e = rel * (max(D) - min(D))`, resolved with one extra pass over the
    /// data. This is the `REL` mode used throughout the paper's evaluation.
    Relative(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound for the given dataset. Returns the
    /// absolute value unchanged for [`ErrorBound::Absolute`].
    pub fn resolve<F: SzxFloat>(&self, data: &[F]) -> f64 {
        match *self {
            ErrorBound::Absolute(e) => e,
            ErrorBound::Relative(rel) => rel * value_range(data),
        }
    }

    fn raw(&self) -> f64 {
        match *self {
            ErrorBound::Absolute(e) | ErrorBound::Relative(e) => e,
        }
    }
}

/// Global value range `max - min`, ignoring NaNs (a dataset of only NaNs has
/// range 0 and compresses bit-exactly regardless of the bound).
pub fn value_range<F: SzxFloat>(data: &[F]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &d in data {
        let x = d.to_f64();
        if x < min {
            min = x;
        }
        if x > max {
            max = x;
        }
    }
    if max >= min {
        max - min
    } else {
        0.0
    }
}

/// The three ways of committing the necessary mantissa bits (§5.1, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitStrategy {
    /// Solution A: treat the necessary bits as one arbitrary-width integer
    /// and pack it with shift/and/or into a single bit pool (Pastri-style).
    BitPack,
    /// Solution B: split into whole bytes plus residual bits kept in a
    /// separate tightly packed pool (SZ-style).
    BytePlusResidual,
    /// Solution C — the paper's contribution: right-shift the normalized
    /// value by `s = (8 - R%8) % 8` so the necessary bits always form whole
    /// bytes, committed with plain memcpy. Default.
    #[default]
    ByteAligned,
}

impl CommitStrategy {
    pub(crate) fn code(self) -> u8 {
        match self {
            CommitStrategy::BitPack => 0,
            CommitStrategy::BytePlusResidual => 1,
            CommitStrategy::ByteAligned => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> Result<Self> {
        match code {
            0 => Ok(CommitStrategy::BitPack),
            1 => Ok(CommitStrategy::BytePlusResidual),
            2 => Ok(CommitStrategy::ByteAligned),
            other => Err(SzxError::CorruptStream(format!(
                "unknown commit-strategy code {other}"
            ))),
        }
    }
}

/// Which implementation of the hot loops the compressor runs. All paths
/// produce **byte-identical** streams (asserted by the roundtrip property
/// suite and the fuzz differential oracle); the choice only affects speed,
/// never the format, so it is not recorded in the stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelSelect {
    /// Pick the fastest available path: explicit SIMD when the CPU supports
    /// it, otherwise the branch-free portable kernels.
    #[default]
    Auto,
    /// The scalar reference loops — the correctness oracle the kernels are
    /// tested against, and a debugging fallback.
    Scalar,
    /// The branch-free lane kernels in [`crate::kernels`], explicitly.
    Kernel,
    /// The explicit `std::arch` intrinsic kernels in [`crate::simd`].
    /// Falls back to [`KernelSelect::Kernel`] when the running CPU lacks
    /// the required ISA extension (or `SZX_DISABLE_SIMD` is set) — output
    /// is byte-identical either way, so the fallback is silent.
    Simd,
}

/// A concrete, resolved hot-loop implementation. Unlike [`KernelSelect`]
/// (a *request*, which may name an unavailable path), a `KernelPath` is
/// always runnable on the current machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Scalar reference loops.
    Scalar,
    /// Branch-free portable kernels ([`crate::kernels`]/[`crate::dekernels`]).
    Kernel,
    /// Explicit SIMD intrinsic kernels ([`crate::simd`]). Only produced by
    /// [`KernelSelect::resolve`] when runtime feature detection succeeds.
    Simd,
}

impl KernelPath {
    /// Short lowercase name, used by telemetry labels and CLI output.
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Kernel => "kernel",
            KernelPath::Simd => "simd",
        }
    }
}

impl KernelSelect {
    /// Resolve to a concrete choice: does this selection run the kernels?
    #[inline]
    pub fn use_kernel(self) -> bool {
        !matches!(self, KernelSelect::Scalar)
    }

    /// Resolve the request against the running CPU. Resolution order for
    /// `Auto` is simd → kernel (scalar is never picked implicitly); an
    /// explicit `Simd` request degrades to `Kernel` when the ISA extension
    /// is missing, because every path emits byte-identical streams.
    #[inline]
    pub fn resolve(self) -> KernelPath {
        match self {
            KernelSelect::Scalar => KernelPath::Scalar,
            KernelSelect::Kernel => KernelPath::Kernel,
            KernelSelect::Simd | KernelSelect::Auto => {
                if crate::simd::available() {
                    KernelPath::Simd
                } else {
                    KernelPath::Kernel
                }
            }
        }
    }
}

/// Full compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzxConfig {
    /// Number of consecutive elements per 1-D block.
    pub block_size: usize,
    /// Error-bound specification.
    pub error_bound: ErrorBound,
    /// Bit-commit strategy; keep the default unless running the §5.1 ablation.
    pub strategy: CommitStrategy,
    /// Hot-loop implementation; keep the default unless benchmarking the
    /// scalar oracle against the branch-free kernels.
    pub kernel: KernelSelect,
}

impl SzxConfig {
    /// Configuration with the paper's defaults and an absolute error bound.
    pub fn absolute(eb: f64) -> Self {
        SzxConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            error_bound: ErrorBound::Absolute(eb),
            strategy: CommitStrategy::default(),
            kernel: KernelSelect::default(),
        }
    }

    /// Configuration with the paper's defaults and a value-range-based
    /// relative error bound.
    pub fn relative(rel: f64) -> Self {
        SzxConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            error_bound: ErrorBound::Relative(rel),
            strategy: CommitStrategy::default(),
            kernel: KernelSelect::default(),
        }
    }

    /// Builder-style block-size override.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Builder-style commit-strategy override.
    pub fn with_strategy(mut self, strategy: CommitStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style hot-loop selection override.
    pub fn with_kernel(mut self, kernel: KernelSelect) -> Self {
        self.kernel = kernel;
        self
    }

    /// Validate the configuration before compression.
    pub fn validate(&self) -> Result<()> {
        if self.block_size == 0 {
            return Err(SzxError::InvalidConfig("block size must be nonzero".into()));
        }
        if self.block_size > MAX_BLOCK_SIZE {
            return Err(SzxError::InvalidConfig(format!(
                "block size {} exceeds maximum {MAX_BLOCK_SIZE}",
                self.block_size
            )));
        }
        let e = self.error_bound.raw();
        // NaN fails is_finite, so the NaN-rejecting `!(e >= 0.0)` spelling
        // is not needed.
        if !e.is_finite() || e < 0.0 {
            return Err(SzxError::InvalidConfig(format!(
                "error bound must be finite and non-negative, got {e}"
            )));
        }
        Ok(())
    }
}

impl Default for SzxConfig {
    fn default() -> Self {
        SzxConfig::relative(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_block_sizes() {
        assert!(SzxConfig::absolute(1e-3)
            .with_block_size(0)
            .validate()
            .is_err());
        assert!(SzxConfig::absolute(1e-3)
            .with_block_size(MAX_BLOCK_SIZE + 1)
            .validate()
            .is_err());
        assert!(SzxConfig::absolute(1e-3)
            .with_block_size(MAX_BLOCK_SIZE)
            .validate()
            .is_ok());
        assert!(SzxConfig::absolute(1e-3)
            .with_block_size(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        assert!(SzxConfig::absolute(-1.0).validate().is_err());
        assert!(SzxConfig::absolute(f64::NAN).validate().is_err());
        assert!(SzxConfig::absolute(f64::INFINITY).validate().is_err());
        assert!(
            SzxConfig::absolute(0.0).validate().is_ok(),
            "zero bound = lossless mode"
        );
        assert!(SzxConfig::relative(1e-2).validate().is_ok());
    }

    #[test]
    fn relative_bound_resolves_against_range() {
        let data = [1.0f32, 3.0, 2.0, -1.0];
        assert_eq!(ErrorBound::Relative(0.5).resolve(&data), 2.0);
        assert_eq!(ErrorBound::Absolute(0.125).resolve(&data), 0.125);
    }

    #[test]
    fn value_range_edge_cases() {
        assert_eq!(value_range::<f32>(&[]), 0.0);
        assert_eq!(value_range(&[5.0f32]), 0.0);
        assert_eq!(value_range(&[f32::NAN, 1.0, 4.0]), 3.0);
        assert_eq!(value_range(&[f32::NAN, f32::NAN]), 0.0);
        assert_eq!(value_range(&[-2.0f64, 2.0]), 4.0);
    }

    #[test]
    fn strategy_codes_roundtrip() {
        for s in [
            CommitStrategy::BitPack,
            CommitStrategy::BytePlusResidual,
            CommitStrategy::ByteAligned,
        ] {
            assert_eq!(CommitStrategy::from_code(s.code()).unwrap(), s);
        }
        assert!(CommitStrategy::from_code(7).is_err());
    }

    #[test]
    fn kernel_select_resolves_to_runnable_paths() {
        assert_eq!(KernelSelect::Scalar.resolve(), KernelPath::Scalar);
        assert_eq!(KernelSelect::Kernel.resolve(), KernelPath::Kernel);
        // Simd and Auto agree: both land on Simd when the CPU supports it
        // and on the portable kernel otherwise.
        assert_eq!(KernelSelect::Simd.resolve(), KernelSelect::Auto.resolve());
        let resolved = KernelSelect::Auto.resolve();
        assert!(matches!(resolved, KernelPath::Simd | KernelPath::Kernel));
        assert_eq!(
            resolved == KernelPath::Simd,
            crate::simd::available(),
            "Auto picks simd exactly when detection reports it available"
        );
    }
}
