//! Multicore compression/decompression, mirroring the paper's OpenMP design
//! (§6.1) with rayon.
//!
//! * **Compression** assigns contiguous *chunks of blocks* to threads; each
//!   chunk compresses independently into its own buffers, and the results
//!   are stitched together. Chunks are multiples of 8 blocks so the per-chunk
//!   state bits concatenate on byte boundaries.
//! * **Decompression** first materializes the per-block payload offsets by
//!   prefix-summing the `zsize_array` — the exact trick the paper uses to
//!   let every thread find its starting address — then decodes blocks in
//!   parallel, each writing a disjoint slice of the output.

use rayon::prelude::*;

use crate::config::{KernelPath, KernelSelect, SzxConfig};
use crate::decode::{decode_block_dispatch, StreamIndex};
use crate::dekernels::DecodeScratch;
use crate::encode::{assemble, encode_blocks, ChunkOutput};
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;
use crate::kernels::{self, EncodeScratch};

/// Blocks handled per parallel decompression task. Coarse enough to amortize
/// scheduling, fine enough to balance skewed payloads.
const DECODE_GROUP: usize = 32;

/// Parallel global value range (max − min), NaN-ignoring. `path` selects
/// the per-chunk scan implementation; all produce the identical value
/// (extrema are selected, never computed), so the resolved bound — and
/// therefore the stream — is the same for every path.
fn value_range_par<F: SzxFloat>(data: &[F], path: KernelPath) -> f64 {
    let (min, max) = data
        .par_chunks(64 * 1024)
        .enumerate()
        .map(|(ci, chunk)| {
            let _z = szx_telemetry::trace_zone("compress.range_chunk", ci as u64);
            match path {
                KernelPath::Simd => {
                    let (lo, hi) = crate::simd::minmax(chunk);
                    (lo.to_f64(), hi.to_f64())
                }
                KernelPath::Kernel => {
                    let (lo, hi) = kernels::minmax(chunk);
                    (lo.to_f64(), hi.to_f64())
                }
                KernelPath::Scalar => {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &d in chunk {
                        let x = d.to_f64();
                        if x < lo {
                            lo = x;
                        }
                        if x > hi {
                            hi = x;
                        }
                    }
                    (lo, hi)
                }
            }
        })
        .reduce(
            || (f64::INFINITY, f64::NEG_INFINITY),
            |a, b| (a.0.min(b.0), a.1.max(b.1)),
        );
    if max >= min {
        max - min
    } else {
        0.0
    }
}

/// Multicore SZx compression. Produces a stream byte-identical in format to
/// the serial [`crate::compress`] (and decodable by either decompressor).
pub fn compress<F: SzxFloat>(data: &[F], cfg: &SzxConfig) -> Result<Vec<u8>> {
    let _total = szx_telemetry::span("compress.total");
    cfg.validate()?;
    if data.is_empty() {
        return Err(SzxError::EmptyInput);
    }
    let path = cfg.kernel.resolve();
    let eb = {
        let _s = szx_telemetry::span("compress.range_scan");
        match cfg.error_bound {
            crate::config::ErrorBound::Absolute(e) => e,
            crate::config::ErrorBound::Relative(rel) => rel * value_range_par(data, path),
        }
    };
    if !eb.is_finite() || eb < 0.0 {
        return Err(SzxError::InvalidConfig(format!(
            "resolved error bound is not usable: {eb}"
        )));
    }

    let bs = cfg.block_size;
    let nblocks = data.len().div_ceil(bs);
    // Multiple-of-8 blocks per chunk keeps state bits byte-aligned at chunk
    // seams; aim for a few chunks per thread for load balance.
    let target_chunks = rayon::current_num_threads() * 4;
    let mut blocks_per_chunk = nblocks.div_ceil(target_chunks);
    blocks_per_chunk = (blocks_per_chunk.div_ceil(8) * 8).max(8);
    let elems_per_chunk = blocks_per_chunk * bs;

    // Each worker accumulates telemetry into its own ChunkOutput.stats;
    // the single flush happens inside assemble() at the join point, so
    // rayon workers never contend on shared counters.
    let chunks: Vec<ChunkOutput<F>> = {
        let _s = szx_telemetry::span("compress.encode_blocks");
        data.par_chunks(elems_per_chunk)
            .enumerate()
            .map(|(ci, chunk_data)| {
                // One timeline lane entry per worker chunk: the flight
                // recorder's view of skew across rayon workers.
                let _z = szx_telemetry::trace_zone("compress.chunk", ci as u64);
                let chunk_blocks = chunk_data.len().div_ceil(bs);
                let mut out = ChunkOutput::with_capacity(chunk_blocks, chunk_data.len() * F::BYTES);
                // One scratch arena per chunk: rayon workers allocate once
                // per chunk, not once per block.
                let mut scratch = EncodeScratch::default();
                encode_blocks(
                    chunk_data,
                    bs,
                    eb,
                    cfg.strategy,
                    path,
                    &mut out,
                    &mut scratch,
                );
                out
            })
            .collect()
    };

    Ok(assemble(&chunks, data.len(), eb, cfg))
}

/// Multicore SZx decompression.
pub fn decompress<F: SzxFloat>(bytes: &[u8]) -> Result<Vec<F>> {
    decompress_with(bytes, KernelSelect::Auto)
}

/// [`decompress`] with an explicit decode-path selection (see
/// [`crate::decompress_with`] for the semantics — the output is identical
/// either way).
pub fn decompress_with<F: SzxFloat>(bytes: &[u8], kernel: KernelSelect) -> Result<Vec<F>> {
    let _total = szx_telemetry::span("decompress.total");
    // Validate the stream before allocating the output (see decode.rs).
    let index = {
        let _s = szx_telemetry::span("decompress.index");
        StreamIndex::build::<F>(bytes)?
    };
    let mut out = vec![F::ZERO; index.header.n];
    decompress_with_index(&index, &mut out, kernel.resolve())?;
    Ok(out)
}

/// Multicore decompression into a caller-provided buffer.
pub fn decompress_into<F: SzxFloat>(bytes: &[u8], out: &mut [F]) -> Result<()> {
    decompress_into_with(bytes, out, KernelSelect::Auto)
}

/// [`decompress_into`] with an explicit decode-path selection.
pub fn decompress_into_with<F: SzxFloat>(
    bytes: &[u8],
    out: &mut [F],
    kernel: KernelSelect,
) -> Result<()> {
    let _total = szx_telemetry::span("decompress.total");
    let index = {
        let _s = szx_telemetry::span("decompress.index");
        StreamIndex::build::<F>(bytes)?
    };
    decompress_with_index(&index, out, kernel.resolve())
}

fn decompress_with_index<F: SzxFloat>(
    index: &StreamIndex<'_>,
    out: &mut [F],
    path: KernelPath,
) -> Result<()> {
    if out.len() != index.header.n {
        return Err(SzxError::InvalidConfig(format!(
            "output buffer holds {} elements, stream has {}",
            out.len(),
            index.header.n
        )));
    }
    if szx_telemetry::enabled() {
        crate::decode::flush_decode_telemetry::<F>(index);
    }
    let _s = szx_telemetry::span("decompress.blocks");
    let bs = index.header.block_size;
    let strategy = index.header.strategy;

    // Prefix count of non-constant blocks before each block, so any thread
    // can jump from a block id to its zsize/payload slot.
    let nblocks = index.states.len();
    let mut nc_before = Vec::with_capacity(nblocks);
    let mut acc = 0usize;
    for s in index.states.iter() {
        nc_before.push(acc);
        acc += s as usize;
    }

    out.par_chunks_mut(bs * DECODE_GROUP)
        .enumerate()
        .try_for_each(|(g, group)| -> Result<()> {
            let _z = szx_telemetry::trace_zone("decompress.group", g as u64);
            // One scratch arena per group, mirroring the per-chunk
            // EncodeScratch: rayon workers allocate once per group of 32
            // blocks, not once per block.
            let mut scratch = DecodeScratch::default();
            let first_block = g * DECODE_GROUP;
            for (j, block_out) in group.chunks_mut(bs).enumerate() {
                let b = first_block + j;
                let mu = index.mu::<F>(b);
                if index.states.get(b) {
                    // PANIC-OK: `b < num_blocks` by the chunk split, so
                    // `nc_before[b]` is in range and `nc < n_nonconstant`.
                    let nc = nc_before[b];
                    // PANIC-OK: StreamIndex::build verified n_nonconstant
                    // entries exist in both tables.
                    let off = index.payload_offsets[nc];
                    // PANIC-OK: same `nc < n_nonconstant` bound as above.
                    let len = index.zsizes[nc] as usize;
                    // PANIC-OK: build() verified `off + len <=
                    // payloads.len()` for every nonconstant block.
                    let payload = &index.payloads[off..off + len];
                    decode_block_dispatch(payload, block_out, mu, strategy, path, &mut scratch)?;
                } else {
                    block_out.fill(mu);
                }
            }
            Ok(())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommitStrategy;

    fn noisy_wave(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = i as f32 * 0.003;
                x.sin() * 5.0 + (x * 37.1).sin() * 0.02
            })
            .collect()
    }

    #[test]
    fn parallel_stream_equals_serial_stream() {
        let data = noisy_wave(300_000);
        for strategy in [
            CommitStrategy::ByteAligned,
            CommitStrategy::BitPack,
            CommitStrategy::BytePlusResidual,
        ] {
            let cfg = SzxConfig::relative(1e-3).with_strategy(strategy);
            let serial = crate::compress(&data, &cfg).unwrap();
            let par = compress(&data, &cfg).unwrap();
            assert_eq!(serial, par, "streams must be byte-identical ({strategy:?})");
        }
    }

    #[test]
    fn parallel_roundtrip_cross_decoders() {
        let data = noisy_wave(123_457); // ragged tail
        let cfg = SzxConfig::absolute(1e-4);
        let bytes = compress(&data, &cfg).unwrap();
        let a: Vec<f32> = crate::decompress(&bytes).unwrap();
        let b: Vec<f32> = decompress(&bytes).unwrap();
        assert_eq!(a, b);
        for (&x, &y) in data.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-4);
        }
    }

    #[test]
    fn parallel_handles_tiny_inputs() {
        let data = vec![1.0f32, 2.0, 3.0];
        let cfg = SzxConfig::absolute(1e-3).with_block_size(128);
        let bytes = compress(&data, &cfg).unwrap();
        let back: Vec<f32> = decompress(&bytes).unwrap();
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn parallel_relative_bound_matches_serial_resolution() {
        let data = noisy_wave(50_000);
        let cfg = SzxConfig::relative(1e-2);
        let serial = crate::compress(&data, &cfg).unwrap();
        let par = compress(&data, &cfg).unwrap();
        let hs = crate::inspect(&serial).unwrap();
        let hp = crate::inspect(&par).unwrap();
        assert_eq!(hs.eb, hp.eb);
    }

    #[test]
    fn parallel_f64_roundtrip() {
        let data: Vec<f64> = (0..40_000)
            .map(|i| (i as f64 * 0.001).sinh().sin())
            .collect();
        let cfg = SzxConfig::absolute(1e-7);
        let bytes = compress(&data, &cfg).unwrap();
        let back: Vec<f64> = decompress(&bytes).unwrap();
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= 1e-7);
        }
    }
}
