//! AVX2 backends for the dispatch layer in [`super`].
//!
//! Every function here carries `#[target_feature(enable = "avx2")]` and is
//! therefore unsafe to *call* from non-feature contexts: the dispatch layer
//! guards every call with the cached `is_x86_feature_detected!("avx2")`
//! check and documents it with a `SAFETY:` comment (enforced by szx-audit).
//! Inside the bodies, only the pointer intrinsics (loads, stores, gathers)
//! are `unsafe`; the arithmetic/shuffle intrinsics are safe once the
//! feature is statically enabled.
//!
//! The kernels mirror [`crate::kernels`] / [`crate::dekernels`] pass for
//! pass; comments note where an instruction choice is forced by the
//! byte-identity contract (e.g. compare-and-blend instead of `vminps`,
//! which would propagate NaN where the scalar select keeps the incumbent).

#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::block::{radius_about, BlockStats};
use crate::float::SzxFloat;
use crate::kernels::LANES;

/// AVX2 equivalent of [`crate::kernels::block_stats`] for `f32`: one
/// 8-lane register of min/max stripes, NaN presence OR-accumulated from
/// unordered self-compares. Caller guarantees `block.len() >= 2 * LANES`.
#[target_feature(enable = "avx2")]
pub(super) fn block_stats_f32(block: &[f32]) -> BlockStats<f32> {
    let n = block.len();
    debug_assert!(n >= 2 * LANES);
    let full = n / LANES;
    let ptr = block.as_ptr();
    // SAFETY: n >= 2 * LANES (caller contract), so the first 8-lane load
    // is in bounds.
    let first = unsafe { _mm256_loadu_ps(ptr) };
    let mut mins = first;
    let mut maxs = first;
    let mut unord = _mm256_cmp_ps::<_CMP_UNORD_Q>(first, first);
    for k in 1..full {
        // SAFETY: k < full = n / LANES, so lanes k*8 .. k*8+8 are in bounds.
        let d = unsafe { _mm256_loadu_ps(ptr.add(k * LANES)) };
        // Compare-and-blend, not vminps/vmaxps: the scalar select keeps the
        // incumbent on NaN and on ties, and ordered `<`/`>` against a NaN
        // incumbent is false, which preserves exactly that.
        mins = _mm256_blendv_ps(mins, d, _mm256_cmp_ps::<_CMP_LT_OQ>(d, mins));
        maxs = _mm256_blendv_ps(maxs, d, _mm256_cmp_ps::<_CMP_GT_OQ>(d, maxs));
        unord = _mm256_or_ps(unord, _mm256_cmp_ps::<_CMP_UNORD_Q>(d, d));
    }
    let mut minl = [0f32; LANES];
    let mut maxl = [0f32; LANES];
    // SAFETY: each array is exactly 8 f32 = 32 bytes, matching the store.
    unsafe {
        _mm256_storeu_ps(minl.as_mut_ptr(), mins);
        _mm256_storeu_ps(maxl.as_mut_ptr(), maxs);
    }
    let mut has_nan = _mm256_movemask_ps(unord) != 0;
    // Lane reduction in stripe order, then the scalar tail — identical
    // select semantics to the portable kernel (ties keep the incumbent, so
    // an all-equal block yields exactly block[0]).
    let mut min = minl[0];
    let mut max = maxl[0];
    for j in 1..LANES {
        min = if minl[j] < min { minl[j] } else { min };
        max = if maxl[j] > max { maxl[j] } else { max };
    }
    for &d in &block[full * LANES..] {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
        has_nan |= d.is_nan();
    }
    if has_nan {
        return BlockStats {
            mu: 0.0,
            // Same spelling as the portable kernel's F::from_f64(NAN) so
            // the quiet-NaN bit pattern matches exactly.
            radius: f64::NAN as f32,
        };
    }
    let mu = f32::half_sum(min, max);
    BlockStats {
        mu,
        radius: radius_about(mu, min, max),
    }
}

/// AVX2 equivalent of [`crate::kernels::block_stats`] for `f64`: the same
/// 8-wide stripe as the portable kernel, held in two 4-lane registers.
/// Caller guarantees `block.len() >= 2 * LANES`.
#[target_feature(enable = "avx2")]
pub(super) fn block_stats_f64(block: &[f64]) -> BlockStats<f64> {
    let n = block.len();
    debug_assert!(n >= 2 * LANES);
    let full = n / LANES;
    let ptr = block.as_ptr();
    // SAFETY: n >= 2 * LANES = 16 (caller contract), so both 4-lane loads
    // of the first stripe are in bounds.
    let (first_lo, first_hi) = unsafe { (_mm256_loadu_pd(ptr), _mm256_loadu_pd(ptr.add(4))) };
    let (mut min_lo, mut min_hi) = (first_lo, first_hi);
    let (mut max_lo, mut max_hi) = (first_lo, first_hi);
    let mut unord = _mm256_or_pd(
        _mm256_cmp_pd::<_CMP_UNORD_Q>(first_lo, first_lo),
        _mm256_cmp_pd::<_CMP_UNORD_Q>(first_hi, first_hi),
    );
    for k in 1..full {
        // SAFETY: k < full = n / LANES, so lanes k*8 .. k*8+8 are in bounds.
        let (d_lo, d_hi) = unsafe {
            (
                _mm256_loadu_pd(ptr.add(k * LANES)),
                _mm256_loadu_pd(ptr.add(k * LANES + 4)),
            )
        };
        min_lo = _mm256_blendv_pd(min_lo, d_lo, _mm256_cmp_pd::<_CMP_LT_OQ>(d_lo, min_lo));
        min_hi = _mm256_blendv_pd(min_hi, d_hi, _mm256_cmp_pd::<_CMP_LT_OQ>(d_hi, min_hi));
        max_lo = _mm256_blendv_pd(max_lo, d_lo, _mm256_cmp_pd::<_CMP_GT_OQ>(d_lo, max_lo));
        max_hi = _mm256_blendv_pd(max_hi, d_hi, _mm256_cmp_pd::<_CMP_GT_OQ>(d_hi, max_hi));
        unord = _mm256_or_pd(unord, _mm256_cmp_pd::<_CMP_UNORD_Q>(d_lo, d_lo));
        unord = _mm256_or_pd(unord, _mm256_cmp_pd::<_CMP_UNORD_Q>(d_hi, d_hi));
    }
    let mut minl = [0f64; LANES];
    let mut maxl = [0f64; LANES];
    // SAFETY: each half-store writes 4 f64 into an 8-element array.
    unsafe {
        _mm256_storeu_pd(minl.as_mut_ptr(), min_lo);
        _mm256_storeu_pd(minl.as_mut_ptr().add(4), min_hi);
        _mm256_storeu_pd(maxl.as_mut_ptr(), max_lo);
        _mm256_storeu_pd(maxl.as_mut_ptr().add(4), max_hi);
    }
    let mut has_nan = _mm256_movemask_pd(unord) != 0;
    let mut min = minl[0];
    let mut max = maxl[0];
    for j in 1..LANES {
        min = if minl[j] < min { minl[j] } else { min };
        max = if maxl[j] > max { maxl[j] } else { max };
    }
    for &d in &block[full * LANES..] {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
        has_nan |= d.is_nan();
    }
    if has_nan {
        return BlockStats {
            mu: 0.0,
            radius: f64::NAN,
        };
    }
    let mu = f64::half_sum(min, max);
    BlockStats {
        mu,
        radius: radius_about(mu, min, max),
    }
}

/// AVX2 global min/max for `f32`, NaN-ignoring, `(+inf, -inf)` sentinels —
/// bit-identical to [`crate::kernels::minmax`]. Caller guarantees
/// `data.len() >= LANES`.
#[target_feature(enable = "avx2")]
pub(super) fn minmax_f32(data: &[f32]) -> (f32, f32) {
    let n = data.len();
    debug_assert!(n >= LANES);
    let full = n / LANES;
    let ptr = data.as_ptr();
    let mut mins = _mm256_set1_ps(f32::INFINITY);
    let mut maxs = _mm256_set1_ps(f32::NEG_INFINITY);
    for k in 0..full {
        // SAFETY: k < full = n / LANES, so lanes k*8 .. k*8+8 are in bounds.
        let d = unsafe { _mm256_loadu_ps(ptr.add(k * LANES)) };
        mins = _mm256_blendv_ps(mins, d, _mm256_cmp_ps::<_CMP_LT_OQ>(d, mins));
        maxs = _mm256_blendv_ps(maxs, d, _mm256_cmp_ps::<_CMP_GT_OQ>(d, maxs));
    }
    let mut minl = [0f32; LANES];
    let mut maxl = [0f32; LANES];
    // SAFETY: each array is exactly 8 f32 = 32 bytes, matching the store.
    unsafe {
        _mm256_storeu_ps(minl.as_mut_ptr(), mins);
        _mm256_storeu_ps(maxl.as_mut_ptr(), maxs);
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for j in 0..LANES {
        min = if minl[j] < min { minl[j] } else { min };
        max = if maxl[j] > max { maxl[j] } else { max };
    }
    for &d in &data[full * LANES..] {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
    }
    (min, max)
}

/// AVX2 global min/max for `f64`; see [`minmax_f32`]. Caller guarantees
/// `data.len() >= LANES`.
#[target_feature(enable = "avx2")]
pub(super) fn minmax_f64(data: &[f64]) -> (f64, f64) {
    let n = data.len();
    debug_assert!(n >= LANES);
    let full = n / LANES;
    let ptr = data.as_ptr();
    let mut min_lo = _mm256_set1_pd(f64::INFINITY);
    let mut min_hi = min_lo;
    let mut max_lo = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut max_hi = max_lo;
    for k in 0..full {
        // SAFETY: k < full = n / LANES, so lanes k*8 .. k*8+8 are in bounds.
        let (d_lo, d_hi) = unsafe {
            (
                _mm256_loadu_pd(ptr.add(k * LANES)),
                _mm256_loadu_pd(ptr.add(k * LANES + 4)),
            )
        };
        min_lo = _mm256_blendv_pd(min_lo, d_lo, _mm256_cmp_pd::<_CMP_LT_OQ>(d_lo, min_lo));
        min_hi = _mm256_blendv_pd(min_hi, d_hi, _mm256_cmp_pd::<_CMP_LT_OQ>(d_hi, min_hi));
        max_lo = _mm256_blendv_pd(max_lo, d_lo, _mm256_cmp_pd::<_CMP_GT_OQ>(d_lo, max_lo));
        max_hi = _mm256_blendv_pd(max_hi, d_hi, _mm256_cmp_pd::<_CMP_GT_OQ>(d_hi, max_hi));
    }
    let mut minl = [0f64; LANES];
    let mut maxl = [0f64; LANES];
    // SAFETY: each half-store writes 4 f64 into an 8-element array.
    unsafe {
        _mm256_storeu_pd(minl.as_mut_ptr(), min_lo);
        _mm256_storeu_pd(minl.as_mut_ptr().add(4), min_hi);
        _mm256_storeu_pd(maxl.as_mut_ptr(), max_lo);
        _mm256_storeu_pd(maxl.as_mut_ptr().add(4), max_hi);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for j in 0..LANES {
        min = if minl[j] < min { minl[j] } else { min };
        max = if maxl[j] > max { maxl[j] } else { max };
    }
    for &d in &data[full * LANES..] {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
    }
    (min, max)
}

/// Encode passes 1 + 2 for `f32`: materialize the normalized, high-aligned,
/// right-shifted words (Formulas 4–5) and derive the clamped XOR lead codes.
/// `words` and `leads` are exactly `block.len()` long.
#[target_feature(enable = "avx2")]
pub(super) fn encode_words_leads_f32(
    block: &[f32],
    raw: bool,
    mu: f32,
    s: u32,
    lead_cap: u8,
    words: &mut [u64],
    leads: &mut [u8],
) {
    let blen = block.len();
    debug_assert_eq!(words.len(), blen);
    debug_assert_eq!(leads.len(), blen);
    let full = blen / 8;
    let ptr = block.as_ptr();
    let wptr = words.as_mut_ptr();
    let mu8 = _mm256_set1_ps(mu);
    // f32's high-aligned word is `bits << 32`, so `to_word() >> s` is one
    // left shift by 32 - s (s <= 7, so no significant bit is lost).
    let lshift = _mm_cvtsi32_si128((32 - s) as i32); // CAST: s <= 7
    for k in 0..full {
        // SAFETY: k < blen / 8, so lanes k*8 .. k*8+8 are in bounds.
        let d = unsafe { _mm256_loadu_ps(ptr.add(k * 8)) };
        // The bit-exact (raw) variant must not touch the value: `d - 0.0`
        // would quieten signaling-NaN payloads.
        let v = if raw { d } else { _mm256_sub_ps(d, mu8) };
        let bits = _mm256_castps_si256(v);
        let lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(bits));
        let hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256::<1>(bits));
        // SAFETY: words holds blen >= k*8 + 8 u64 slots, so both 4-lane
        // stores are in bounds.
        unsafe {
            _mm256_storeu_si256(
                wptr.add(k * 8).cast::<__m256i>(),
                _mm256_sll_epi64(lo, lshift),
            );
            _mm256_storeu_si256(
                wptr.add(k * 8 + 4).cast::<__m256i>(),
                _mm256_sll_epi64(hi, lshift),
            );
        }
    }
    for i in full * 8..blen {
        let d = block[i];
        let v = if raw { d } else { d - mu };
        words[i] = v.to_word() >> s;
    }
    lead_codes(words, leads, lead_cap);
}

/// Encode passes 1 + 2 for `f64`; see [`encode_words_leads_f32`].
#[target_feature(enable = "avx2")]
pub(super) fn encode_words_leads_f64(
    block: &[f64],
    raw: bool,
    mu: f64,
    s: u32,
    lead_cap: u8,
    words: &mut [u64],
    leads: &mut [u8],
) {
    let blen = block.len();
    debug_assert_eq!(words.len(), blen);
    debug_assert_eq!(leads.len(), blen);
    let full = blen / 4;
    let ptr = block.as_ptr();
    let wptr = words.as_mut_ptr();
    let mu4 = _mm256_set1_pd(mu);
    let rshift = _mm_cvtsi32_si128(s as i32); // CAST: s <= 7
    for k in 0..full {
        // SAFETY: k < blen / 4, so lanes k*4 .. k*4+4 are in bounds.
        let d = unsafe { _mm256_loadu_pd(ptr.add(k * 4)) };
        let v = if raw { d } else { _mm256_sub_pd(d, mu4) };
        let w = _mm256_srl_epi64(_mm256_castpd_si256(v), rshift);
        // SAFETY: words holds blen >= k*4 + 4 u64 slots.
        unsafe { _mm256_storeu_si256(wptr.add(k * 4).cast::<__m256i>(), w) };
    }
    for i in full * 4..blen {
        let d = block[i];
        let v = if raw { d } else { d - mu };
        words[i] = v.to_word() >> s;
    }
    lead_codes(words, leads, lead_cap);
}

/// Pass 2 — clamped XOR leading-byte codes over the materialized words,
/// four per iteration. The leading-zero-*byte* count (possible values
/// 0..=8, needed clamped to <= 3) is computed branch-free as the sum of
/// three nested byte-prefix zero tests: `[top1 == 0] + [top2 == 0] +
/// [top3 == 0] = min(clz >> 3, 3)`; clamping that against `lead_cap`
/// (itself <= 3) matches the portable kernel's `min(clz >> 3, lead_cap)`.
#[target_feature(enable = "avx2")]
fn lead_codes(words: &[u64], leads: &mut [u8], lead_cap: u8) {
    let blen = words.len();
    if blen == 0 {
        return;
    }
    // CAST: leading_zeros() <= 64, so clz >> 3 <= 8 fits u8.
    leads[0] = ((words[0].leading_zeros() >> 3) as u8).min(lead_cap);
    let m1 = _mm256_set1_epi64x(0xff00_0000_0000_0000_u64 as i64);
    let m2 = _mm256_set1_epi64x(0xffff_0000_0000_0000_u64 as i64);
    let m3 = _mm256_set1_epi64x(0xffff_ff00_0000_0000_u64 as i64);
    let cap = _mm256_set1_epi64x(lead_cap as i64);
    let zero = _mm256_setzero_si256();
    let ptr = words.as_ptr();
    let mut i = 1usize;
    while i + 4 <= blen {
        // SAFETY: i >= 1 and i + 4 <= blen, so both 4-lane loads (at i - 1
        // and at i) stay inside `words`.
        let (cur, prev) = unsafe {
            (
                _mm256_loadu_si256(ptr.add(i).cast::<__m256i>()),
                _mm256_loadu_si256(ptr.add(i - 1).cast::<__m256i>()),
            )
        };
        let x = _mm256_xor_si256(cur, prev);
        // Each compare yields -1 (all ones) per matching lane; summing the
        // three and negating gives the 0..=3 count in each u64 lane.
        let c1 = _mm256_cmpeq_epi64(_mm256_and_si256(x, m1), zero);
        let c2 = _mm256_cmpeq_epi64(_mm256_and_si256(x, m2), zero);
        let c3 = _mm256_cmpeq_epi64(_mm256_and_si256(x, m3), zero);
        let neg = _mm256_add_epi64(_mm256_add_epi64(c1, c2), c3);
        let cnt = _mm256_sub_epi64(zero, neg);
        // Counts and cap both fit one byte per u64 lane, so the unsigned
        // byte-min clamps each lane.
        let clamped = _mm256_min_epu8(cnt, cap);
        let mut buf = [0u64; 4];
        // SAFETY: buf is exactly 4 u64 = 32 bytes, matching the store.
        unsafe { _mm256_storeu_si256(buf.as_mut_ptr().cast::<__m256i>(), clamped) };
        leads[i] = buf[0] as u8; // CAST: clamped to <= 3 (four below)
        leads[i + 1] = buf[1] as u8; // CAST: as above
        leads[i + 2] = buf[2] as u8; // CAST: as above
        leads[i + 3] = buf[3] as u8; // CAST: as above
        i += 4;
    }
    while i < blen {
        let xor = words[i] ^ words[i - 1];
        // CAST: clz >> 3 <= 8 fits u8.
        leads[i] = ((xor.leading_zeros() >> 3) as u8).min(lead_cap);
        i += 1;
    }
}

/// Pass 3 — pack 2-bit lead codes, 32 per vector: `maddubs` folds byte
/// pairs to `l0·4 + l1`, `madd` folds pair-of-pairs to the final
/// `l0<<6 | l1<<4 | l2<<2 | l3` byte in each u32 lane (values <= 255, so
/// neither multiply-add can saturate). `leads.len()` must be a multiple of
/// 32; the caller packs any tail with the shared scalar packer.
#[target_feature(enable = "avx2")]
pub(super) fn pack_lead_codes(leads: &[u8], payload: &mut Vec<u8>) {
    debug_assert_eq!(leads.len() % 32, 0);
    let coeff_pairs = _mm256_set1_epi16(0x0104);
    let coeff_quads = _mm256_set1_epi32(0x0001_0010);
    for chunk in leads.chunks_exact(32) {
        // SAFETY: chunk is exactly 32 bytes, matching the load.
        let v = unsafe { _mm256_loadu_si256(chunk.as_ptr().cast::<__m256i>()) };
        let pairs = _mm256_maddubs_epi16(v, coeff_pairs);
        let quads = _mm256_madd_epi16(pairs, coeff_quads);
        let mut buf = [0u32; 8];
        // SAFETY: buf is exactly 8 u32 = 32 bytes, matching the store.
        unsafe { _mm256_storeu_si256(buf.as_mut_ptr().cast::<__m256i>(), quads) };
        for b in buf {
            payload.push(b as u8); // CAST: each packed code byte <= 255
        }
    }
}

/// In-register `u64::from_be_bytes`: reverse the bytes of each u64 lane.
#[inline]
#[target_feature(enable = "avx2")]
fn bswap64(v: __m256i) -> __m256i {
    let idx = _mm256_setr_epi8(
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8, //
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
    );
    _mm256_shuffle_epi8(v, idx)
}

/// Decode pass 2 for `f32` — the gather-based reconstruction sweep, four
/// values per iteration:
///
/// 1. gather each value's overlapping 8-byte load from the pool at its
///    prefix-summed offset and byte-swap it in-register (the scalar
///    `u64::from_be_bytes`), then shift right by `8·lead` to align;
/// 2. **store the aligned words before the provider gathers** — providers
///    are indices `<= i + 4`, i.e. possibly values aligned in this very
///    iteration, so the gather must observe them (the scalar loop has the
///    same store-before-use ordering, one element at a time);
/// 3. gather the three provider words, mask-merge per byte position, shift
///    left by `s`, extract the high 32 bits, and add μ.
///
/// Caller contracts (all established by the validated header parse and
/// `ensure(blen)`): `words.len() == out.len() + 1`; the per-element slices
/// are `out.len()` long; every `offsets[i] + 8 <= pool.len()` (offsets are
/// a prefix sum bounded by the checked `total`, and the pool carries 8
/// bytes of slack); provider indices are `<= i + 1 < words.len()`.
#[expect(clippy::too_many_arguments, reason = "flat hot-path ABI, no struct")]
#[target_feature(enable = "avx2")]
pub(super) fn decode_pass2_f32(
    pool: &[u8],
    leads: &[u8],
    offsets: &[u32],
    prov0: &[u32],
    prov1: &[u32],
    prov2: &[u32],
    words: &mut [u64],
    out: &mut [f32],
    nb: usize,
    s: u32,
    raw: bool,
    mu: f32,
) {
    let blen = out.len();
    debug_assert_eq!(words.len(), blen + 1);
    debug_assert!(leads.len() == blen && offsets.len() == blen);
    debug_assert!(prov0.len() == blen && prov1.len() == blen && prov2.len() == blen);
    // PANIC-OK: words.len() = blen + 1 >= 1 (dispatch sizes the arena).
    words[0] = 0; // the implicit zero word `prev` starts from
    let m0 = crate::dekernels::byte_mask(0, nb);
    let m1 = crate::dekernels::byte_mask(1, nb);
    let m2 = crate::dekernels::byte_mask(2, nb);
    let top = (!0u64) << (64 - 8 * nb as u32); // CAST: nb <= 8
    let m_rest = top & !(m0 | m1 | m2);
    let m0v = _mm256_set1_epi64x(m0 as i64);
    let m1v = _mm256_set1_epi64x(m1 as i64);
    let m2v = _mm256_set1_epi64x(m2 as i64);
    let mrv = _mm256_set1_epi64x(m_rest as i64);
    let sh_s = _mm_cvtsi32_si128(s as i32); // CAST: s <= 7
    let mu4 = _mm_set1_ps(mu);
    let pool_ptr = pool.as_ptr();
    let wptr = words.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= blen {
        // SAFETY: i + 4 <= blen = offsets.len() bounds the 4-lane index
        // load; each offset satisfies offset + 8 <= pool.len() (caller
        // contract: prefix sums bounded by the validated total, 8 bytes of
        // slack), so every scale-1 gather lane reads 8 in-bounds bytes.
        let loaded = unsafe {
            let off4 = _mm_loadu_si128(offsets.as_ptr().add(i).cast::<__m128i>());
            _mm256_i32gather_epi64::<1>(pool_ptr.cast::<i64>(), off4)
        };
        let be = bswap64(loaded);
        // Widen the 4 lead bytes to per-lane shift counts of 8·lead bits.
        // PANIC-OK: i + 4 <= blen = leads.len() on every loop iteration.
        let l4 = u32::from_le_bytes([leads[i], leads[i + 1], leads[i + 2], leads[i + 3]]);
        let lead4 = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(l4 as i32)); // CAST: widening
        let a = _mm256_srlv_epi64(be, _mm256_slli_epi64::<3>(lead4));
        // SAFETY: the 4-lane store at i + 1 ends at i + 5 <= blen + 1 =
        // words.len(). It MUST precede the provider gathers below, which
        // may index these very lanes.
        unsafe { _mm256_storeu_si256(wptr.add(i + 1).cast::<__m256i>(), a) };
        // SAFETY: i + 4 <= blen bounds the three 4-lane index loads;
        // provider indices are <= i + 4 < words.len() (caller contract),
        // so every scale-8 gather lane reads one in-bounds u64.
        let (w0, w1, w2) = unsafe {
            let base = wptr.cast::<i64>();
            let p0 = _mm_loadu_si128(prov0.as_ptr().add(i).cast::<__m128i>());
            let p1 = _mm_loadu_si128(prov1.as_ptr().add(i).cast::<__m128i>());
            let p2 = _mm_loadu_si128(prov2.as_ptr().add(i).cast::<__m128i>());
            (
                _mm256_i32gather_epi64::<8>(base, p0),
                _mm256_i32gather_epi64::<8>(base, p1),
                _mm256_i32gather_epi64::<8>(base, p2),
            )
        };
        let w = _mm256_or_si256(
            _mm256_or_si256(_mm256_and_si256(w0, m0v), _mm256_and_si256(w1, m1v)),
            _mm256_or_si256(_mm256_and_si256(w2, m2v), _mm256_and_si256(a, mrv)),
        );
        let w = _mm256_sll_epi64(w, sh_s);
        // from_word for f32 takes bits 32..64 of each u64: shift down, then
        // compact the four low dwords of the u64 lanes into one xmm.
        let hi = _mm256_srli_epi64::<32>(w);
        let packed = _mm256_permutevar8x32_epi32(hi, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
        let v = _mm_castsi128_ps(_mm256_castsi256_si128(packed));
        let v = if raw { v } else { _mm_add_ps(v, mu4) };
        // SAFETY: i + 4 <= blen = out.len(), matching the 4-lane store.
        unsafe { _mm_storeu_ps(out.as_mut_ptr().add(i), v) };
        i += 4;
    }
    // Scalar tail — identical to the portable kernel's reconstruction.
    while i < blen {
        let off = offsets[i] as usize; // PANIC-OK: i < blen = offsets.len()
                                       // PANIC-OK: off + 8 <= pool.len() (caller contract, 8-byte slack);
                                       // the unwrap is an infallible 8-byte slice -> array conversion.
        let loaded = u64::from_be_bytes(pool[off..off + 8].try_into().unwrap());
        // PANIC-OK: i < blen = leads.len().
        let a = loaded >> (8 * leads[i] as u32); // CAST: leads[i] <= 8
        words[i + 1] = a; // PANIC-OK: i + 1 <= blen < words.len()
        let w = (words[prov0[i] as usize] & m0) // PANIC-OK: providers <= i + 1
            | (words[prov1[i] as usize] & m1) // PANIC-OK: as above
            | (words[prov2[i] as usize] & m2) // PANIC-OK: as above
            | (a & m_rest);
        let v = f32::from_word(w << s);
        out[i] = if raw { v } else { v + mu }; // PANIC-OK: i < out.len()
        i += 1;
    }
}

/// Decode pass 2 for `f64`; see [`decode_pass2_f32`] — the word *is* the
/// value's bit pattern, so the epilogue is a cast and an `addpd`.
#[expect(clippy::too_many_arguments, reason = "flat hot-path ABI, no struct")]
#[target_feature(enable = "avx2")]
pub(super) fn decode_pass2_f64(
    pool: &[u8],
    leads: &[u8],
    offsets: &[u32],
    prov0: &[u32],
    prov1: &[u32],
    prov2: &[u32],
    words: &mut [u64],
    out: &mut [f64],
    nb: usize,
    s: u32,
    raw: bool,
    mu: f64,
) {
    let blen = out.len();
    debug_assert_eq!(words.len(), blen + 1);
    debug_assert!(leads.len() == blen && offsets.len() == blen);
    debug_assert!(prov0.len() == blen && prov1.len() == blen && prov2.len() == blen);
    // PANIC-OK: words.len() = blen + 1 >= 1 (dispatch sizes the arena).
    words[0] = 0;
    let m0 = crate::dekernels::byte_mask(0, nb);
    let m1 = crate::dekernels::byte_mask(1, nb);
    let m2 = crate::dekernels::byte_mask(2, nb);
    let top = (!0u64) << (64 - 8 * nb as u32); // CAST: nb <= 8
    let m_rest = top & !(m0 | m1 | m2);
    let m0v = _mm256_set1_epi64x(m0 as i64);
    let m1v = _mm256_set1_epi64x(m1 as i64);
    let m2v = _mm256_set1_epi64x(m2 as i64);
    let mrv = _mm256_set1_epi64x(m_rest as i64);
    let sh_s = _mm_cvtsi32_si128(s as i32); // CAST: s <= 7
    let mu4 = _mm256_set1_pd(mu);
    let pool_ptr = pool.as_ptr();
    let wptr = words.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= blen {
        // SAFETY: i + 4 <= blen = offsets.len() bounds the 4-lane index
        // load; each offset satisfies offset + 8 <= pool.len() (caller
        // contract), so every scale-1 gather lane reads 8 in-bounds bytes.
        let loaded = unsafe {
            let off4 = _mm_loadu_si128(offsets.as_ptr().add(i).cast::<__m128i>());
            _mm256_i32gather_epi64::<1>(pool_ptr.cast::<i64>(), off4)
        };
        let be = bswap64(loaded);
        // PANIC-OK: i + 4 <= blen = leads.len() on every loop iteration.
        let l4 = u32::from_le_bytes([leads[i], leads[i + 1], leads[i + 2], leads[i + 3]]);
        let lead4 = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(l4 as i32)); // CAST: widening
        let a = _mm256_srlv_epi64(be, _mm256_slli_epi64::<3>(lead4));
        // SAFETY: the 4-lane store at i + 1 ends at i + 5 <= words.len();
        // it must precede the provider gathers below.
        unsafe { _mm256_storeu_si256(wptr.add(i + 1).cast::<__m256i>(), a) };
        // SAFETY: i + 4 <= blen bounds the index loads; provider indices
        // are <= i + 4 < words.len() (caller contract).
        let (w0, w1, w2) = unsafe {
            let base = wptr.cast::<i64>();
            let p0 = _mm_loadu_si128(prov0.as_ptr().add(i).cast::<__m128i>());
            let p1 = _mm_loadu_si128(prov1.as_ptr().add(i).cast::<__m128i>());
            let p2 = _mm_loadu_si128(prov2.as_ptr().add(i).cast::<__m128i>());
            (
                _mm256_i32gather_epi64::<8>(base, p0),
                _mm256_i32gather_epi64::<8>(base, p1),
                _mm256_i32gather_epi64::<8>(base, p2),
            )
        };
        let w = _mm256_or_si256(
            _mm256_or_si256(_mm256_and_si256(w0, m0v), _mm256_and_si256(w1, m1v)),
            _mm256_or_si256(_mm256_and_si256(w2, m2v), _mm256_and_si256(a, mrv)),
        );
        let v = _mm256_castsi256_pd(_mm256_sll_epi64(w, sh_s));
        let v = if raw { v } else { _mm256_add_pd(v, mu4) };
        // SAFETY: i + 4 <= blen = out.len(), matching the 4-lane store.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(i), v) };
        i += 4;
    }
    while i < blen {
        let off = offsets[i] as usize; // PANIC-OK: i < blen = offsets.len()
                                       // PANIC-OK: off + 8 <= pool.len() (caller contract, 8-byte slack);
                                       // the unwrap is an infallible 8-byte slice -> array conversion.
        let loaded = u64::from_be_bytes(pool[off..off + 8].try_into().unwrap());
        // PANIC-OK: i < blen = leads.len().
        let a = loaded >> (8 * leads[i] as u32); // CAST: leads[i] <= 8
        words[i + 1] = a; // PANIC-OK: i + 1 <= blen < words.len()
        let w = (words[prov0[i] as usize] & m0) // PANIC-OK: providers <= i + 1
            | (words[prov1[i] as usize] & m1) // PANIC-OK: as above
            | (words[prov2[i] as usize] & m2) // PANIC-OK: as above
            | (a & m_rest);
        let v = f64::from_word(w << s);
        out[i] = if raw { v } else { v + mu }; // PANIC-OK: i < out.len()
        i += 1;
    }
}
