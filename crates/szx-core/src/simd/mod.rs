//! Explicit SIMD kernels for the encode/decode hot paths, behind runtime
//! multi-ISA dispatch.
//!
//! The portable kernels in [`crate::kernels`] / [`crate::dekernels`] are
//! written so the autovectorizer *can* emit vector code, but nothing forces
//! it to — a register-allocation hiccup or a cost-model miss silently
//! degrades them to scalar. This module pins the three hot loops to explicit
//! `std::arch` intrinsics:
//!
//! 1. **Range scan** ([`block_stats`] / [`minmax`]): 8-lane min/max stripes
//!    with NaN presence folded in via unordered compares — one AVX2 register
//!    of `f32`, two of `f64`.
//! 2. **Encode coder** ([`encode_nonconstant`]): normalize → shift into the
//!    high-aligned word (Formulas 4–5), XOR-against-predecessor leading-byte
//!    counting with branch-free nested byte-prefix compares, and a
//!    `maddubs`/`madd` 2-bit code packer (32 codes per vector).
//! 3. **Decode pass 2** ([`decode_nonconstant_block`]): the fused
//!    reconstruction sweep — gather each value's overlapping big-endian
//!    8-byte load from the mid-byte pool, byte-swap in-register, then gather
//!    the cuSZx-style provider words and mask-merge (pass 1's coupled prefix
//!    recurrences stay in the shared serial scan,
//!    [`crate::dekernels::scan_lead_codes`]).
//!
//! **Dispatch.** Callers never invoke the backends directly: every entry
//! point here re-checks [`ready`] (a cached `is_x86_feature_detected!`) and
//! silently falls back to the portable kernel, so a `KernelPath::Simd`
//! resolved on one machine is still *safe* — just not reachable — if the
//! state ever migrates. [`available`] additionally honors the
//! `SZX_DISABLE_SIMD` environment override (checked once per top-level
//! compress/decompress call, not per block) so operators can force the
//! portable path without rebuilding.
//!
//! **Equivalence.** Every backend is byte-for-byte equivalent to the
//! portable kernels — same select semantics (NaN never replaces an
//! incumbent, ties keep the earlier element), same clamps, same overlapping
//! store/load trick — which the roundtrip property suite, the fuzz
//! differential oracle, and the corrupt-archive suite assert. The scalar
//! loops remain the oracle of record.
//!
//! This module is the crate's one sanctioned unsafe surface: the crate root
//! carries `#![deny(unsafe_code)]` and each backend file opts back in with
//! an inner `#![allow(unsafe_code)]`; szx-audit allowlists exactly this
//! directory and additionally requires every `#[target_feature]` call site
//! to carry a `SAFETY:` comment naming the runtime detection guard.

// The only unsafe in this file is *calling* the `#[target_feature]`
// backends after the runtime detection guard.
#![allow(unsafe_code)]

use crate::block::{bytes_for, required_length, shift_for, BlockStats};
use crate::config::CommitStrategy;
use crate::dekernels::{self, DecodeScratch};
use crate::error::Result;
use crate::float::SzxFloat;
use crate::kernels::{self, EncodeScratch};

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Cached runtime ISA detection: AVX2 on x86-64, NEON (an architectural
/// baseline, so unconditionally true) on aarch64, absent elsewhere. This is
/// the cheap per-call guard the dispatch wrappers use; the env override
/// lives in [`available`] so it is consulted once per top-level call.
#[inline]
pub(crate) fn ready() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Is the SIMD path available for dispatch? True when the running CPU has
/// the required ISA extension **and** the `SZX_DISABLE_SIMD` environment
/// variable is unset (or set to the empty string). This is what
/// [`KernelSelect::resolve`](crate::config::KernelSelect::resolve) consults:
/// with the override set, `Auto` and explicit `Simd` requests silently land
/// on the portable kernel and produce identical output.
pub fn available() -> bool {
    ready() && std::env::var_os("SZX_DISABLE_SIMD").is_none_or(|v| v.is_empty())
}

/// Do the coder backends (encode passes 1–3, decode pass 2) exist for this
/// target? The NEON backend currently covers only the range scan, so on
/// aarch64 the coder paths delegate to the portable kernels while the scan
/// runs vectorized.
#[inline]
fn coder_ready() -> bool {
    cfg!(target_arch = "x86_64") && ready()
}

/// Reinterpret stats computed in the concrete backend type back into `F`.
/// Only reached when `F` *is* that concrete type (the `as_f32s`/`as_f64s`
/// downcast gates it), so the word roundtrip is the identity on bits.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
fn convert_stats<G: SzxFloat, F: SzxFloat>(s: BlockStats<G>) -> BlockStats<F> {
    debug_assert_eq!(F::FULL_BITS, G::FULL_BITS);
    BlockStats {
        mu: F::from_word(s.mu.to_word()),
        radius: F::from_word(s.radius.to_word()),
    }
}

/// SIMD block statistics: bit-identical to [`crate::kernels::block_stats`]
/// (and therefore to the scalar [`BlockStats::compute`]). Falls back to the
/// portable kernel for short blocks and unsupported targets.
#[inline]
pub fn block_stats<F: SzxFloat>(block: &[F]) -> BlockStats<F> {
    debug_assert!(!block.is_empty());
    #[cfg(target_arch = "x86_64")]
    if ready() && block.len() >= 2 * kernels::LANES {
        if let Some(b) = F::as_f32s(block) {
            // SAFETY: `ready()` confirmed AVX2 via cached runtime feature
            // detection (`is_x86_feature_detected!("avx2")`).
            return convert_stats(unsafe { x86::block_stats_f32(b) });
        }
        if let Some(b) = F::as_f64s(block) {
            // SAFETY: as above — AVX2 confirmed by runtime detection.
            return convert_stats(unsafe { x86::block_stats_f64(b) });
        }
    }
    #[cfg(target_arch = "aarch64")]
    if ready() && block.len() >= 2 * kernels::LANES {
        if let Some(b) = F::as_f32s(block) {
            return convert_stats(neon::block_stats_f32(b));
        }
    }
    kernels::block_stats(block)
}

/// SIMD global min/max (NaN-ignoring), bit-identical to
/// [`crate::kernels::minmax`] including the `(+inf, -inf)` all-NaN result.
#[inline]
pub fn minmax<F: SzxFloat>(data: &[F]) -> (F, F) {
    #[cfg(target_arch = "x86_64")]
    if ready() && data.len() >= kernels::LANES {
        if let Some(d) = F::as_f32s(data) {
            // SAFETY: `ready()` confirmed AVX2 via cached runtime feature
            // detection.
            let (lo, hi) = unsafe { x86::minmax_f32(d) };
            return (F::from_word(lo.to_word()), F::from_word(hi.to_word()));
        }
        if let Some(d) = F::as_f64s(data) {
            // SAFETY: as above — AVX2 confirmed by runtime detection.
            let (lo, hi) = unsafe { x86::minmax_f64(d) };
            return (F::from_word(lo.to_word()), F::from_word(hi.to_word()));
        }
    }
    #[cfg(target_arch = "aarch64")]
    if ready() && data.len() >= kernels::LANES {
        if let Some(d) = F::as_f32s(data) {
            let (lo, hi) = neon::minmax_f32(d);
            return (F::from_word(lo.to_word()), F::from_word(hi.to_word()));
        }
    }
    kernels::minmax(data)
}

/// Global value range via [`minmax`]; identical result to
/// [`crate::kernels::value_range`] and the scalar scan.
#[inline]
pub fn value_range<F: SzxFloat>(data: &[F]) -> f64 {
    let (min, max) = minmax(data);
    let (min, max) = (min.to_f64(), max.to_f64());
    if max >= min {
        max - min
    } else {
        0.0
    }
}

/// SIMD encode of one non-constant block: intrinsic passes 1–3 (normalize/
/// shift, lead-code derivation, 2-bit packing) feeding the shared
/// overlapping-store committer. Byte-identical payload to
/// [`crate::kernels::encode_nonconstant`]; non-`ByteAligned` strategies and
/// targets without a coder backend delegate to it outright.
pub(crate) fn encode_nonconstant<F: SzxFloat>(
    block: &[F],
    stats: &BlockStats<F>,
    eb: f64,
    strategy: CommitStrategy,
    payload: &mut Vec<u8>,
    scratch: &mut EncodeScratch,
) -> (F, u32) {
    if strategy != CommitStrategy::ByteAligned || !coder_ready() {
        return kernels::encode_nonconstant(block, stats, eb, strategy, payload, scratch);
    }
    #[cfg(target_arch = "x86_64")]
    {
        let req_len = required_length::<F>(stats.radius, eb);
        let raw = req_len == F::FULL_BITS;
        let mu = if raw { F::ZERO } else { stats.mu };
        let blen = block.len();
        scratch.ensure(blen);
        payload.push(req_len as u8); // CAST: req_len <= FULL_BITS = 64

        let s = shift_for(req_len);
        let nb = bytes_for(req_len);
        let lead_cap = nb.min(3) as u8; // CAST: clamped to at most 3

        // Passes 1 + 2 — materialize the shifted words and the clamped lead
        // codes with intrinsics.
        {
            // PANIC-OK: ensure(blen) above sized both arenas to blen.
            let words = &mut scratch.words[..blen];
            let leads = &mut scratch.leads[..blen]; // PANIC-OK: as above
            if let Some(b) = F::as_f32s(block) {
                // μ reinterpreted in the block's own type, bit-exactly (the
                // downcast proves F = f32).
                let mu32 = f32::from_word(mu.to_word());
                // SAFETY: `coder_ready()` above confirmed AVX2 via cached
                // runtime feature detection.
                unsafe { x86::encode_words_leads_f32(b, raw, mu32, s, lead_cap, words, leads) };
            } else if let Some(b) = F::as_f64s(block) {
                let mu64 = f64::from_word(mu.to_word());
                // SAFETY: as above — AVX2 confirmed by runtime detection.
                unsafe { x86::encode_words_leads_f64(b, raw, mu64, s, lead_cap, words, leads) };
            }
        }

        // Pass 3 — pack the 2-bit codes: full 32-code groups with the
        // maddubs/madd packer, the tail through the shared scalar packer
        // (the split point is a multiple of 4, so byte boundaries align).
        {
            let leads = &scratch.leads[..blen]; // PANIC-OK: ensure(blen)
            let n32 = blen & !31;
            // SAFETY: `coder_ready()` above confirmed AVX2 via cached
            // runtime feature detection.
            // PANIC-OK: n32 <= blen = leads.len() by construction.
            unsafe { x86::pack_lead_codes(&leads[..n32], payload) };
            kernels::pack_lead_codes(&leads[n32..], payload); // PANIC-OK: as above
        }

        // Pass 4 — the shared Solution C overlapping-store committer.
        kernels::commit_byte_aligned(
            &scratch.words[..blen], // PANIC-OK: ensure(blen)
            &scratch.leads[..blen], // PANIC-OK: ensure(blen)
            nb,
            &mut scratch.mid,
            payload,
        );
        (mu, req_len)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // coder_ready() is false off x86-64, so this is unreachable; keep
        // the delegation anyway rather than a panic site.
        kernels::encode_nonconstant(block, stats, eb, strategy, payload, scratch)
    }
}

/// SIMD decode of one non-constant `ByteAligned` block payload: the shared
/// serial pass-1 scan, then a gather-based intrinsic pass 2. Same
/// validation, outputs, and errors as
/// [`crate::dekernels::decode_nonconstant_block`]; targets without a coder
/// backend delegate to it outright.
pub(crate) fn decode_nonconstant_block<F: SzxFloat>(
    payload: &[u8],
    out: &mut [F],
    mu: F,
    scratch: &mut DecodeScratch,
) -> Result<()> {
    if !coder_ready() {
        return dekernels::decode_nonconstant_block(payload, out, mu, scratch);
    }
    #[cfg(target_arch = "x86_64")]
    {
        use crate::contracts::contract;
        use crate::error::SzxError;

        let blen = out.len();
        let h = dekernels::parse_nonconstant_header::<F>(payload, blen)?;
        let s = shift_for(h.req_len);
        let nb = bytes_for(h.req_len);
        scratch.ensure(blen);
        let nb8 = nb as u8; // CAST: bytes_for() <= 8
        let total = dekernels::scan_lead_codes(h.codes, nb8, blen, scratch);
        contract!(
            scratch.offsets.iter().take(blen).is_sorted() && total <= blen * 8,
            "mid-byte offsets must be a monotone prefix sum bounded by 8 per value"
        );
        if total > h.body.len() {
            return Err(SzxError::CorruptStream("mid-byte pool truncated".into()));
        }
        // PANIC-OK: total <= body.len() was just checked, and ensure()
        // sized the pool to blen * 8 + 8 >= total + 8.
        scratch.pool[..total].copy_from_slice(&h.body[..total]);

        let raw = h.raw;
        // PANIC-OK: ensure(blen) sized words to blen + 1 and the
        // per-element arenas to blen (five slices below).
        let words = &mut scratch.words[..blen + 1];
        let pool = &scratch.pool[..]; // PANIC-OK: full-range slice
        let leads = &scratch.leads[..blen]; // PANIC-OK: as above
        let offsets = &scratch.offsets[..blen]; // PANIC-OK: as above
        let prov0 = &scratch.prov0[..blen]; // PANIC-OK: as above
        let prov1 = &scratch.prov1[..blen]; // PANIC-OK: as above
        let prov2 = &scratch.prov2[..blen]; // PANIC-OK: as above
        if let Some(o) = F::as_f32s_mut(out) {
            let mu32 = f32::from_word(mu.to_word());
            // SAFETY: `coder_ready()` above confirmed AVX2 via cached
            // runtime feature detection; the slices were sized by ensure()
            // and validated against the payload just above.
            unsafe {
                x86::decode_pass2_f32(
                    pool, leads, offsets, prov0, prov1, prov2, words, o, nb, s, raw, mu32,
                )
            };
        } else if let Some(o) = F::as_f64s_mut(out) {
            let mu64 = f64::from_word(mu.to_word());
            // SAFETY: as above — AVX2 confirmed by runtime detection.
            unsafe {
                x86::decode_pass2_f64(
                    pool, leads, offsets, prov0, prov1, prov2, words, o, nb, s, raw, mu64,
                )
            };
        }
        Ok(())
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // coder_ready() is false off x86-64, so this is unreachable; keep
        // the delegation anyway rather than a panic site.
        dekernels::decode_nonconstant_block(payload, out, mu, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SzxConfig;

    fn cases_f32() -> Vec<Vec<f32>> {
        let mut cases = vec![
            (0..1000).map(|i| (i as f32 * 0.01).sin() * 7.0).collect(),
            (0..513).map(|i| 100.0 + i as f32 * 1e-4).collect(),
            vec![1.5f32; 300],
            (0..97).map(|i| ((i * 37 % 97) as f32) - 48.0).collect(),
        ];
        let mut mixed: Vec<f32> = (0..256).map(|i| (i as f32 * 0.3).cos()).collect();
        mixed[3] = f32::NAN;
        mixed[77] = f32::INFINITY;
        mixed[120] = -0.0;
        cases.push(mixed);
        cases
    }

    #[test]
    fn simd_block_stats_matches_kernel() {
        for data in cases_f32() {
            for blen in [16usize, 128, data.len()] {
                for block in data.chunks(blen) {
                    let a = kernels::block_stats(block);
                    let b = block_stats(block);
                    assert_eq!(a.mu.to_bits(), b.mu.to_bits());
                    assert_eq!(a.radius.to_bits(), b.radius.to_bits());
                }
            }
        }
        let data: Vec<f64> = (0..777).map(|i| (i as f64 * 0.013).sin() * 3.0).collect();
        for block in data.chunks(128) {
            let a = kernels::block_stats(block);
            let b = block_stats(block);
            assert_eq!(a.mu.to_bits(), b.mu.to_bits());
            assert_eq!(a.radius.to_bits(), b.radius.to_bits());
        }
    }

    #[test]
    fn simd_minmax_matches_kernel() {
        for data in cases_f32() {
            let (a0, a1) = kernels::minmax(&data);
            let (b0, b1) = minmax(&data);
            assert_eq!(a0.to_bits(), b0.to_bits());
            assert_eq!(a1.to_bits(), b1.to_bits());
            assert_eq!(value_range(&data), kernels::value_range(&data));
        }
        assert_eq!(value_range::<f32>(&[f32::NAN; 20]), 0.0);
        assert_eq!(value_range::<f32>(&[]), 0.0);
        let d64: Vec<f64> = (0..321).map(|i| ((i * 31 % 211) as f64) * 0.37).collect();
        let (a0, a1) = kernels::minmax(&d64);
        let (b0, b1) = minmax(&d64);
        assert_eq!(a0.to_bits(), b0.to_bits());
        assert_eq!(a1.to_bits(), b1.to_bits());
    }

    #[test]
    fn simd_streams_are_byte_identical_to_kernel_streams() {
        use crate::config::KernelSelect;
        for data in cases_f32() {
            for eb in [1e-2, 1e-4, 1e-7, 0.0] {
                let base = SzxConfig::absolute(eb);
                let k = crate::compress(&data, &base.with_kernel(KernelSelect::Kernel)).unwrap();
                let v = crate::compress(&data, &base.with_kernel(KernelSelect::Simd)).unwrap();
                assert_eq!(k, v, "eb={eb}");
                let dk: Vec<f32> = crate::decompress_with(&k, KernelSelect::Kernel).unwrap();
                let dv: Vec<f32> = crate::decompress_with(&k, KernelSelect::Simd).unwrap();
                assert_eq!(dk.len(), dv.len());
                for (a, b) in dk.iter().zip(&dv) {
                    assert_eq!(a.to_bits(), b.to_bits(), "eb={eb}");
                }
            }
        }
    }

    #[test]
    fn simd_roundtrips_f64_across_required_lengths() {
        use crate::config::KernelSelect;
        let data: Vec<f64> = (0..600).map(|i| (i as f64 * 0.011).sin() * 40.0).collect();
        for eb in [1e-1, 1e-3, 1e-6, 1e-9, 1e-13, 0.0] {
            let base = SzxConfig::absolute(eb);
            let k = crate::compress(&data, &base.with_kernel(KernelSelect::Kernel)).unwrap();
            let v = crate::compress(&data, &base.with_kernel(KernelSelect::Simd)).unwrap();
            assert_eq!(k, v, "eb={eb}");
            let dv: Vec<f64> = crate::decompress_with(&v, KernelSelect::Simd).unwrap();
            for (a, b) in data.iter().zip(&dv) {
                assert!((a - b).abs() <= eb, "eb={eb}");
            }
        }
    }

    #[test]
    fn simd_decode_rejects_truncations_like_the_kernel() {
        use crate::config::KernelSelect;
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.3).sin() * 9.0).collect();
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-4)).unwrap();
        for cut in 0..bytes.len() {
            let k = crate::decompress_with::<f32>(&bytes[..cut], KernelSelect::Kernel);
            let v = crate::decompress_with::<f32>(&bytes[..cut], KernelSelect::Simd);
            assert_eq!(k.is_err(), v.is_err(), "cut at {cut}");
            if let (Ok(k), Ok(v)) = (k, v) {
                assert_eq!(k.len(), v.len());
                for (a, b) in k.iter().zip(&v) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
