//! NEON backend for the dispatch layer in [`super`] (aarch64 only).
//!
//! NEON is an architectural baseline of aarch64, so the vector compare and
//! select intrinsics used here are statically available — no
//! `#[target_feature]` and therefore no unsafe-to-call surface; only the
//! pointer loads/stores are `unsafe`. The backend currently covers the
//! 8-lane `f32` range scan (the dominant cost of constant-block
//! classification); the coder passes delegate to the portable kernels via
//! `coder_ready()` in [`super`].
//!
//! The one semantic trap: `vminq_f32`/`vmaxq_f32` propagate NaN, but the
//! scalar oracle's `if d < min { d } else { min }` keeps the incumbent on
//! NaN. The kernels therefore use compare (`vcltq`/`vcgtq`, false on any
//! NaN operand) + bitwise select (`vbslq`) — the same choice the AVX2
//! backend makes with `vcmpps`/`vblendvps`.

#![allow(unsafe_code)]

use core::arch::aarch64::*;

use crate::block::{radius_about, BlockStats};
use crate::float::SzxFloat;
use crate::kernels::LANES;

/// NEON equivalent of [`crate::kernels::block_stats`] for `f32`: one
/// 8-lane stripe held in two quad registers. Caller guarantees
/// `block.len() >= 2 * LANES`.
pub(super) fn block_stats_f32(block: &[f32]) -> BlockStats<f32> {
    let n = block.len();
    debug_assert!(n >= 2 * LANES);
    let full = n / LANES;
    let ptr = block.as_ptr();
    // SAFETY: n >= 2 * LANES = 16 (caller contract), so both 4-lane loads
    // of the first stripe are in bounds.
    let (first_lo, first_hi) = unsafe { (vld1q_f32(ptr), vld1q_f32(ptr.add(4))) };
    let (mut min_lo, mut min_hi) = (first_lo, first_hi);
    let (mut max_lo, mut max_hi) = (first_lo, first_hi);
    // A NaN lane fails the self-equality compare; accumulate complements.
    let mut nan_acc = vorrq_u32(
        vmvnq_u32(vceqq_f32(first_lo, first_lo)),
        vmvnq_u32(vceqq_f32(first_hi, first_hi)),
    );
    for k in 1..full {
        // SAFETY: k < full = n / LANES, so lanes k*8 .. k*8+8 are in bounds.
        let (d_lo, d_hi) = unsafe {
            (
                vld1q_f32(ptr.add(k * LANES)),
                vld1q_f32(ptr.add(k * LANES + 4)),
            )
        };
        min_lo = vbslq_f32(vcltq_f32(d_lo, min_lo), d_lo, min_lo);
        min_hi = vbslq_f32(vcltq_f32(d_hi, min_hi), d_hi, min_hi);
        max_lo = vbslq_f32(vcgtq_f32(d_lo, max_lo), d_lo, max_lo);
        max_hi = vbslq_f32(vcgtq_f32(d_hi, max_hi), d_hi, max_hi);
        nan_acc = vorrq_u32(nan_acc, vmvnq_u32(vceqq_f32(d_lo, d_lo)));
        nan_acc = vorrq_u32(nan_acc, vmvnq_u32(vceqq_f32(d_hi, d_hi)));
    }
    let mut minl = [0f32; LANES];
    let mut maxl = [0f32; LANES];
    // SAFETY: each half-store writes 4 f32 into an 8-element array.
    unsafe {
        vst1q_f32(minl.as_mut_ptr(), min_lo);
        vst1q_f32(minl.as_mut_ptr().add(4), min_hi);
        vst1q_f32(maxl.as_mut_ptr(), max_lo);
        vst1q_f32(maxl.as_mut_ptr().add(4), max_hi);
    }
    let mut has_nan = vmaxvq_u32(nan_acc) != 0;
    // Lane reduction in stripe order, then the scalar tail — identical
    // select semantics to the portable kernel.
    let mut min = minl[0];
    let mut max = maxl[0];
    for j in 1..LANES {
        min = if minl[j] < min { minl[j] } else { min };
        max = if maxl[j] > max { maxl[j] } else { max };
    }
    for &d in &block[full * LANES..] {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
        has_nan |= d.is_nan();
    }
    if has_nan {
        return BlockStats {
            mu: 0.0,
            // Same spelling as the portable kernel's F::from_f64(NAN) so
            // the quiet-NaN bit pattern matches exactly.
            radius: f64::NAN as f32,
        };
    }
    let mu = f32::half_sum(min, max);
    BlockStats {
        mu,
        radius: radius_about(mu, min, max),
    }
}

/// NEON global min/max for `f32`, NaN-ignoring, `(+inf, -inf)` sentinels —
/// bit-identical to [`crate::kernels::minmax`]. Caller guarantees
/// `data.len() >= LANES`.
pub(super) fn minmax_f32(data: &[f32]) -> (f32, f32) {
    let n = data.len();
    debug_assert!(n >= LANES);
    let full = n / LANES;
    let ptr = data.as_ptr();
    let mut min_lo = vdupq_n_f32(f32::INFINITY);
    let mut min_hi = min_lo;
    let mut max_lo = vdupq_n_f32(f32::NEG_INFINITY);
    let mut max_hi = max_lo;
    for k in 0..full {
        // SAFETY: k < full = n / LANES, so lanes k*8 .. k*8+8 are in bounds.
        let (d_lo, d_hi) = unsafe {
            (
                vld1q_f32(ptr.add(k * LANES)),
                vld1q_f32(ptr.add(k * LANES + 4)),
            )
        };
        min_lo = vbslq_f32(vcltq_f32(d_lo, min_lo), d_lo, min_lo);
        min_hi = vbslq_f32(vcltq_f32(d_hi, min_hi), d_hi, min_hi);
        max_lo = vbslq_f32(vcgtq_f32(d_lo, max_lo), d_lo, max_lo);
        max_hi = vbslq_f32(vcgtq_f32(d_hi, max_hi), d_hi, max_hi);
    }
    let mut minl = [0f32; LANES];
    let mut maxl = [0f32; LANES];
    // SAFETY: each half-store writes 4 f32 into an 8-element array.
    unsafe {
        vst1q_f32(minl.as_mut_ptr(), min_lo);
        vst1q_f32(minl.as_mut_ptr().add(4), min_hi);
        vst1q_f32(maxl.as_mut_ptr(), max_lo);
        vst1q_f32(maxl.as_mut_ptr().add(4), max_hi);
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for j in 0..LANES {
        min = if minl[j] < min { minl[j] } else { min };
        max = if maxl[j] > max { maxl[j] } else { max };
    }
    for &d in &data[full * LANES..] {
        min = if d < min { d } else { min };
        max = if d > max { d } else { max };
    }
    (min, max)
}
