//! Random-access decompression.
//!
//! The `zsize_array` that enables the paper's parallel decompression (§6.1)
//! also enables *partial* decompression: a prefix sum over the per-block
//! compressed sizes locates any block in O(1) once the index is built, so
//! an application can pull an arbitrary element range out of a compressed
//! stream without touching the rest — the access pattern of in-memory
//! compression use cases (e.g. the paper's quantum-circuit simulation
//! scenario, which decompresses only the amplitudes a gate touches).

use core::cell::RefCell;

use crate::config::{CommitStrategy, KernelPath, KernelSelect};
use crate::decode::{decode_block_dispatch, ParsedStream};
use crate::dekernels::DecodeScratch;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

/// A reusable random-access view over one compressed stream.
pub struct RandomAccess<'a, F: SzxFloat> {
    parsed: ParsedStream<'a>,
    strategy: CommitStrategy,
    block_size: usize,
    n: usize,
    path: KernelPath,
    /// Kernel arenas reused across `decode_block` calls. A `RefCell` keeps
    /// the decode methods `&self` (the reader is a view, not a mutator);
    /// the borrow never escapes a single block decode.
    scratch: RefCell<DecodeScratch>,
    _marker: core::marker::PhantomData<F>,
}

impl<'a, F: SzxFloat> RandomAccess<'a, F> {
    /// Parse and index the stream (one pass over the state bits and zsize
    /// array; no payload is decoded yet).
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        let parsed = ParsedStream::parse::<F>(bytes)?;
        let header = *parsed.header();
        Ok(RandomAccess {
            parsed,
            strategy: header.strategy,
            block_size: header.block_size,
            n: header.n,
            path: KernelSelect::Auto.resolve(),
            scratch: RefCell::new(DecodeScratch::default()),
            _marker: core::marker::PhantomData,
        })
    }

    /// Select the decode path (simd vs kernel vs scalar — identical outputs).
    pub fn with_kernel(mut self, kernel: KernelSelect) -> Self {
        self.path = kernel.resolve();
        self
    }

    /// Total number of elements in the stream.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.parsed.num_blocks()
    }

    /// Decode block `b` into `out` (must hold exactly the block's length;
    /// use [`Self::block_len`]).
    pub fn decode_block(&self, b: usize, out: &mut [F]) -> Result<()> {
        if b >= self.num_blocks() {
            return Err(SzxError::InvalidConfig(format!(
                "block {b} out of range ({} blocks)",
                self.num_blocks()
            )));
        }
        let blen = self.block_len(b);
        if out.len() != blen {
            return Err(SzxError::InvalidConfig(format!(
                "output holds {} elements, block {b} has {blen}",
                out.len()
            )));
        }
        let mu = self.parsed.mu::<F>(b);
        if self.parsed.state(b) {
            let (off, len) = self.parsed.payload_span(b);
            decode_block_dispatch(
                // PANIC-OK: parse() validated every payload span against
                // `payloads.len()` when the stream was indexed.
                &self.parsed.payloads[off..off + len],
                out,
                mu,
                self.strategy,
                self.path,
                &mut self.scratch.borrow_mut(),
            )
        } else {
            out.fill(mu);
            Ok(())
        }
    }

    /// Elements in block `b` (the final block may be short).
    pub fn block_len(&self, b: usize) -> usize {
        self.block_size.min(self.n - b * self.block_size)
    }

    /// Decode the element range `[start, end)` into a fresh vector,
    /// touching only the blocks that overlap it.
    pub fn decode_range(&self, start: usize, end: usize) -> Result<Vec<F>> {
        if start > end || end > self.n {
            return Err(SzxError::InvalidConfig(format!(
                "range {start}..{end} out of bounds (n = {})",
                self.n
            )));
        }
        let mut out = Vec::with_capacity(end - start);
        if start == end {
            return Ok(out);
        }
        let first_block = start / self.block_size;
        let last_block = (end - 1) / self.block_size;
        let mut scratch = vec![F::ZERO; self.block_size];
        for b in first_block..=last_block {
            let blen = self.block_len(b);
            let block_start = b * self.block_size;
            // PANIC-OK: `blen <= block_size` and scratch holds block_size
            // elements.
            self.decode_block(b, &mut scratch[..blen])?;
            let lo = start.max(block_start) - block_start;
            let hi = end.min(block_start + blen) - block_start;
            // PANIC-OK: `lo <= hi <= blen` by the max/min clamps above.
            out.extend_from_slice(&scratch[lo..hi]);
        }
        Ok(out)
    }

    /// Decode a single element (convenience wrapper over
    /// [`Self::decode_range`]).
    pub fn decode_at(&self, index: usize) -> Result<F> {
        let v = self.decode_range(index, index + 1)?;
        // PANIC-OK: decode_range(i, i + 1) returns exactly one element when
        // it returns Ok.
        Ok(v[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SzxConfig;

    fn wave(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.013).sin() * 7.0 + (i as f32 * 0.11).cos() * 0.02)
            .collect()
    }

    #[test]
    fn ranges_match_full_decompression() {
        let data = wave(10_000);
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        let full: Vec<f32> = crate::decompress(&bytes).unwrap();
        let ra = RandomAccess::<f32>::new(&bytes).unwrap();
        assert_eq!(ra.len(), 10_000);
        for (start, end) in [
            (0, 10),
            (0, 10_000),
            (127, 129),
            (5000, 5001),
            (9_990, 10_000),
            (42, 42),
        ] {
            let range = ra.decode_range(start, end).unwrap();
            assert_eq!(range, &full[start..end], "{start}..{end}");
        }
    }

    #[test]
    fn single_element_access() {
        let data = wave(1000);
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-4)).unwrap();
        let full: Vec<f32> = crate::decompress(&bytes).unwrap();
        let ra = RandomAccess::<f32>::new(&bytes).unwrap();
        for i in [0usize, 1, 127, 128, 500, 999] {
            assert_eq!(ra.decode_at(i).unwrap(), full[i], "index {i}");
        }
    }

    #[test]
    fn per_block_access_and_lengths() {
        let data = wave(300); // 2 full blocks + 44-element tail
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        let full: Vec<f32> = crate::decompress(&bytes).unwrap();
        let ra = RandomAccess::<f32>::new(&bytes).unwrap();
        assert_eq!(ra.num_blocks(), 3);
        assert_eq!(ra.block_len(0), 128);
        assert_eq!(ra.block_len(2), 44);
        let mut block = vec![0f32; 44];
        ra.decode_block(2, &mut block).unwrap();
        assert_eq!(block, &full[256..300]);
    }

    #[test]
    fn works_for_all_strategies_and_f64() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.01).sin()).collect();
        for strategy in [
            crate::CommitStrategy::ByteAligned,
            crate::CommitStrategy::BitPack,
            crate::CommitStrategy::BytePlusResidual,
        ] {
            let cfg = SzxConfig::absolute(1e-6).with_strategy(strategy);
            let bytes = crate::compress(&data, &cfg).unwrap();
            let full: Vec<f64> = crate::decompress(&bytes).unwrap();
            let ra = RandomAccess::<f64>::new(&bytes).unwrap();
            assert_eq!(
                ra.decode_range(100, 400).unwrap(),
                &full[100..400],
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn out_of_bounds_errors() {
        let data = wave(100);
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        let ra = RandomAccess::<f32>::new(&bytes).unwrap();
        assert!(ra.decode_range(50, 101).is_err());
        assert!(ra.decode_range(60, 50).is_err());
        assert!(ra.decode_at(100).is_err());
        let mut tiny = vec![0f32; 3];
        assert!(ra.decode_block(0, &mut tiny).is_err(), "wrong buffer size");
        assert!(ra.decode_block(5, &mut tiny).is_err(), "block out of range");
    }

    #[test]
    fn kernel_and_scalar_paths_agree_bitwise() {
        let mut data = wave(5000);
        data[700] = f32::NAN; // one bit-exact block in the middle
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-4)).unwrap();
        let scalar = RandomAccess::<f32>::new(&bytes)
            .unwrap()
            .with_kernel(crate::KernelSelect::Scalar);
        let kernel = RandomAccess::<f32>::new(&bytes)
            .unwrap()
            .with_kernel(crate::KernelSelect::Kernel);
        for (start, end) in [(0, 5000), (100, 400), (699, 702), (4990, 5000)] {
            let a = scalar.decode_range(start, end).unwrap();
            let b = kernel.decode_range(start, end).unwrap();
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{start}..{end} elem {i}");
            }
        }
    }

    #[test]
    fn type_mismatch_rejected() {
        let data = wave(100);
        let bytes = crate::compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        assert!(RandomAccess::<f64>::new(&bytes).is_err());
    }
}
