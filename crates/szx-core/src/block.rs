//! Per-block statistics and the required-length computation of Formula (4).

use crate::float::{f64_exponent, SzxFloat};

/// Statistics of one fixed-size 1-D block (Algorithm 1, line 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStats<F: SzxFloat> {
    /// Mean of min and max — `μ_k`, the single value stored for constant
    /// blocks and the normalization offset for non-constant blocks.
    pub mu: F,
    /// Variation radius `r_k = max(max − μ, μ − min)`: the farthest any
    /// block value sits from the stored μ. μ is the *rounded* midpoint, so
    /// the two sides can differ — when min and max are a single ULP apart
    /// the midpoint can round onto one endpoint exactly, and taking only
    /// `max − μ` would report a zero radius for a block that is not
    /// constant. NaN if the block contains a NaN, which classifies the
    /// block as non-constant and (via the saturated exponent) forces
    /// bit-exact storage.
    pub radius: F,
}

impl<F: SzxFloat> BlockStats<F> {
    /// One pass of comparisons and one add + one halving per block — the
    /// only non-bitwise arithmetic in the classification stage.
    #[inline]
    pub fn compute(block: &[F]) -> Self {
        debug_assert!(!block.is_empty());
        let mut min = block[0];
        let mut max = block[0];
        // `<`/`>` are false for NaN, so a mid-block NaN would silently be
        // skipped by the min/max scan; track it in the same loop (branchless
        // OR) so NaN-carrying blocks degrade to bit-exact storage instead of
        // corrupting the payload.
        let mut has_nan = block[0].is_nan();
        for &d in &block[1..] {
            if d < min {
                min = d;
            }
            if d > max {
                max = d;
            }
            has_nan |= d.is_nan();
        }
        if has_nan {
            return BlockStats {
                mu: F::ZERO,
                radius: F::from_f64(f64::NAN),
            };
        }
        let mu = F::half_sum(min, max);
        BlockStats {
            mu,
            radius: radius_about(mu, min, max),
        }
    }

    /// Constant-block test (Algorithm 1, line 4): every value in the block
    /// is within `e` of `μ` iff the radius is within `e`.
    ///
    /// A valid radius is non-negative; NaN (block carries a NaN) fails the
    /// `r >= 0` half and `+inf` (the `min+max` sum overflowed, e.g. a block
    /// of values near `f32::MAX`, making μ = ±inf and one deviation
    /// infinite) fails the `r <= e` half — either way the block classifies
    /// as non-constant, where the saturated radius exponent then selects
    /// bit-exact storage.
    #[inline]
    pub fn is_constant(&self, eb: f64) -> bool {
        let r = self.radius.to_f64();
        r >= 0.0 && r <= eb
    }

    /// Constant-block test honoring the `eb = 0` bit-exactness promise.
    ///
    /// With `eb = 0` a radius of zero is not sufficient: `+0.0` and `-0.0`
    /// compare equal, so a mixed-zero block would collapse to one sign and
    /// lose bits. The (rare, perfectly predicted) extra branch only runs in
    /// lossless mode; every other numerically-equal value pair shares a bit
    /// pattern, so checking the first element's pattern suffices.
    #[inline]
    pub fn is_constant_for(&self, eb: f64, block: &[F]) -> bool {
        if !self.is_constant(eb) {
            return false;
        }
        if eb == 0.0 {
            let first = block[0].to_word();
            return block.iter().all(|d| d.to_word() == first);
        }
        true
    }
}

/// Distance from the rounded midpoint `mu` to the farther of the two block
/// extremes. Shared by the scalar and kernel stat scans so their radii stay
/// bit-identical.
#[inline]
pub(crate) fn radius_about<F: SzxFloat>(mu: F, min: F, max: F) -> F {
    let lo = mu - min;
    let hi = max - mu;
    if lo > hi {
        lo
    } else {
        hi
    }
}

/// Required number of significant bits `R_k` for a non-constant block
/// (Formula (4) with the sign+exponent prefix made explicit, exactly as the
/// reference implementation's `computeReqLength_float` does):
///
/// ```text
/// R_k = SIGN_EXP_BITS + (p(r_k) - p(e) + 1)    clamped to [SIGN_EXP_BITS, FULL_BITS]
/// ```
///
/// `p(r) - p(e) + 1` mantissa bits guarantee a truncation error below
/// `2^(p(e) - 1) <= e/2`, leaving headroom for the normalize/denormalize
/// rounding (see the error-bound analysis in DESIGN.md §5). A result of
/// `FULL_BITS` signals bit-exact storage: the caller must then force `μ = 0`
/// and skip normalization so even NaN payloads round-trip.
#[inline]
pub fn required_length<F: SzxFloat>(radius: F, eb: f64) -> u32 {
    let rad_expo = radius.exponent();
    let req_expo = f64_exponent(eb);
    let req = F::SIGN_EXP_BITS as i64 + (rad_expo as i64 - req_expo as i64 + 1);
    req.clamp(F::SIGN_EXP_BITS as i64, F::FULL_BITS as i64) as u32
}

/// The right-shift distance of Formula (5): after shifting, the `R_k`
/// significant bits occupy exactly `ceil(R_k/8)` whole bytes.
#[inline]
pub fn shift_for(req_len: u32) -> u32 {
    (8 - req_len % 8) % 8
}

/// Number of whole bytes holding the (shifted) significant bits.
#[inline]
pub fn bytes_for(req_len: u32) -> usize {
    req_len.div_ceil(8) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = BlockStats::compute(&[1.0f32, 3.0, 2.0]);
        assert_eq!(s.mu, 2.0);
        assert_eq!(s.radius, 1.0);
        assert!(s.is_constant(1.0));
        assert!(!s.is_constant(0.999));
    }

    #[test]
    fn stats_single_element() {
        let s = BlockStats::compute(&[-4.5f64]);
        assert_eq!(s.mu, -4.5);
        assert_eq!(s.radius, 0.0);
        assert!(s.is_constant(0.0), "radius 0 is constant even at eb 0");
    }

    #[test]
    fn stats_all_equal() {
        let s = BlockStats::compute(&[7.25f32; 128]);
        assert_eq!(s.mu, 7.25);
        assert_eq!(s.radius, 0.0);
    }

    #[test]
    fn nan_anywhere_defeats_constant_classification() {
        for pos in [0usize, 1, 63, 127] {
            let mut block = vec![1.0f32; 128];
            block[pos] = f32::NAN;
            let s = BlockStats::compute(&block);
            assert!(
                !s.is_constant(f64::INFINITY),
                "NaN at {pos} must be non-constant"
            );
            assert_eq!(
                required_length::<f32>(s.radius, 1e-3),
                32,
                "NaN forces bit-exact"
            );
        }
    }

    #[test]
    fn mu_overflow_is_not_misclassified_as_constant() {
        // Regression: (min+max) overflows for a single value near f32::MAX,
        // making μ = inf and radius = -inf; a naive `radius <= eb` check
        // then stored inf as the representative value.
        let s = BlockStats::compute(&[2.2873212e38f32]);
        assert!(!s.is_constant(1e-3));
        assert_eq!(
            required_length::<f32>(s.radius, 1e-3),
            32,
            "must fall back to bit-exact"
        );
        let s = BlockStats::compute(&[3e38f32, 3.2e38]);
        assert!(!s.is_constant(f64::MAX));
    }

    #[test]
    fn one_ulp_spread_is_not_constant_below_ulp_bound() {
        // Regression (found by fuzzing): min and max one ULP apart. The
        // midpoint is exactly halfway, so `half_sum` ties-to-even onto one
        // endpoint — here max itself — and the old `radius = max - mu`
        // reported 0.0, classifying the block as constant for ANY bound and
        // decoding min a full ULP off. The radius must cover the farther
        // endpoint.
        let max = 1001.0f32;
        let min = f32::from_bits(max.to_bits() - 1);
        let s = BlockStats::compute(&[max, max, min, min]);
        assert_eq!(s.mu, max, "midpoint rounds onto the even endpoint");
        let ulp = f64::from(max) - f64::from(min);
        assert_eq!(s.radius.to_f64(), ulp, "radius covers the far endpoint");
        assert!(!s.is_constant(ulp / 16.0));
        assert!(s.is_constant(ulp), "a bound of one ULP still collapses it");
    }

    #[test]
    fn mixed_sign_zeros_are_not_constant_at_zero_bound() {
        // Regression: +0.0 and -0.0 compare equal, so radius is 0 and a
        // naive constant classification at eb=0 would erase the zero sign.
        let block = [0.0f32, -0.0, 0.0];
        let s = BlockStats::compute(&block);
        assert!(s.is_constant(0.0), "numerically constant");
        assert!(!s.is_constant_for(0.0, &block), "but not bit-constant");
        assert!(
            s.is_constant_for(1e-9, &block),
            "lossy bounds may collapse zeros"
        );
        let same = [-0.0f32, -0.0];
        assert!(BlockStats::compute(&same).is_constant_for(0.0, &same));
    }

    #[test]
    fn opposite_huge_values_overflow_to_lossless() {
        let s = BlockStats::compute(&[f32::MAX, f32::MIN]);
        // mu = 0, radius = MAX; required length for any practical bound
        // saturates at 32 only when the exponent gap is >= 23 bits.
        assert_eq!(s.mu, 0.0);
        assert_eq!(required_length::<f32>(s.radius, 1e-3), 32);
    }

    #[test]
    fn required_length_matches_hand_computation() {
        // radius 1.0 (expo 0), eb 1e-3 (expo -10): 9 + 0 - (-10) + 1 = 20.
        assert_eq!(required_length::<f32>(1.0f32, 1e-3), 20);
        // radius 8.0 (expo 3), eb 0.5 (expo -1): 9 + 3 + 1 + 1 = 14.
        assert_eq!(required_length::<f32>(8.0f32, 0.5), 14);
        // f64: 12 + 0 + 10 + 1 = 23.
        assert_eq!(required_length::<f64>(1.0f64, 1e-3), 23);
    }

    #[test]
    fn required_length_clamps() {
        // Huge precision gap -> full bits.
        assert_eq!(required_length::<f32>(1.0f32, 1e-30), 32);
        assert_eq!(required_length::<f64>(1.0f64, 0.0), 64, "eb=0 is lossless");
        // Radius far below bound (defensive: such a block would be constant).
        assert_eq!(required_length::<f32>(1e-20f32, 1.0), 9);
    }

    #[test]
    fn nonconstant_block_always_needs_a_mantissa_bit() {
        // For a genuinely non-constant block r > e, so p(r) >= p(e) and the
        // required length exceeds the sign+exponent prefix.
        for (r, e) in [(0.002f32, 1e-3f64), (1.5, 1.0), (100.0, 0.03)] {
            assert!(r as f64 > e);
            assert!(required_length::<f32>(r, e) > f32::SIGN_EXP_BITS);
        }
    }

    #[test]
    fn shift_makes_required_bits_byte_aligned() {
        for req in 9..=64u32 {
            let s = shift_for(req);
            assert!(s < 8);
            assert_eq!((req + s) % 8, 0, "req={req} s={s}");
            assert_eq!(bytes_for(req) * 8, (req + s) as usize);
        }
        assert_eq!(shift_for(16), 0);
        assert_eq!(shift_for(20), 4);
        assert_eq!(bytes_for(20), 3);
        assert_eq!(bytes_for(32), 4);
    }
}
