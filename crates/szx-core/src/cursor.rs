//! Panic-free byte reader for the cold parse paths (header, archive TOC,
//! stream index).
//!
//! Every accessor returns `Option`, so the `szx-audit` panic-freedom rule
//! holds by construction: no indexing, no `unwrap`, no arithmetic that can
//! overflow. Call sites attach the appropriate [`crate::error::SzxError`]
//! with `ok_or_else`. The hot per-block decode loops deliberately do *not*
//! route through this type — they validate bounds once up front and carry
//! `// PANIC-OK:` proofs instead.

/// Forward-only reader over a byte slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Consume `n` bytes; `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Everything not yet consumed (the cursor keeps its position).
    pub fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    pub fn u16_le(&mut self) -> Option<u16> {
        self.take(2)?.try_into().ok().map(u16::from_le_bytes)
    }

    pub fn u32_le(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    pub fn u64_le(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    pub fn f64_le(&mut self) -> Option<f64> {
        self.u64_le().map(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_order() {
        let mut buf = vec![7u8];
        buf.extend_from_slice(&0xbeefu16.to_le_bytes());
        buf.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_le_bytes());
        buf.extend_from_slice(b"tail");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8(), Some(7));
        assert_eq!(c.u16_le(), Some(0xbeef));
        assert_eq!(c.u32_le(), Some(0xdead_beef));
        assert_eq!(c.f64_le(), Some(1.5));
        assert_eq!(c.take(4), Some(&b"tail"[..]));
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.rest(), &[] as &[u8]);
    }

    #[test]
    fn short_reads_are_none_and_consume_nothing() {
        let buf = [1u8, 2, 3];
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32_le(), None);
        assert_eq!(c.remaining(), 3, "failed read must not advance");
        assert_eq!(c.take(4), None);
        assert_eq!(c.take(3), Some(&buf[..]));
        assert_eq!(c.u8(), None);
    }

    #[test]
    fn rest_tracks_position() {
        let buf = [1u8, 2, 3, 4];
        let mut c = Cursor::new(&buf);
        let _ = c.take(1);
        assert_eq!(c.rest(), &[2, 3, 4]);
        assert_eq!(c.remaining(), 3);
    }
}
