//! Multi-field archive container.
//!
//! Scientific applications dump dozens of named fields at once (Table 2:
//! CESM-ATM has 77). The archive bundles independently-compressed SZx
//! streams under their field names with a table of contents, so a consumer
//! can list and extract single fields without scanning the rest — the
//! compressed analogue of the per-variable layout simulation outputs use.
//!
//! ```text
//! magic b"SZXA" | u32 field count
//! TOC entries:   [u16 name_len][name utf-8][u64 offset][u64 len]
//! field streams, concatenated (offsets relative to the payload start)
//! ```

use crate::config::SzxConfig;
use crate::cursor::Cursor;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

const MAGIC: [u8; 4] = *b"SZXA";

/// Builds an archive in memory.
#[derive(Debug, Default)]
pub struct ArchiveWriter {
    entries: Vec<(String, Vec<u8>)>,
}

impl ArchiveWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compress `data` and add it under `name`. Names must be unique and
    /// at most 65535 bytes of UTF-8.
    pub fn add<F: SzxFloat>(&mut self, name: &str, data: &[F], cfg: &SzxConfig) -> Result<()> {
        self.add_raw_stream(name, crate::compress(data, cfg)?)
    }

    /// Add an already-compressed SZx stream (validated) under `name`.
    pub fn add_raw_stream(&mut self, name: &str, stream: Vec<u8>) -> Result<()> {
        crate::inspect(&stream)?;
        if name.len() > u16::MAX as usize {
            return Err(SzxError::InvalidConfig(format!(
                "field name too long ({} bytes)",
                name.len()
            )));
        }
        if self.entries.iter().any(|(n, _)| n == name) {
            return Err(SzxError::InvalidConfig(format!(
                "duplicate field name {name:?}"
            )));
        }
        self.entries.push((name.to_string(), stream));
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize the archive.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        let mut offset = 0u64;
        for (name, stream) in &self.entries {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(stream.len() as u64).to_le_bytes());
            // ARITH-OK: writer side — sums lengths of in-memory streams,
            // bounded by the process address space, far below u64::MAX.
            offset += stream.len() as u64;
        }
        for (_, stream) in &self.entries {
            out.extend_from_slice(stream);
        }
        out
    }
}

/// Reads fields back out of an archive.
pub struct ArchiveReader<'a> {
    /// name → slice into the payload section.
    toc: Vec<(String, &'a [u8])>,
}

impl<'a> ArchiveReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        let corrupt = |m: &str| SzxError::CorruptStream(format!("archive: {m}"));
        let mut c = Cursor::new(bytes);
        match c.take(4) {
            Some(magic) if magic == MAGIC => {}
            _ => return Err(corrupt("bad magic")),
        }
        let count = c.u32_le().ok_or_else(|| corrupt("bad magic"))? as usize;
        if count > bytes.len() / 18 {
            return Err(corrupt("implausible field count"));
        }
        let mut raw_toc = Vec::with_capacity(count);
        for _ in 0..count {
            let nlen = c.u16_le().ok_or_else(|| corrupt("truncated TOC"))? as usize;
            if c.remaining() < nlen + 16 {
                return Err(corrupt("truncated TOC entry"));
            }
            let name_bytes = c.take(nlen).ok_or_else(|| corrupt("truncated TOC entry"))?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| corrupt("field name is not UTF-8"))?
                .to_string();
            let offset = c.u64_le().ok_or_else(|| corrupt("truncated TOC entry"))? as usize;
            let len = c.u64_le().ok_or_else(|| corrupt("truncated TOC entry"))? as usize;
            raw_toc.push((name, offset, len));
        }
        let payload = c.rest();
        let mut toc = Vec::with_capacity(count);
        for (name, offset, len) in raw_toc {
            let end = offset
                .checked_add(len)
                .ok_or_else(|| corrupt("TOC overflow"))?;
            let span = payload
                .get(offset..end)
                .ok_or_else(|| corrupt("TOC points past payload"))?;
            toc.push((name, span));
        }
        Ok(ArchiveReader { toc })
    }

    /// Field names in archive order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.toc.iter().map(|(n, _)| n.as_str())
    }

    pub fn len(&self) -> usize {
        self.toc.len()
    }

    pub fn is_empty(&self) -> bool {
        self.toc.is_empty()
    }

    /// Raw compressed stream of a field.
    pub fn stream(&self, name: &str) -> Option<&'a [u8]> {
        self.toc.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }

    /// Decompress a field.
    pub fn field<F: SzxFloat>(&self, name: &str) -> Result<Vec<F>> {
        let stream = self
            .stream(name)
            .ok_or_else(|| SzxError::InvalidConfig(format!("no field named {name:?}")))?;
        crate::decompress(stream)
    }

    /// Header of a field's stream without decompressing it.
    pub fn header(&self, name: &str) -> Result<crate::Header> {
        let stream = self
            .stream(name)
            .ok_or_else(|| SzxError::InvalidConfig(format!("no field named {name:?}")))?;
        crate::inspect(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(k: usize) -> Vec<f32> {
        (0..2000)
            .map(|i| ((i + k * 911) as f32 * 0.01).sin() * (k + 1) as f32)
            .collect()
    }

    #[test]
    fn archive_roundtrip_multiple_fields() {
        let cfg = SzxConfig::absolute(1e-4);
        let mut w = ArchiveWriter::new();
        for (k, name) in ["pressure", "density", "velocity-x"].iter().enumerate() {
            w.add(name, &field(k), &cfg).unwrap();
        }
        assert_eq!(w.len(), 3);
        let bytes = w.finish();
        let r = ArchiveReader::new(&bytes).unwrap();
        assert_eq!(
            r.names().collect::<Vec<_>>(),
            vec!["pressure", "density", "velocity-x"]
        );
        for (k, name) in ["pressure", "density", "velocity-x"].iter().enumerate() {
            let back: Vec<f32> = r.field(name).unwrap();
            let orig = field(k);
            assert!(
                orig.iter().zip(&back).all(|(a, b)| (a - b).abs() <= 1e-4),
                "{name}"
            );
        }
        assert!(r.field::<f32>("missing").is_err());
    }

    #[test]
    fn selective_extraction_reads_one_stream() {
        let cfg = SzxConfig::absolute(1e-3);
        let mut w = ArchiveWriter::new();
        w.add("a", &field(0), &cfg).unwrap();
        w.add("b", &field(1), &cfg).unwrap();
        let bytes = w.finish();
        let r = ArchiveReader::new(&bytes).unwrap();
        let h = r.header("b").unwrap();
        assert_eq!(h.n, 2000);
        // The single extracted stream excludes the sibling field and TOC.
        let b_len = r.stream("b").unwrap().len();
        let a_len = r.stream("a").unwrap().len();
        assert!(
            b_len + a_len < bytes.len(),
            "streams plus TOC fill the archive"
        );
        assert!(b_len < bytes.len() * 3 / 5);
    }

    #[test]
    fn duplicate_and_invalid_entries_rejected() {
        let cfg = SzxConfig::absolute(1e-3);
        let mut w = ArchiveWriter::new();
        w.add("x", &field(0), &cfg).unwrap();
        assert!(w.add("x", &field(1), &cfg).is_err(), "duplicate");
        assert!(
            w.add_raw_stream("y", vec![1, 2, 3]).is_err(),
            "not an SZx stream"
        );
    }

    #[test]
    fn mixed_element_types() {
        let cfg = SzxConfig::absolute(1e-6);
        let mut w = ArchiveWriter::new();
        w.add("singles", &field(0), &cfg).unwrap();
        let doubles: Vec<f64> = (0..500).map(|i| (i as f64 * 0.03).cos()).collect();
        w.add("doubles", &doubles, &cfg).unwrap();
        let bytes = w.finish();
        let r = ArchiveReader::new(&bytes).unwrap();
        assert_eq!(r.header("singles").unwrap().dtype, 0);
        assert_eq!(r.header("doubles").unwrap().dtype, 1);
        assert!(r.field::<f64>("doubles").is_ok());
        assert!(r.field::<f64>("singles").is_err(), "type mismatch surfaces");
    }

    #[test]
    fn corrupt_archives_error_not_panic() {
        let cfg = SzxConfig::absolute(1e-3);
        let mut w = ArchiveWriter::new();
        w.add("a", &field(0), &cfg).unwrap();
        let bytes = w.finish();
        assert!(ArchiveReader::new(&bytes[..3]).is_err());
        assert!(ArchiveReader::new(&bytes[..20]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'!';
        assert!(ArchiveReader::new(&bad).is_err());
        // Forged count.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ArchiveReader::new(&bad).is_err());
        // Empty archive is valid.
        let empty = ArchiveWriter::new().finish();
        assert_eq!(ArchiveReader::new(&empty).unwrap().len(), 0);
    }
}
