//! Framed streaming compression for unbounded inputs.
//!
//! The paper's instrument use case (LCLS-II, §1) compresses an endless
//! sequence of detector frames; holding the whole sequence in memory is
//! exactly what compression is supposed to avoid. [`FrameWriter`] appends
//! independently-compressed frames to one self-describing container, and
//! [`FrameReader`] iterates or random-accesses them. Frames are
//! independent SZx streams, so any frame can be dropped, decoded, or
//! re-encoded without touching the others.
//!
//! Container layout:
//! ```text
//! magic  b"SZXS"  (4 bytes)
//! frames, each:  [len: u64 LE][SZx stream bytes]
//! ```

use crate::config::SzxConfig;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

const MAGIC: [u8; 4] = *b"SZXS";

/// Appends compressed frames to an in-memory container (wrap your own
/// `Write` sink around [`FrameWriter::as_bytes`] flushes as needed).
pub struct FrameWriter {
    cfg: SzxConfig,
    buf: Vec<u8>,
    frames: usize,
}

impl FrameWriter {
    pub fn new(cfg: SzxConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(FrameWriter { cfg, buf: MAGIC.to_vec(), frames: 0 })
    }

    /// Compress and append one frame. Frames may have different lengths.
    pub fn push<F: SzxFloat>(&mut self, frame: &[F]) -> Result<()> {
        let bytes = crate::compress(frame, &self.cfg)?;
        self.buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&bytes);
        self.frames += 1;
        Ok(())
    }

    /// Frames appended so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The container so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finish and take the container.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads frames back out of a container.
pub struct FrameReader<'a> {
    /// (offset, length) of each frame's SZx stream.
    index: Vec<(usize, usize)>,
    bytes: &'a [u8],
}

impl<'a> FrameReader<'a> {
    /// Parse the container's frame index (headers only).
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < 4 || bytes[0..4] != MAGIC {
            return Err(SzxError::CorruptStream("bad streaming container magic".into()));
        }
        let mut index = Vec::new();
        let mut pos = 4usize;
        while pos < bytes.len() {
            if pos + 8 > bytes.len() {
                return Err(SzxError::CorruptStream("truncated frame length".into()));
            }
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            if pos + len > bytes.len() {
                return Err(SzxError::CorruptStream(format!(
                    "frame at {pos} claims {len} bytes, container has {}",
                    bytes.len() - pos
                )));
            }
            index.push((pos, len));
            pos += len;
        }
        Ok(FrameReader { index, bytes })
    }

    pub fn num_frames(&self) -> usize {
        self.index.len()
    }

    /// Decompress frame `i`.
    pub fn frame<F: SzxFloat>(&self, i: usize) -> Result<Vec<F>> {
        let &(off, len) = self
            .index
            .get(i)
            .ok_or_else(|| SzxError::InvalidConfig(format!("frame {i} out of range")))?;
        crate::decompress(&self.bytes[off..off + len])
    }

    /// Raw compressed bytes of frame `i` (e.g. to forward downstream).
    pub fn frame_bytes(&self, i: usize) -> Option<&'a [u8]> {
        self.index.get(i).map(|&(off, len)| &self.bytes[off..off + len])
    }

    /// Iterate all frames, decompressing lazily.
    pub fn iter<F: SzxFloat>(&self) -> impl Iterator<Item = Result<Vec<F>>> + '_ {
        (0..self.num_frames()).map(move |i| self.frame::<F>(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(k: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i + 37 * k) as f32 * 0.01).sin() * (k + 1) as f32).collect()
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-4)).unwrap();
        let originals: Vec<Vec<f32>> = (0..5).map(|k| frame(k, 1000 + 17 * k)).collect();
        for f in &originals {
            w.push(f).unwrap();
        }
        assert_eq!(w.frames(), 5);
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        assert_eq!(r.num_frames(), 5);
        for (k, orig) in originals.iter().enumerate() {
            let back: Vec<f32> = r.frame(k).unwrap();
            assert_eq!(back.len(), orig.len());
            for (&a, &b) in orig.iter().zip(&back) {
                assert!((a - b).abs() <= 1e-4);
            }
        }
    }

    #[test]
    fn random_access_to_any_frame() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        for k in 0..10 {
            w.push(&frame(k, 500)).unwrap();
        }
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        // Decode only the seventh frame.
        let f7: Vec<f32> = r.frame(7).unwrap();
        assert_eq!(f7.len(), 500);
        assert!(r.frame_bytes(7).unwrap().len() < 500 * 4);
        assert!(r.frame::<f32>(10).is_err());
    }

    #[test]
    fn iterator_visits_every_frame() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        for k in 0..4 {
            w.push(&frame(k, 256)).unwrap();
        }
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        let frames: Vec<Vec<f32>> = r.iter().collect::<Result<_>>().unwrap();
        assert_eq!(frames.len(), 4);
    }

    #[test]
    fn corrupt_containers_error() {
        assert!(FrameReader::new(b"nope").is_err());
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        w.push(&frame(0, 100)).unwrap();
        let bytes = w.into_bytes();
        assert!(FrameReader::new(&bytes[..bytes.len() - 3]).is_err(), "truncated frame");
        assert!(FrameReader::new(&bytes[..7]).is_err(), "truncated length");
        // Empty container is fine — zero frames.
        assert_eq!(FrameReader::new(&MAGIC).unwrap().num_frames(), 0);
    }

    #[test]
    fn mixed_precision_frames() {
        // The container doesn't force one element type; each frame is a
        // self-describing SZx stream.
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-6)).unwrap();
        w.push(&frame(0, 300)).unwrap();
        let doubles: Vec<f64> = (0..200).map(|i| (i as f64 * 0.02).cos()).collect();
        w.push(&doubles).unwrap();
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        assert!(r.frame::<f32>(0).is_ok());
        assert!(r.frame::<f64>(1).is_ok());
        assert!(r.frame::<f32>(1).is_err(), "type mismatch surfaces");
    }
}
