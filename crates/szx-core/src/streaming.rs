//! Framed streaming compression for unbounded inputs.
//!
//! The paper's instrument use case (LCLS-II, §1) compresses an endless
//! sequence of detector frames; holding the whole sequence in memory is
//! exactly what compression is supposed to avoid. [`FrameWriter`] appends
//! independently-compressed frames to one self-describing container, and
//! [`FrameReader`] iterates or random-accesses them. Frames are
//! independent SZx streams, so any frame can be dropped, decoded, or
//! re-encoded without touching the others.
//!
//! Container layout:
//! ```text
//! magic  b"SZXS"  (4 bytes)
//! frames, each:  [len: u64 LE][SZx stream bytes]
//! ```

use core::cell::RefCell;

use crate::config::{KernelSelect, SzxConfig};
use crate::dekernels::DecodeScratch;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

const MAGIC: [u8; 4] = *b"SZXS";

/// Per-frame accounting a [`FrameWriter`] keeps as it goes — the numbers an
/// instrument pipeline watches live (frame latency, sustained ratio). Always
/// maintained: one clock read per frame is noise next to compressing the
/// frame, and it spares callers ad-hoc `Instant` bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameStats {
    /// Frames compressed so far.
    pub frames: u64,
    /// Uncompressed input bytes so far.
    pub raw_bytes: u64,
    /// Compressed stream bytes so far (excluding container framing).
    pub compressed_bytes: u64,
    /// Total wall time spent compressing, in nanoseconds.
    pub compress_ns: u64,
    /// Fastest single frame, in nanoseconds (0 before the first frame).
    pub min_frame_ns: u64,
    /// Slowest single frame, in nanoseconds.
    pub max_frame_ns: u64,
}

impl FrameStats {
    /// Cumulative compression ratio (raw / compressed).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Mean per-frame compression wall time in nanoseconds.
    pub fn mean_frame_ns(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.compress_ns as f64 / self.frames as f64
        }
    }

    /// Sustained compression throughput in GB/s (raw bytes over wall time).
    pub fn throughput_gbps(&self) -> f64 {
        if self.compress_ns == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.compress_ns as f64
        }
    }

    fn record(&mut self, raw: usize, compressed: usize, ns: u64) {
        self.frames += 1;
        self.raw_bytes += raw as u64;
        self.compressed_bytes += compressed as u64;
        self.compress_ns += ns;
        self.min_frame_ns = if self.frames == 1 {
            ns
        } else {
            self.min_frame_ns.min(ns)
        };
        self.max_frame_ns = self.max_frame_ns.max(ns);
    }
}

/// Appends compressed frames to an in-memory container (wrap your own
/// `Write` sink around [`FrameWriter::as_bytes`] flushes as needed).
pub struct FrameWriter {
    cfg: SzxConfig,
    buf: Vec<u8>,
    stats: FrameStats,
}

impl FrameWriter {
    pub fn new(cfg: SzxConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(FrameWriter {
            cfg,
            buf: MAGIC.to_vec(),
            stats: FrameStats::default(),
        })
    }

    /// Compress and append one frame. Frames may have different lengths.
    pub fn push<F: SzxFloat>(&mut self, frame: &[F]) -> Result<()> {
        let _z = szx_telemetry::trace_zone("stream.frame", self.stats.frames);
        let start = std::time::Instant::now();
        let bytes = crate::compress(frame, &self.cfg)?;
        let ns = start.elapsed().as_nanos() as u64;
        self.buf
            .extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&bytes);
        self.stats.record(frame.len() * F::BYTES, bytes.len(), ns);
        if szx_telemetry::enabled() {
            let tel = szx_telemetry::global();
            tel.span_stats("stream.frame").record(ns);
            tel.hist_log2("stream.frame_bytes")
                .record(bytes.len() as u64);
            tel.counter("stream.bytes.raw")
                .add((frame.len() * F::BYTES) as u64);
            tel.counter("stream.bytes.compressed")
                .add(bytes.len() as u64);
        }
        if szx_telemetry::event_sink_installed() {
            use szx_telemetry::Value;
            let raw = (frame.len() * F::BYTES) as u64;
            szx_telemetry::emit_event(
                "frame.compressed",
                &[
                    ("frame", Value::U64(self.stats.frames - 1)),
                    ("raw_bytes", Value::U64(raw)),
                    ("compressed_bytes", Value::U64(bytes.len() as u64)),
                    ("ns", Value::U64(ns)),
                    ("ratio", Value::F64(raw as f64 / bytes.len().max(1) as f64)),
                ],
            );
        }
        Ok(())
    }

    /// Frames appended so far.
    pub fn frames(&self) -> usize {
        self.stats.frames as usize
    }

    /// Cumulative per-frame statistics (latency, sizes, ratio).
    pub fn stats(&self) -> &FrameStats {
        &self.stats
    }

    /// The container so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finish and take the container.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads frames back out of a container.
pub struct FrameReader<'a> {
    /// (start, end) byte range of each frame's SZx stream, validated
    /// against the container length when the index was built.
    index: Vec<(usize, usize)>,
    bytes: &'a [u8],
    kernel: KernelSelect,
    /// Decode-kernel arenas reused across frames (grown once to the
    /// largest block, then allocation-free). `RefCell` keeps `frame` a
    /// `&self` method; the borrow is scoped to one frame decode.
    scratch: RefCell<DecodeScratch>,
}

impl<'a> FrameReader<'a> {
    /// Parse the container's frame index (headers only).
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        // PANIC-OK: the `len() < 4` check short-circuits before the index.
        if bytes.len() < 4 || bytes[0..4] != MAGIC {
            return Err(SzxError::CorruptStream(
                "bad streaming container magic".into(),
            ));
        }
        let mut index = Vec::new();
        let mut pos = 4usize;
        while pos < bytes.len() {
            let Some(hdr_end) = pos.checked_add(8).filter(|&e| e <= bytes.len()) else {
                return Err(SzxError::CorruptStream("truncated frame length".into()));
            };
            // PANIC-OK: `hdr_end <= bytes.len()` established by the
            // checked_add/filter above.
            let len64 = u64::from_le_bytes(bytes[pos..hdr_end].try_into().unwrap());
            pos = hdr_end;
            // Compare in u64: a hostile length near u64::MAX would make
            // `pos + len` wrap on 64-bit targets (overflow panic in debug,
            // silent false pass in release).
            if len64 > (bytes.len() - pos) as u64 {
                return Err(SzxError::CorruptStream(format!(
                    "frame at {pos} claims {len64} bytes, container has {}",
                    bytes.len() - pos
                )));
            }
            let start = pos;
            // ARITH-OK: `len64 <= bytes.len() - pos` was just checked, so
            // the sum stays <= bytes.len() and cannot wrap.
            pos += len64 as usize;
            index.push((start, pos));
        }
        Ok(FrameReader {
            index,
            bytes,
            kernel: KernelSelect::Auto,
            scratch: RefCell::new(DecodeScratch::default()),
        })
    }

    /// Select the decode path (kernel vs scalar — identical outputs).
    pub fn with_kernel(mut self, kernel: KernelSelect) -> Self {
        self.kernel = kernel;
        self
    }

    pub fn num_frames(&self) -> usize {
        self.index.len()
    }

    /// Decompress frame `i`.
    pub fn frame<F: SzxFloat>(&self, i: usize) -> Result<Vec<F>> {
        let &(off, end) = self
            .index
            .get(i)
            .ok_or_else(|| SzxError::InvalidConfig(format!("frame {i} out of range")))?;
        // PANIC-OK: every index range was validated against the container
        // length when `new` built it.
        let stream = &self.bytes[off..end];
        let len = end - off;
        // Clock read only when somebody is listening on the event sink.
        let started = szx_telemetry::event_sink_installed().then(std::time::Instant::now);
        let _total = szx_telemetry::span("decompress.total");
        let index = {
            let _s = szx_telemetry::span("decompress.index");
            crate::decode::StreamIndex::build::<F>(stream)?
        };
        let mut out = vec![F::ZERO; index.header.n];
        crate::decode::decompress_with_index(
            &index,
            &mut out,
            self.kernel.resolve(),
            &mut self.scratch.borrow_mut(),
        )?;
        if let Some(start) = started {
            use szx_telemetry::Value;
            szx_telemetry::emit_event(
                "frame.decoded",
                &[
                    ("frame", Value::U64(i as u64)),
                    ("compressed_bytes", Value::U64(len as u64)),
                    ("raw_bytes", Value::U64((out.len() * F::BYTES) as u64)),
                    ("ns", Value::U64(start.elapsed().as_nanos() as u64)),
                ],
            );
        }
        Ok(out)
    }

    /// Raw compressed bytes of frame `i` (e.g. to forward downstream).
    pub fn frame_bytes(&self, i: usize) -> Option<&'a [u8]> {
        self.index
            .get(i)
            // PANIC-OK: index ranges were bounds-checked by `new`.
            .map(|&(off, end)| &self.bytes[off..end])
    }

    /// Iterate all frames, decompressing lazily.
    pub fn iter<F: SzxFloat>(&self) -> impl Iterator<Item = Result<Vec<F>>> + '_ {
        (0..self.num_frames()).map(move |i| self.frame::<F>(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(k: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i + 37 * k) as f32 * 0.01).sin() * (k + 1) as f32)
            .collect()
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-4)).unwrap();
        let originals: Vec<Vec<f32>> = (0..5).map(|k| frame(k, 1000 + 17 * k)).collect();
        for f in &originals {
            w.push(f).unwrap();
        }
        assert_eq!(w.frames(), 5);
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        assert_eq!(r.num_frames(), 5);
        for (k, orig) in originals.iter().enumerate() {
            let back: Vec<f32> = r.frame(k).unwrap();
            assert_eq!(back.len(), orig.len());
            for (&a, &b) in orig.iter().zip(&back) {
                assert!((a - b).abs() <= 1e-4);
            }
        }
    }

    #[test]
    fn random_access_to_any_frame() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        for k in 0..10 {
            w.push(&frame(k, 500)).unwrap();
        }
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        // Decode only the seventh frame.
        let f7: Vec<f32> = r.frame(7).unwrap();
        assert_eq!(f7.len(), 500);
        assert!(r.frame_bytes(7).unwrap().len() < 500 * 4);
        assert!(r.frame::<f32>(10).is_err());
    }

    #[test]
    fn iterator_visits_every_frame() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        for k in 0..4 {
            w.push(&frame(k, 256)).unwrap();
        }
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        let frames: Vec<Vec<f32>> = r.iter().collect::<Result<_>>().unwrap();
        assert_eq!(frames.len(), 4);
    }

    #[test]
    fn corrupt_containers_error() {
        assert!(FrameReader::new(b"nope").is_err());
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        w.push(&frame(0, 100)).unwrap();
        let bytes = w.into_bytes();
        assert!(
            FrameReader::new(&bytes[..bytes.len() - 3]).is_err(),
            "truncated frame"
        );
        assert!(FrameReader::new(&bytes[..7]).is_err(), "truncated length");
        // Empty container is fine — zero frames.
        assert_eq!(FrameReader::new(&MAGIC).unwrap().num_frames(), 0);
    }

    #[test]
    fn hostile_frame_length_is_rejected_not_overflowed() {
        // Regression (found by corpus replay in a debug build): a frame
        // length near u64::MAX made the old `pos + len` bounds check
        // overflow — panic in debug, silently wrapped-and-passed in
        // release. Must be a clean CorruptStream error.
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = match FrameReader::new(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("hostile frame length accepted"),
        };
        assert!(err.to_string().contains("claims"), "{err}");
    }

    #[test]
    fn frame_stats_track_sizes_and_latency() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        assert_eq!(w.stats().frames, 0);
        assert_eq!(w.stats().ratio(), 0.0);
        for k in 0..3 {
            w.push(&frame(k, 1000)).unwrap();
        }
        let s = *w.stats();
        assert_eq!(s.frames, 3);
        assert_eq!(s.raw_bytes, 3 * 1000 * 4);
        // Container = magic + 3 × (8-byte length + stream).
        assert_eq!(s.compressed_bytes as usize, w.as_bytes().len() - 4 - 3 * 8);
        assert!(s.ratio() > 1.0, "sine frames compress: {}", s.ratio());
        assert!(s.compress_ns > 0);
        assert!(s.min_frame_ns <= s.max_frame_ns);
        assert!(s.mean_frame_ns() * 3.0 <= s.compress_ns as f64 + 1.0);
    }

    #[test]
    fn kernel_and_scalar_frames_agree_bitwise() {
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-4)).unwrap();
        for k in 0..4 {
            w.push(&frame(k, 700 + 31 * k)).unwrap();
        }
        let bytes = w.into_bytes();
        let scalar = FrameReader::new(&bytes)
            .unwrap()
            .with_kernel(crate::KernelSelect::Scalar);
        let kernel = FrameReader::new(&bytes)
            .unwrap()
            .with_kernel(crate::KernelSelect::Kernel);
        for k in 0..4 {
            let a: Vec<f32> = scalar.frame(k).unwrap();
            let b: Vec<f32> = kernel.frame(k).unwrap();
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "frame {k} elem {i}");
            }
        }
    }

    #[test]
    fn mixed_precision_frames() {
        // The container doesn't force one element type; each frame is a
        // self-describing SZx stream.
        let mut w = FrameWriter::new(SzxConfig::absolute(1e-6)).unwrap();
        w.push(&frame(0, 300)).unwrap();
        let doubles: Vec<f64> = (0..200).map(|i| (i as f64 * 0.02).cos()).collect();
        w.push(&doubles).unwrap();
        let bytes = w.into_bytes();
        let r = FrameReader::new(&bytes).unwrap();
        assert!(r.frame::<f32>(0).is_ok());
        assert!(r.frame::<f64>(1).is_ok());
        assert!(r.frame::<f32>(1).is_err(), "type mismatch surfaces");
    }
}
