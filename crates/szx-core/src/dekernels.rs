//! Branch-free, two-pass decode kernels — the decompression counterpart of
//! [`crate::kernels`].
//!
//! The scalar decoder in [`crate::decode`] reconstructs a `ByteAligned`
//! block with one branchy loop carrying *two* serial dependences: the
//! mid-byte cursor (`pos += nb - lead`, so value *i*'s payload address is
//! unknown until value *i−1* is parsed) and the `prev`-word recurrence (the
//! leading bytes of value *i* are copied out of the previous reconstructed
//! word). Both are exactly the serializations the paper's own parallel
//! design attacks: §6.1 prefix-sums the `zsize_array` so every thread knows
//! its block's start address, and cuSZx's device decompressor resolves the
//! leading-byte dependency with an index-propagation (prefix-scan) pass.
//! This module applies the same two devices *within* a block:
//!
//! **Pass 1 — offsets and provenance (integer scans, no float work):**
//! 1. Unpack all 2-bit lead codes in bulk (no per-value bit branch).
//! 2. Prefix-sum `nb − lead` to get every value's exact byte offset into
//!    the mid-byte pool — the §6.1 zsize prefix sum at value granularity.
//!    One comparison of the total against the pool length replaces the
//!    scalar loop's per-value bounds check.
//! 3. Propagate, per byte position `p ∈ {0,1,2}` (a lead code never exceeds
//!    3, so deeper bytes are always self-provided), the index of the last
//!    value whose own payload covers byte `p` — cuSZx's index propagation.
//!    A lead code of 0 restates the whole word and resets all three scans,
//!    which is what breaks the `prev` recurrence: after this pass every
//!    value knows *which* earlier value each inherited byte comes from, so
//!    reconstruction needs no loop-carried word at all.
//!
//! **Pass 2 — reconstruction (unconditional loads, vectorizable sweep):**
//! 4. Copy the pool into a slack-padded arena once, then materialize each
//!    value's *aligned word* with an unconditional overlapping 8-byte load
//!    at its prefix-summed offset (the mirror image of the encoder's
//!    overlapping-store committer — the garbage tail each load drags in is
//!    masked off, never branched on).
//! 5. Assemble `w_i` by masking bytes out of the provider words found in
//!    step 3, then run one independent-per-element
//!    `w << s` → [`SzxFloat::from_word`] → `+ μ` sweep.
//!
//! The kernel is **byte-for-byte equivalent** to the scalar decoder —
//! identical outputs on every valid stream (bit patterns included) and an
//! error on exactly the corrupt streams the scalar loop rejects — which the
//! roundtrip property and corrupt-stream suites assert. The scalar decoder
//! stays behind [`KernelSelect::Scalar`](crate::config::KernelSelect) as
//! the oracle, exactly as the encode kernels did in `kernels.rs`.

use crate::block::{bytes_for, shift_for};
use crate::contracts::contract;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

/// Reusable per-call/per-chunk scratch for the decode kernel. Threaded
/// through `decompress_with_index` (serial: one per call; parallel: one per
/// rayon group, mirroring [`crate::kernels::EncodeScratch`]) so the block
/// loop performs **zero** allocations once the arenas have grown to the
/// largest block.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Clamped lead code per element (unpacked, one byte each).
    /// Fields are `pub(crate)` so the SIMD decoder can share pass 1 (the
    /// integer scan below) and run its own gather-based pass 2.
    pub(crate) leads: Vec<u8>,
    /// Byte offset of each element's mid-bytes inside the pool (prefix sum).
    pub(crate) offsets: Vec<u32>,
    /// Provider index per byte position 0/1/2: `prov[p][i]` is the 1-based
    /// index of the word supplying byte `p` of value `i` (0 = the implicit
    /// all-zero word before the block).
    pub(crate) prov0: Vec<u32>,
    pub(crate) prov1: Vec<u32>,
    pub(crate) prov2: Vec<u32>,
    /// Aligned words, one slot of lead (index 0) for the implicit zero word.
    pub(crate) words: Vec<u64>,
    /// Mid-byte pool copy with 8 bytes of slack so the unconditional
    /// overlapping 8-byte loads never read out of bounds.
    pub(crate) pool: Vec<u8>,
    /// Arena (re)allocation events, for allocation-regression tests.
    pub(crate) grows: u64,
}

impl DecodeScratch {
    /// Grow the arenas to hold a block of `blen` elements. Amortized free:
    /// after the first block of maximal size this never reallocates.
    #[inline]
    pub(crate) fn ensure(&mut self, blen: usize) {
        if self.leads.len() < blen {
            self.grows += 1;
            self.leads.resize(blen, 0);
            self.offsets.resize(blen, 0);
            self.prov0.resize(blen, 0);
            self.prov1.resize(blen, 0);
            self.prov2.resize(blen, 0);
            self.words.resize(blen + 1, 0);
            self.pool.resize(blen * 8 + 8, 0);
        }
        contract!(
            self.words.len() > blen && self.pool.len() >= blen * 8 + 8,
            "decode arenas sized for {blen} elements"
        );
    }

    /// Drain the growth-event count (for telemetry/regression flushes).
    #[inline]
    pub(crate) fn take_grows(&mut self) -> u64 {
        std::mem::take(&mut self.grows)
    }

    /// Bytes currently reserved by the arenas — published as the
    /// `decompress.scratch.arena_bytes` gauge at the telemetry flush.
    pub(crate) fn arena_bytes(&self) -> u64 {
        (self.leads.capacity()
            + self.offsets.capacity() * 4
            + self.prov0.capacity() * 4
            + self.prov1.capacity() * 4
            + self.prov2.capacity() * 4
            + self.words.capacity() * 8
            + self.pool.capacity()) as u64
    }
}

/// Mask selecting big-endian byte `p` of a word, zero past the `nb`-byte
/// significant prefix. Shared with the SIMD decoder's gather pass.
#[inline]
pub(crate) fn byte_mask(p: usize, nb: usize) -> u64 {
    if p < nb {
        0xffu64 << (56 - 8 * p)
    } else {
        0
    }
}

/// Validated view of a non-constant `ByteAligned` block payload: the
/// required length, the bit-exact flag, and the lead-code/body sections.
/// Shared by the kernel and SIMD decoders so both reject exactly the
/// corrupt payloads the scalar loop rejects.
pub(crate) struct NonconstHeader<'a> {
    pub(crate) req_len: u32,
    pub(crate) raw: bool,
    pub(crate) codes: &'a [u8],
    pub(crate) body: &'a [u8],
}

/// Parse and validate the `[R_k: u8][2-bit lead codes]` prefix of a
/// non-constant block payload. Same checks and error messages as the scalar
/// [`crate::decode::decode_nonconstant_block`].
pub(crate) fn parse_nonconstant_header<F: SzxFloat>(
    payload: &[u8],
    blen: usize,
) -> Result<NonconstHeader<'_>> {
    let lead_bytes = (2 * blen).div_ceil(8);
    if payload.len() < 1 + lead_bytes {
        return Err(SzxError::CorruptStream("block payload truncated".into()));
    }
    // PANIC-OK: the length check above guarantees 1 + lead_bytes bytes.
    // CAST: widening u8 -> u32.
    let req_len = payload[0] as u32;
    if req_len < F::SIGN_EXP_BITS || req_len > F::FULL_BITS {
        return Err(SzxError::CorruptStream(format!(
            "required length {req_len} invalid for {}",
            F::NAME
        )));
    }
    Ok(NonconstHeader {
        req_len,
        raw: req_len == F::FULL_BITS,
        // PANIC-OK: same length check; payload.len() >= 1 + lead_bytes.
        codes: &payload[1..1 + lead_bytes],
        body: &payload[1 + lead_bytes..], // PANIC-OK: as above
    })
}

/// Pass 1 — one fused integer scan over the lead codes, producing per
/// value: the clamped lead, the prefix-summed pool offset (the §6.1
/// zsize prefix sum at value granularity), and the provider index per
/// inheritable byte position (cuSZx's index propagation: for each of
/// the at-most-3 positions a lead code can cover, carry forward the
/// 1-based index of the last value whose own payload supplies that
/// byte; a lead of 0 — a fully restated word — resets all three scans,
/// which is what breaks the scalar loop's `prev` recurrence). Selects,
/// not branches; the clamp is the same `.min(nb)` the scalar loop does.
/// Returns the total mid-byte pool length the codes demand. The caller
/// must have run `scratch.ensure(blen)` and `codes` must hold at least
/// `ceil(2 * blen / 8)` bytes. Shared with the SIMD decoder (the scan is
/// inherently serial — three coupled prefix recurrences — so the SIMD
/// path vectorizes pass 2 only).
pub(crate) fn scan_lead_codes(
    codes: &[u8],
    nb8: u8,
    blen: usize,
    scratch: &mut DecodeScratch,
) -> usize {
    // PANIC-OK: ensure(blen) (caller contract) sized every arena to >= blen.
    let leads = &mut scratch.leads[..blen];
    let offsets = &mut scratch.offsets[..blen]; // PANIC-OK: as above
    let prov0 = &mut scratch.prov0[..blen]; // PANIC-OK: as above
    let prov1 = &mut scratch.prov1[..blen]; // PANIC-OK: as above
    let prov2 = &mut scratch.prov2[..blen]; // PANIC-OK: as above
    let mut acc = 0u32;
    let (mut a0, mut a1, mut a2) = (0u32, 0u32, 0u32);
    for i in 0..blen {
        // PANIC-OK: i < blen bounds every arena slice taken above, and
        // i >> 2 < ceil(2 * blen / 8) = codes.len().
        let l = ((codes[i >> 2] >> (6 - 2 * (i & 3))) & 3).min(nb8);
        leads[i] = l; // PANIC-OK: as above
        offsets[i] = acc; // PANIC-OK: as above
                          // CAST: widening u8 -> u32.
        acc += (nb8 - l) as u32;
        // CAST: i < blen <= MAX_BLOCK_SIZE, far below 2^32 - 1.
        let idx = i as u32 + 1;
        a0 = if l == 0 { idx } else { a0 };
        a1 = if l <= 1 { idx } else { a1 };
        a2 = if l <= 2 { idx } else { a2 };
        prov0[i] = a0; // PANIC-OK: as above
        prov1[i] = a1; // PANIC-OK: as above
        prov2[i] = a2; // PANIC-OK: as above
    }
    acc as usize
}

/// Kernel decode of one non-constant `ByteAligned` block payload into `out`
/// (of the block's length). Same validation, same outputs, and same errors
/// as the scalar [`crate::decode::decode_nonconstant_block`].
pub(crate) fn decode_nonconstant_block<F: SzxFloat>(
    payload: &[u8],
    out: &mut [F],
    mu: F,
    scratch: &mut DecodeScratch,
) -> Result<()> {
    let blen = out.len();
    let h = parse_nonconstant_header::<F>(payload, blen)?;
    let (req_len, raw, codes, body) = (h.req_len, h.raw, h.codes, h.body);

    let s = shift_for(req_len);
    let nb = bytes_for(req_len);
    scratch.ensure(blen);

    let nb8 = nb as u8; // CAST: bytes_for() <= 8
    let total = scan_lead_codes(codes, nb8, blen, scratch);
    contract!(
        scratch.offsets.iter().take(blen).is_sorted() && total <= blen * 8,
        "mid-byte offsets must be a monotone prefix sum bounded by 8 per value"
    );
    // One total-length check subsumes the scalar loop's per-value
    // `pos + k > body.len()` test: the per-value needs are non-negative,
    // so any prefix overrun implies a total overrun and vice versa.
    if total > body.len() {
        return Err(SzxError::CorruptStream("mid-byte pool truncated".into()));
    }

    // Pass 2 — one memcpy of the pool into the slack-padded arena, then a
    // single reconstruction sweep. Each value's *aligned word* is an
    // unconditional overlapping 8-byte load at its prefix-summed offset
    // (the mirror image of the encoder's overlapping-store committer): the
    // value's `nb − lead` mid-bytes land at byte positions `lead..nb`, and
    // whatever tail the load dragged in sits past `nb`, where the masks
    // never look. Byte `p` of value `i` then comes from the aligned word
    // of its provider (itself whenever `p ≥ lead_i`; the implicit zero
    // word at index 0 when no value has supplied byte `p` yet); bytes 3
    // and deeper are always self-provided because lead codes top out at 3.
    // Providers are never *later* values, so materializing `words[i + 1]`
    // and assembling `out[i]` fuse into one pass without ordering hazards.
    // PANIC-OK: total <= body.len() was just checked, and ensure() sized
    // the pool to blen * 8 + 8 >= total + 8.
    scratch.pool[..total].copy_from_slice(&body[..total]);
    let m0 = byte_mask(0, nb);
    let m1 = byte_mask(1, nb);
    let m2 = byte_mask(2, nb);
    let top = (!0u64) << (64 - 8 * nb as u32); // CAST: nb <= 8
    let m_rest = top & !(m0 | m1 | m2);
    // PANIC-OK: ensure(blen) sized words to blen + 1 and the per-element
    // arenas to blen; full-range [..] cannot fail.
    let pool = &scratch.pool[..];
    let words = &mut scratch.words[..blen + 1]; // PANIC-OK: as above
    words[0] = 0; // the implicit zero word `prev` starts from -- PANIC-OK: as above
    let leads = &scratch.leads[..blen]; // PANIC-OK: as above
    let offsets = &scratch.offsets[..blen]; // PANIC-OK: as above
    let prov0 = &scratch.prov0[..blen]; // PANIC-OK: as above
    let prov1 = &scratch.prov1[..blen]; // PANIC-OK: as above
    let prov2 = &scratch.prov2[..blen]; // PANIC-OK: as above
    for (i, slot) in out.iter_mut().enumerate() {
        // PANIC-OK: i < blen = out.len() bounds every arena slice; the
        // provider indices are 0..=i + 1 <= blen < words.len().
        let off = offsets[i] as usize;
        contract!(
            off + 8 <= pool.len(),
            "overlapping load at {off} must stay inside the slack-padded pool"
        );
        // PANIC-OK: off + 8 <= total + 8 <= pool.len() (8-byte slack); the
        // unwrap is on an infallible 8-byte slice -> [u8; 8] conversion.
        let loaded = u64::from_be_bytes(pool[off..off + 8].try_into().unwrap());
        // CAST: leads[i] <= nb <= 8. -- PANIC-OK: as above
        let a = loaded >> (8 * leads[i] as u32);
        words[i + 1] = a; // PANIC-OK: as above
        let w = (words[prov0[i] as usize] & m0) // PANIC-OK: as above
            | (words[prov1[i] as usize] & m1) // PANIC-OK: as above
            | (words[prov2[i] as usize] & m2) // PANIC-OK: as above
            | (a & m_rest);
        let v = F::from_word(w << s);
        *slot = if raw { v } else { v + mu };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CommitStrategy, SzxConfig};
    use crate::decode::decode_nonconstant_block as scalar_decode;

    /// Compress one block's worth of data and return the non-constant
    /// payload plus μ (panics if the block classified constant).
    fn one_block_payload(data: &[f32], eb: f64) -> (Vec<u8>, f32) {
        let cfg = SzxConfig::absolute(eb).with_block_size(data.len());
        let bytes = crate::compress(data, &cfg).unwrap();
        let index = crate::decode::StreamIndex::build::<f32>(&bytes).unwrap();
        assert!(index.states.get(0), "fixture block must be non-constant");
        let payload = index.payloads[..index.zsizes[0] as usize].to_vec();
        (payload, index.mu::<f32>(0))
    }

    fn assert_kernel_matches_scalar(data: &[f32], eb: f64) {
        let (payload, mu) = one_block_payload(data, eb);
        let mut scalar_out = vec![0f32; data.len()];
        let mut kernel_out = vec![0f32; data.len()];
        scalar_decode(&payload, &mut scalar_out, mu, CommitStrategy::ByteAligned).unwrap();
        let mut scratch = DecodeScratch::default();
        decode_nonconstant_block(&payload, &mut kernel_out, mu, &mut scratch).unwrap();
        for (i, (a, b)) in scalar_out.iter().zip(&kernel_out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "element {i} differs");
        }
    }

    #[test]
    fn kernel_matches_scalar_on_plain_blocks() {
        // n = 1 is absent: a single finite value always classifies
        // constant (radius 0), so no non-constant payload exists.
        for n in [2usize, 3, 7, 8, 17, 128, 1000] {
            let data: Vec<f32> = (0..n)
                .map(|i| (i as f32 * 0.11).sin() * 5.0 + 0.25)
                .collect();
            assert_kernel_matches_scalar(&data, 1e-3);
        }
    }

    #[test]
    fn kernel_matches_scalar_on_single_element_raw_block() {
        // A lone NaN forces the bit-exact (req_len = FULL_BITS) fallback,
        // the only way a 1-element block is non-constant.
        assert_kernel_matches_scalar(&[f32::NAN], 1e-3);
    }

    #[test]
    fn kernel_matches_scalar_across_required_lengths() {
        // Sweep bounds so req_len (and therefore nb, shift, and lead caps)
        // covers the full spectrum, including the bit-exact fallback.
        let data: Vec<f32> = (0..256)
            .map(|i| ((i * 37 % 97) as f32) * 0.31 - 15.0)
            .collect();
        for eb in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 0.0] {
            assert_kernel_matches_scalar(&data, eb);
        }
    }

    #[test]
    fn kernel_matches_scalar_on_nan_inf_blocks() {
        let mut data: Vec<f32> = (0..128).map(|i| (i as f32 * 0.01).cos()).collect();
        data[3] = f32::NAN;
        data[77] = f32::INFINITY;
        data[78] = f32::NEG_INFINITY;
        assert_kernel_matches_scalar(&data, 1e-3);
    }

    #[test]
    fn kernel_matches_scalar_on_high_dedup_blocks() {
        // Slowly varying data maximizes nonzero lead codes, exercising the
        // provider scans; a few restarts punctuate the chains.
        let mut data: Vec<f32> = (0..512).map(|i| 100.0 + i as f32 * 1e-4).collect();
        data[100] = -250.0;
        data[300] = 1e20;
        assert_kernel_matches_scalar(&data, 1e-6);
    }

    #[test]
    fn truncated_pool_is_an_error_not_a_panic() {
        let data: Vec<f32> = (0..128).map(|i| (i as f32 * 0.3).sin() * 9.0).collect();
        let (payload, mu) = one_block_payload(&data, 1e-4);
        let mut scratch = DecodeScratch::default();
        let mut out = vec![0f32; data.len()];
        for cut in 0..payload.len() {
            let r = decode_nonconstant_block(&payload[..cut], &mut out, mu, &mut scratch);
            let s = scalar_decode(
                &payload[..cut],
                &mut out,
                mu,
                crate::config::CommitStrategy::ByteAligned,
            );
            assert_eq!(r.is_err(), s.is_err(), "cut at {cut}");
            assert!(r.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn scratch_grows_once_per_high_water_mark() {
        let mut s = DecodeScratch::default();
        s.ensure(128);
        s.ensure(64);
        s.ensure(128);
        assert_eq!(s.grows, 1);
        s.ensure(4096);
        assert_eq!(s.take_grows(), 2);
        assert!(s.pool.len() >= 4096 * 8 + 8);
        assert_eq!(s.words.len(), 4096 + 1);
    }
}
