//! Abstraction over the IEEE-754 element types SZx compresses.
//!
//! The codec manipulates values through a *high-aligned* 64-bit word: the raw
//! bit pattern of an `f32` is shifted into the top 32 bits of a `u64`, while
//! an `f64` occupies the whole word. High alignment makes every bit-level
//! operation of the algorithm — the right shift of §5.1, the XOR
//! leading-byte comparison, and the big-endian byte extraction of the
//! mid-bytes — identical for both element types, so the encoder and decoder
//! are written once, generically.

/// Sealed marker so downstream crates cannot add element types that the
/// stream format does not know how to tag.
mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// An IEEE-754 element type compressible by SZx (`f32` or `f64`).
pub trait SzxFloat:
    Copy
    + PartialOrd
    + core::ops::Sub<Output = Self>
    + core::ops::Add<Output = Self>
    + core::fmt::Debug
    + Send
    + Sync
    + sealed::Sealed
    + 'static
{
    /// Total bits in the type: 32 or 64. `fullbits(type)` in Formula (4).
    const FULL_BITS: u32;
    /// Bytes per element.
    const BYTES: usize;
    /// Sign bit plus exponent field width: 9 for `f32`, 12 for `f64`.
    /// These bits are always part of the "required" prefix of a normalized
    /// value because the truncation analysis only discards mantissa bits.
    const SIGN_EXP_BITS: u32;
    /// IEEE exponent bias: 127 / 1023.
    const EXP_BIAS: i32;
    /// Mantissa field width: 23 / 52.
    const MANT_BITS: u32;
    /// Tag byte stored in the stream header.
    const DTYPE_CODE: u8;
    /// Human-readable name used in error messages.
    const NAME: &'static str;
    /// Additive identity.
    const ZERO: Self;

    /// Raw bit pattern, shifted so the sign bit lands in bit 63 of the word.
    fn to_word(self) -> u64;
    /// Inverse of [`to_word`](Self::to_word).
    fn from_word(word: u64) -> Self;
    /// Unbiased binary exponent extracted directly from the bit pattern —
    /// the `p(x)` of Formula (4). Zero and subnormals report `-EXP_BIAS`;
    /// infinities and NaN report `EXP_BIAS + 1`, which drives the required
    /// length to `FULL_BITS` and therefore falls back to bit-exact storage.
    fn exponent(self) -> i32;
    /// `(a + b) * 0.5` — the only multiplication in the whole compressor,
    /// executed once per block exactly as the reference implementation does.
    fn half_sum(a: Self, b: Self) -> Self;
    /// NaN test (generic code can't use the inherent `is_nan`).
    fn is_nan(self) -> bool;
    /// Lossless widening for metrics and error-bound math.
    fn to_f64(self) -> f64;
    /// Narrowing conversion used when resolving relative error bounds.
    fn from_f64(x: f64) -> Self;
    /// Serialize one element little-endian into `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Deserialize one element little-endian from the front of `src`.
    /// Caller guarantees `src.len() >= Self::BYTES`.
    fn read_le(src: &[u8]) -> Self;

    /// View as an `f32` slice when `Self` is `f32` — the zero-unsafe
    /// downcast the SIMD dispatch layer uses to route generic calls to
    /// concretely typed intrinsic kernels. `None` for `f64`.
    fn as_f32s(data: &[Self]) -> Option<&[f32]>;
    /// Mutable variant of [`as_f32s`](Self::as_f32s).
    fn as_f32s_mut(data: &mut [Self]) -> Option<&mut [f32]>;
    /// View as an `f64` slice when `Self` is `f64`. `None` for `f32`.
    fn as_f64s(data: &[Self]) -> Option<&[f64]>;
    /// Mutable variant of [`as_f64s`](Self::as_f64s).
    fn as_f64s_mut(data: &mut [Self]) -> Option<&mut [f64]>;
}

impl SzxFloat for f32 {
    const FULL_BITS: u32 = 32;
    const BYTES: usize = 4;
    const SIGN_EXP_BITS: u32 = 9;
    const EXP_BIAS: i32 = 127;
    const MANT_BITS: u32 = 23;
    const DTYPE_CODE: u8 = 0;
    const NAME: &'static str = "f32";
    const ZERO: Self = 0.0;

    #[inline(always)]
    fn to_word(self) -> u64 {
        (self.to_bits() as u64) << 32
    }

    #[inline(always)]
    fn from_word(word: u64) -> Self {
        f32::from_bits((word >> 32) as u32)
    }

    #[inline(always)]
    fn exponent(self) -> i32 {
        let biased = ((self.to_bits() >> 23) & 0xff) as i32;
        biased - Self::EXP_BIAS
    }

    #[inline(always)]
    fn half_sum(a: Self, b: Self) -> Self {
        (a + b) * 0.5
    }

    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }

    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_le(src: &[u8]) -> Self {
        f32::from_le_bytes([src[0], src[1], src[2], src[3]])
    }

    #[inline(always)]
    fn as_f32s(data: &[Self]) -> Option<&[f32]> {
        Some(data)
    }

    #[inline(always)]
    fn as_f32s_mut(data: &mut [Self]) -> Option<&mut [f32]> {
        Some(data)
    }

    #[inline(always)]
    fn as_f64s(_data: &[Self]) -> Option<&[f64]> {
        None
    }

    #[inline(always)]
    fn as_f64s_mut(_data: &mut [Self]) -> Option<&mut [f64]> {
        None
    }
}

impl SzxFloat for f64 {
    const FULL_BITS: u32 = 64;
    const BYTES: usize = 8;
    const SIGN_EXP_BITS: u32 = 12;
    const EXP_BIAS: i32 = 1023;
    const MANT_BITS: u32 = 52;
    const DTYPE_CODE: u8 = 1;
    const NAME: &'static str = "f64";
    const ZERO: Self = 0.0;

    #[inline(always)]
    fn to_word(self) -> u64 {
        self.to_bits()
    }

    #[inline(always)]
    fn from_word(word: u64) -> Self {
        f64::from_bits(word)
    }

    #[inline(always)]
    fn exponent(self) -> i32 {
        let biased = ((self.to_bits() >> 52) & 0x7ff) as i32;
        biased - Self::EXP_BIAS
    }

    #[inline(always)]
    fn half_sum(a: Self, b: Self) -> Self {
        (a + b) * 0.5
    }

    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_le(src: &[u8]) -> Self {
        f64::from_le_bytes([
            src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7],
        ])
    }

    #[inline(always)]
    fn as_f32s(_data: &[Self]) -> Option<&[f32]> {
        None
    }

    #[inline(always)]
    fn as_f32s_mut(_data: &mut [Self]) -> Option<&mut [f32]> {
        None
    }

    #[inline(always)]
    fn as_f64s(data: &[Self]) -> Option<&[f64]> {
        Some(data)
    }

    #[inline(always)]
    fn as_f64s_mut(data: &mut [Self]) -> Option<&mut [f64]> {
        Some(data)
    }
}

/// Unbiased exponent of an `f64`, used for the error bound `e` regardless of
/// the element type being compressed (`p(e)` in Formula (4)).
#[inline]
pub fn f64_exponent(x: f64) -> i32 {
    x.exponent()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_word_roundtrip() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            3.4e38,
            1e-44,
            f32::INFINITY,
            f32::MIN_POSITIVE,
        ] {
            assert_eq!(f32::from_word(v.to_word()).to_bits(), v.to_bits());
        }
        let nan = f32::from_bits(0x7fc0_1234);
        assert_eq!(f32::from_word(nan.to_word()).to_bits(), nan.to_bits());
    }

    #[test]
    fn f64_word_roundtrip() {
        for v in [0.0f64, -0.0, 1.0, -1.5, 1e300, 5e-324, f64::INFINITY] {
            assert_eq!(f64::from_word(v.to_word()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_word_is_high_aligned() {
        assert_eq!(1.0f32.to_word() >> 32, 1.0f32.to_bits() as u64);
        assert_eq!(1.0f32.to_word() & 0xffff_ffff, 0);
        // The sign bit of a negative value must land in bit 63.
        assert_eq!((-1.0f32).to_word() >> 63, 1);
        assert_eq!((-1.0f64).to_word() >> 63, 1);
    }

    #[test]
    fn exponent_matches_log2_for_normals() {
        for (v, e) in [
            (1.0f32, 0),
            (2.0, 1),
            (3.99, 1),
            (0.5, -1),
            (0.0009765625, -10),
        ] {
            assert_eq!(v.exponent(), e, "exponent of {v}");
            assert_eq!((-v).exponent(), e, "exponent of -{v}");
        }
        for (v, e) in [(1.0f64, 0), (1024.0, 10), (1e-3, -10), (0.75, -1)] {
            assert_eq!(SzxFloat::exponent(v), e, "exponent of {v}");
        }
    }

    #[test]
    fn exponent_edge_cases() {
        // Zero and subnormals collapse to -bias: conservative (smaller than the
        // true magnitude), which only ever *increases* the stored precision.
        assert_eq!(0.0f32.exponent(), -127);
        assert_eq!(f32::from_bits(1).exponent(), -127); // smallest subnormal
        assert_eq!(0.0f64.exponent(), -1023);
        // Non-finite values saturate, forcing bit-exact block storage.
        assert_eq!(f32::INFINITY.exponent(), 128);
        assert_eq!(f32::NAN.exponent(), 128);
        assert_eq!(f64::INFINITY.exponent(), 1024);
    }

    #[test]
    fn half_sum_is_midpoint() {
        assert_eq!(f32::half_sum(2.0, 4.0), 3.0);
        assert_eq!(f64::half_sum(-1.0, 1.0), 0.0);
    }

    #[test]
    fn le_io_roundtrip() {
        let mut buf = Vec::new();
        12.5f32.write_le(&mut buf);
        (-7.25f64).write_le(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(f32::read_le(&buf[0..4]), 12.5);
        assert_eq!(f64::read_le(&buf[4..12]), -7.25);
    }

    #[test]
    fn f64_exponent_of_error_bounds() {
        assert_eq!(f64_exponent(1e-3), -10);
        assert_eq!(f64_exponent(1e-4), -14);
        assert_eq!(f64_exponent(0.5), -1);
        assert_eq!(f64_exponent(1.0), 0);
    }
}
