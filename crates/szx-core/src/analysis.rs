//! Introspection helpers used by the paper's design-space studies:
//! block classification statistics (§5.3) and the space-overhead accounting
//! of the bitwise right-shift optimization (§5.2, Formula 6 / Figure 6).

use crate::block::{bytes_for, required_length, shift_for, BlockStats};
use crate::config::SzxConfig;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

/// How a dataset's blocks classify under a given configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReport {
    /// Total number of blocks.
    pub n_blocks: usize,
    /// Blocks representable by `μ` alone.
    pub n_constant: usize,
    /// Histogram of required lengths over non-constant blocks
    /// (index = `R_k`, 0..=64).
    pub req_len_histogram: Vec<u64>,
    /// The absolute error bound the report was computed for.
    pub eb: f64,
}

impl BlockReport {
    /// Fraction of constant blocks — the paper's "impact factor A/B" driver.
    pub fn constant_fraction(&self) -> f64 {
        if self.n_blocks == 0 {
            0.0
        } else {
            self.n_constant as f64 / self.n_blocks as f64
        }
    }

    /// Mean required length over non-constant blocks.
    pub fn mean_req_len(&self) -> f64 {
        let (sum, count) = self
            .req_len_histogram
            .iter()
            .enumerate()
            .fold((0u64, 0u64), |(s, c), (r, &n)| (s + r as u64 * n, c + n));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// Classify every block of `data` without producing a stream.
pub fn classify<F: SzxFloat>(data: &[F], cfg: &SzxConfig) -> Result<BlockReport> {
    cfg.validate()?;
    if data.is_empty() {
        return Err(SzxError::EmptyInput);
    }
    let eb = cfg.error_bound.resolve(data);
    let mut report = BlockReport {
        n_blocks: 0,
        n_constant: 0,
        req_len_histogram: vec![0; 65],
        eb,
    };
    // The kernel scan is bit-identical to `BlockStats::compute` (property
    // tested), so classification always matches what the compressor does
    // regardless of the configured `KernelSelect`.
    for block in data.chunks(cfg.block_size) {
        let stats = crate::kernels::block_stats(block);
        report.n_blocks += 1;
        if stats.is_constant_for(eb, block) {
            report.n_constant += 1;
        } else {
            let r = required_length::<F>(stats.radius, eb) as usize;
            report.req_len_histogram[r] += 1;
        }
    }
    Ok(report)
}

/// Bit-level accounting behind Figure 6: how many *necessary bits* each
/// commit strategy stores for the same dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftOverhead {
    /// Σ (R_k − L_i) over non-constant values — the necessary bits of
    /// Solutions A/B (leading bytes counted on the unshifted word).
    pub bits_exact: u64,
    /// Σ (R_k + s − L'_i) — the bits Solution C actually stores (leading
    /// bytes counted on the shifted word).
    pub bits_byte_aligned: u64,
    /// Size in bytes of the real Solution C compressed stream, the
    /// denominator of Formula (6).
    pub compressed_len: usize,
    /// Elements in the dataset.
    pub n: usize,
}

impl ShiftOverhead {
    /// Formula (6): increased storage ÷ compressed size. May be negative —
    /// the right shift sometimes *increases* the number of identical
    /// leading bytes enough to win outright.
    pub fn overhead_ratio(&self) -> f64 {
        let delta = self.bits_byte_aligned as f64 - self.bits_exact as f64;
        delta / 8.0 / self.compressed_len as f64
    }
}

/// Measure the space overhead of the §5.1 right-shift trick on `data`.
pub fn shift_overhead<F: SzxFloat>(data: &[F], cfg: &SzxConfig) -> Result<ShiftOverhead> {
    cfg.validate()?;
    if data.is_empty() {
        return Err(SzxError::EmptyInput);
    }
    let eb = cfg.error_bound.resolve(data);
    let mut bits_exact = 0u64;
    let mut bits_byte_aligned = 0u64;

    for block in data.chunks(cfg.block_size) {
        let stats = BlockStats::compute(block);
        if stats.is_constant_for(eb, block) {
            continue;
        }
        let req_len = required_length::<F>(stats.radius, eb);
        let raw = req_len == F::FULL_BITS;
        let mu = if raw { F::ZERO } else { stats.mu };
        let s = shift_for(req_len);
        let nb = bytes_for(req_len);
        let lead_cap_c = nb.min(3);
        let lead_cap_ab = (req_len / 8).min(3) as usize;

        let mut prev_shifted = 0u64;
        let mut prev_plain = 0u64;
        for &d in block {
            let v = if raw { d } else { d - mu };
            let w = v.to_word();

            let ws = w >> s;
            let lead_c = ((ws ^ prev_shifted).leading_zeros() / 8).min(lead_cap_c as u32);
            bits_byte_aligned += (req_len + s) as u64 - 8 * lead_c as u64;
            prev_shifted = ws;

            let lead_ab = ((w ^ prev_plain).leading_zeros() / 8).min(lead_cap_ab as u32);
            bits_exact += req_len as u64 - 8 * lead_ab as u64;
            prev_plain = w;
        }
    }

    let compressed_len = crate::compress(data, cfg)?.len();
    Ok(ShiftOverhead {
        bits_exact,
        bits_byte_aligned,
        compressed_len,
        n: data.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommitStrategy;

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.002).sin() * 4.0 + (i as f32 * 0.09).cos() * 0.01)
            .collect()
    }

    #[test]
    fn classify_counts_blocks() {
        fn rand_ish(x: f32) -> f64 {
            ((x as f64 * 12.9898).sin() * 43758.5453).fract()
        }
        let data: Vec<f32> = (0..256)
            .map(|i| {
                if i < 128 {
                    1.0
                } else {
                    rand_ish(i as f32) as f32
                }
            })
            .collect();
        let report = classify(&data, &SzxConfig::absolute(1e-3).with_block_size(128)).unwrap();
        assert_eq!(report.n_blocks, 2);
        assert_eq!(report.n_constant, 1);
        assert_eq!(report.req_len_histogram.iter().sum::<u64>(), 1);
        assert!((report.constant_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classify_all_constant() {
        let data = vec![2.5f32; 1000];
        let report = classify(&data, &SzxConfig::absolute(0.0)).unwrap();
        assert_eq!(report.n_constant, report.n_blocks);
        assert_eq!(report.mean_req_len(), 0.0);
    }

    #[test]
    fn overhead_is_small_and_bits_exact_not_larger() {
        let data = field(100_000);
        for eb in [1e-3, 1e-4, 1e-5] {
            let cfg = SzxConfig::absolute(eb);
            let o = shift_overhead(&data, &cfg).unwrap();
            // Solution C never stores fewer raw bits than the exact count
            // minus what extra leading bytes can absorb; the paper reports
            // |overhead| <= ~12% of the compressed size.
            assert!(
                o.overhead_ratio() < 0.15,
                "eb={eb}: overhead {} too large",
                o.overhead_ratio()
            );
            assert!(o.overhead_ratio() > -0.15);
            assert!(o.compressed_len > 0);
        }
    }

    #[test]
    fn overhead_matches_real_stream_sizes() {
        // The bit accounting must agree with the actual streams produced by
        // Solutions B and C: C_size - B_size ≈ (bits_byte_aligned -
        // bits_exact)/8, up to per-value rounding in B's residual pool.
        let data = field(50_000);
        let cfg_c = SzxConfig::absolute(1e-4);
        let cfg_b = cfg_c.with_strategy(CommitStrategy::BytePlusResidual);
        let o = shift_overhead(&data, &cfg_c).unwrap();
        let size_c = crate::compress(&data, &cfg_c).unwrap().len() as f64;
        let size_b = crate::compress(&data, &cfg_b).unwrap().len() as f64;
        let predicted_delta = (o.bits_byte_aligned as f64 - o.bits_exact as f64) / 8.0;
        let actual_delta = size_c - size_b;
        // B pads each block's residual pool to a byte, so allow one byte per
        // block of slack plus 5%.
        let slack = (data.len() / 128) as f64 + 0.05 * size_c;
        assert!(
            (predicted_delta - actual_delta).abs() <= slack,
            "predicted {predicted_delta}, actual {actual_delta}, slack {slack}"
        );
    }

    #[test]
    fn empty_and_invalid_inputs_error() {
        assert!(classify::<f32>(&[], &SzxConfig::absolute(1e-3)).is_err());
        assert!(shift_overhead::<f32>(&[], &SzxConfig::absolute(1e-3)).is_err());
        let bad = SzxConfig::absolute(1e-3).with_block_size(0);
        assert!(classify(&[1.0f32], &bad).is_err());
    }
}
