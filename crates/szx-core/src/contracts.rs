//! Debug-only contract checks for the kernel hot paths.
//!
//! [`contract!`](crate::contracts::contract) is an `assert!` with a
//! uniform "contract violated:" prefix that exists only under
//! `debug_assertions` — the release expansion is an *empty block*, not a
//! `debug_assert!`'s dead `if false` branch, so the macro cannot perturb
//! MIR inlining cost estimates inside the branch-free kernels (the
//! observatory's −5% throughput gate is the regression test for that).
//! Contracts state the invariants the kernels' `// PANIC-OK:` proofs rely
//! on: scratch-arena sizing, mid-byte pool bounds, and prefix-sum
//! monotonicity. Keep contract *expressions* free of slice indexing —
//! `szx-audit` scans them like any other decode-path code.

/// Assert a kernel invariant in debug builds; expands to nothing in release.
macro_rules! contract {
    ($cond:expr, $($arg:tt)+) => {{
        #[cfg(debug_assertions)]
        {
            assert!($cond, "contract violated: {}", format_args!($($arg)+));
        }
    }};
}
pub(crate) use contract;

#[cfg(test)]
mod tests {
    #[test]
    fn contract_passes_when_true() {
        contract!(1 + 1 == 2, "arithmetic holds");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    fn contract_panics_with_prefix_in_debug() {
        let err = std::panic::catch_unwind(|| {
            contract!(false, "pool needs {} bytes", 42);
        })
        .expect_err("contract must fire under debug_assertions");
        let msg = match err.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => err
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .unwrap_or_default(),
        };
        assert!(
            msg.contains("contract violated: pool needs 42 bytes"),
            "{msg}"
        );
    }
}
