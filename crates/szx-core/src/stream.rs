//! On-disk/in-memory layout of an SZx compressed stream.
//!
//! ```text
//! Header (36 bytes)
//!   0..4    magic  b"SZXR"
//!   4       format version (1)
//!   5       element-type code (0 = f32, 1 = f64)
//!   6       commit-strategy code (0 = A/BitPack, 1 = B/BytePlusResidual, 2 = C/ByteAligned)
//!   7       reserved (0)
//!   8..12   block_size   u32 LE
//!   12..20  n (elements) u64 LE
//!   20..28  absolute error bound f64 LE (relative bounds are resolved at
//!           compression time; the stream always carries the absolute bound)
//!   28..36  number of non-constant blocks u64 LE
//! Sections (in order)
//!   state bits    ceil(nblocks/8) bytes, 1 bit per block, MSB-first
//!                 (0 = constant, 1 = non-constant)
//!   μ array       nblocks elements LE (constant blocks: the representative
//!                 value; non-constant: the normalization offset; bit-exact
//!                 blocks: 0.0)
//!   zsize array   one u16 LE per non-constant block: its payload length —
//!                 this is what makes block-parallel decompression possible
//!   payloads      concatenated non-constant block payloads; each starts
//!                 with its required length R_k as one byte (see encode.rs)
//! ```

use crate::config::{CommitStrategy, MAX_BLOCK_SIZE};
use crate::cursor::Cursor;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;

pub(crate) const MAGIC: [u8; 4] = *b"SZXR";
pub(crate) const VERSION: u8 = 1;
/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 36;

/// Parsed stream header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Header {
    pub dtype: u8,
    pub strategy: CommitStrategy,
    pub block_size: usize,
    pub n: usize,
    pub eb: f64,
    pub n_nonconstant: usize,
}

impl Header {
    /// Number of blocks the stream describes. Written to avoid the
    /// `n + bs - 1` overflow a forged header could trigger.
    pub fn num_blocks(&self) -> usize {
        // ARITH-OK: `n / block_size < usize::MAX` and the rounding term is
        // 0 or 1, so the sum cannot wrap for any forged header value.
        self.n / self.block_size + usize::from(!self.n.is_multiple_of(self.block_size))
    }

    /// Serialize the header (public for alternative stream producers, e.g.
    /// the GPU execution model, which must emit byte-identical streams).
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.dtype);
        out.push(self.strategy.code());
        out.push(0);
        out.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&self.eb.to_le_bytes());
        out.extend_from_slice(&(self.n_nonconstant as u64).to_le_bytes());
    }

    pub(crate) fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(SzxError::CorruptStream(format!(
                "stream shorter than header: {} < {HEADER_LEN}",
                bytes.len()
            )));
        }
        // The length check above makes every cursor read below succeed; the
        // fallback error is unreachable but keeps the path panic-free even
        // if the layout constants drift.
        let mut c = Cursor::new(bytes);
        let trunc = || SzxError::CorruptStream("stream shorter than header".into());
        if c.take(4).ok_or_else(trunc)? != MAGIC {
            return Err(SzxError::CorruptStream("bad magic".into()));
        }
        let version = c.u8().ok_or_else(trunc)?;
        if version != VERSION {
            return Err(SzxError::CorruptStream(format!(
                "unsupported version {version}"
            )));
        }
        let dtype = c.u8().ok_or_else(trunc)?;
        if dtype > 1 {
            return Err(SzxError::CorruptStream(format!(
                "unknown dtype code {dtype}"
            )));
        }
        let strategy = CommitStrategy::from_code(c.u8().ok_or_else(trunc)?)?;
        let _reserved = c.u8().ok_or_else(trunc)?;
        let block_size = c.u32_le().ok_or_else(trunc)? as usize;
        if block_size == 0 || block_size > MAX_BLOCK_SIZE {
            return Err(SzxError::CorruptStream(format!(
                "block size {block_size} out of range"
            )));
        }
        let n = c.u64_le().ok_or_else(trunc)? as usize;
        if n == 0 {
            return Err(SzxError::CorruptStream(
                "stream declares zero elements".into(),
            ));
        }
        let eb = c.f64_le().ok_or_else(trunc)?;
        if !eb.is_finite() || eb < 0.0 {
            return Err(SzxError::CorruptStream(format!("bad error bound {eb}")));
        }
        let n_nonconstant = c.u64_le().ok_or_else(trunc)? as usize;
        let header = Header {
            dtype,
            strategy,
            block_size,
            n,
            eb,
            n_nonconstant,
        };
        if n_nonconstant > header.num_blocks() {
            return Err(SzxError::CorruptStream(format!(
                "{n_nonconstant} non-constant blocks exceeds {} total",
                header.num_blocks()
            )));
        }
        Ok(header)
    }

    pub(crate) fn expect_dtype<F: SzxFloat>(&self) -> Result<()> {
        if self.dtype != F::DTYPE_CODE {
            let found = if self.dtype == 0 { "f32" } else { "f64" };
            return Err(SzxError::TypeMismatch {
                expected: F::NAME,
                found,
            });
        }
        Ok(())
    }
}

/// Offsets of the variable-length sections, derived from the header.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SectionLayout {
    pub state_off: usize,
    pub mu_off: usize,
    pub zsize_off: usize,
    pub payload_off: usize,
}

impl SectionLayout {
    /// Checked layout computation: a forged header can declare element
    /// counts whose section offsets overflow `usize`; that must surface as
    /// a corrupt-stream error, not an arithmetic panic or a huge allocation.
    pub(crate) fn for_header<F: SzxFloat>(h: &Header) -> Result<SectionLayout> {
        let nblocks = h.num_blocks();
        let state_off = HEADER_LEN;
        let overflow = || SzxError::CorruptStream("section offsets overflow".into());
        let mu_off = state_off
            .checked_add(nblocks / 8 + usize::from(!nblocks.is_multiple_of(8)))
            .ok_or_else(overflow)?;
        let zsize_off = nblocks
            .checked_mul(F::BYTES)
            .and_then(|b| mu_off.checked_add(b))
            .ok_or_else(overflow)?;
        let payload_off = h
            .n_nonconstant
            .checked_mul(2)
            .and_then(|b| zsize_off.checked_add(b))
            .ok_or_else(overflow)?;
        Ok(SectionLayout {
            state_off,
            mu_off,
            zsize_off,
            payload_off,
        })
    }
}

/// Peek at a compressed stream without decompressing it.
pub fn inspect(bytes: &[u8]) -> Result<Header> {
    Header::parse(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            dtype: 0,
            strategy: CommitStrategy::ByteAligned,
            block_size: 128,
            n: 1000,
            eb: 1e-3,
            n_nonconstant: 3,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Header::parse(&buf).unwrap(), h);
    }

    #[test]
    fn num_blocks_rounds_up() {
        let mut h = sample_header();
        assert_eq!(h.num_blocks(), 8); // 1000 / 128 = 7.8125
        h.n = 1024;
        assert_eq!(h.num_blocks(), 8);
        h.n = 1;
        assert_eq!(h.num_blocks(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write(&mut buf);

        assert!(Header::parse(&buf[..10]).is_err(), "truncated");

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(Header::parse(&bad).is_err(), "magic");

        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(Header::parse(&bad).is_err(), "version");

        let mut bad = buf.clone();
        bad[5] = 3;
        assert!(Header::parse(&bad).is_err(), "dtype");

        let mut bad = buf.clone();
        bad[6] = 9;
        assert!(Header::parse(&bad).is_err(), "strategy");

        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(Header::parse(&bad).is_err(), "zero block size");

        let mut bad = buf.clone();
        bad[12..20].copy_from_slice(&0u64.to_le_bytes());
        assert!(Header::parse(&bad).is_err(), "zero elements");

        let mut bad = buf.clone();
        bad[20..28].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(Header::parse(&bad).is_err(), "NaN bound");

        let mut bad = buf;
        bad[28..36].copy_from_slice(&10_000u64.to_le_bytes());
        assert!(Header::parse(&bad).is_err(), "too many non-constant blocks");
    }

    #[test]
    fn dtype_check() {
        let h = sample_header();
        assert!(h.expect_dtype::<f32>().is_ok());
        let err = h.expect_dtype::<f64>().unwrap_err();
        assert_eq!(
            err,
            SzxError::TypeMismatch {
                expected: "f64",
                found: "f32"
            }
        );
    }

    #[test]
    fn layout_offsets() {
        let h = sample_header(); // 8 blocks, 3 non-constant
        let l = SectionLayout::for_header::<f32>(&h).unwrap();
        assert_eq!(l.state_off, 36);
        assert_eq!(l.mu_off, 37); // 8 blocks -> 1 state byte
        assert_eq!(l.zsize_off, 37 + 32); // 8 * 4-byte μ
        assert_eq!(l.payload_off, 69 + 6); // 3 * u16
    }
}
