//! The SZx decompressor (serial path; the parallel path reuses the
//! per-block routine through `pub(crate)` visibility).

use crate::bitio::{BitReader, StateBits};
use crate::block::{bytes_for, shift_for};
use crate::config::{CommitStrategy, KernelPath, KernelSelect};
use crate::dekernels::DecodeScratch;
use crate::error::{Result, SzxError};
use crate::float::SzxFloat;
use crate::stream::{Header, SectionLayout};

/// Everything needed to locate each block inside a compressed stream.
/// Building it costs one pass over the state bits and the zsize array —
/// the prefix sum of §6.1 that unlocks block-parallel decompression.
#[derive(Debug)]
pub(crate) struct StreamIndex<'a> {
    pub header: Header,
    /// Per block: `true` = non-constant. A borrowed view straight into the
    /// stream's state-bit section — building the index allocates nothing
    /// per block for the states.
    pub states: StateBits<'a>,
    /// Per block: μ (normalization offset / constant value) as raw LE bytes
    /// region; decoded lazily per block.
    pub mu_bytes: &'a [u8],
    /// Per non-constant block: byte offset of its payload inside `payloads`.
    pub payload_offsets: Vec<usize>,
    /// Per non-constant block: payload length.
    pub zsizes: Vec<u16>,
    /// The payload section.
    pub payloads: &'a [u8],
}

impl<'a> StreamIndex<'a> {
    pub(crate) fn build<F: SzxFloat>(bytes: &'a [u8]) -> Result<Self> {
        let header = Header::parse(bytes)?;
        header.expect_dtype::<F>()?;
        let layout = SectionLayout::for_header::<F>(&header)?;
        if bytes.len() < layout.payload_off {
            return Err(SzxError::CorruptStream(format!(
                "sections end at {} but stream holds {}",
                layout.payload_off,
                bytes.len()
            )));
        }
        let nblocks = header.num_blocks();
        // The payload_off length check above guarantees every section range
        // below is in bounds; `get` keeps this path panic-free regardless.
        let truncated = || SzxError::CorruptStream("section out of bounds".into());
        let state_bytes = bytes
            .get(layout.state_off..layout.mu_off)
            .ok_or_else(truncated)?;
        let states = StateBits::new(state_bytes, nblocks)
            .ok_or_else(|| SzxError::CorruptStream("state bit section truncated".into()))?;

        let n_nonconstant = states.count_ones();
        if n_nonconstant != header.n_nonconstant {
            return Err(SzxError::CorruptStream(format!(
                "header declares {} non-constant blocks, state bits say {}",
                header.n_nonconstant, n_nonconstant
            )));
        }

        let mu_bytes = bytes
            .get(layout.mu_off..layout.zsize_off)
            .ok_or_else(truncated)?;

        let zsize_bytes = bytes
            .get(layout.zsize_off..layout.payload_off)
            .ok_or_else(truncated)?;
        let mut zsizes = Vec::with_capacity(n_nonconstant);
        let mut payload_offsets = Vec::with_capacity(n_nonconstant);
        let mut acc = 0usize;
        // The layout gives zsize_bytes exactly 2 * n_nonconstant bytes.
        for pair in zsize_bytes.chunks_exact(2) {
            let z = match pair {
                [a, b] => u16::from_le_bytes([*a, *b]),
                _ => 0, // unreachable: chunks_exact yields 2-byte windows
            };
            payload_offsets.push(acc);
            zsizes.push(z);
            acc += z as usize;
        }
        let payloads = bytes.get(layout.payload_off..).unwrap_or(&[]);
        if payloads.len() < acc {
            return Err(SzxError::CorruptStream(format!(
                "payload section holds {} bytes, zsize array requires {acc}",
                payloads.len()
            )));
        }
        Ok(StreamIndex {
            header,
            states,
            mu_bytes,
            payload_offsets,
            zsizes,
            payloads,
        })
    }

    #[inline]
    pub(crate) fn mu<F: SzxFloat>(&self, block: usize) -> F {
        // PANIC-OK: build() sliced mu_bytes to exactly nblocks * F::BYTES,
        // and every caller iterates block < nblocks.
        F::read_le(&self.mu_bytes[block * F::BYTES..])
    }
}

/// Read-only parsed view of a compressed stream, exposed for alternative
/// block decoders (e.g. the GPU execution model in `szx-gpu-sim`), which
/// need per-block payload locations without committing to this crate's
/// decode loop.
pub struct ParsedStream<'a> {
    index: StreamIndex<'a>,
    /// Non-constant blocks preceding each block.
    nc_before: Vec<usize>,
    /// The concatenated payload section.
    pub payloads: &'a [u8],
}

impl<'a> ParsedStream<'a> {
    /// Parse and validate all stream sections.
    pub fn parse<F: SzxFloat>(bytes: &'a [u8]) -> Result<ParsedStream<'a>> {
        let index = StreamIndex::build::<F>(bytes)?;
        let mut nc_before = Vec::with_capacity(index.states.len());
        let mut acc = 0usize;
        for s in index.states.iter() {
            nc_before.push(acc);
            acc += s as usize;
        }
        let payloads = index.payloads;
        Ok(ParsedStream {
            index,
            nc_before,
            payloads,
        })
    }

    /// Parsed header.
    pub fn header(&self) -> &Header {
        &self.index.header
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.index.states.len()
    }

    /// `true` if block `b` is non-constant (reads the stream's state bit
    /// directly — no unpacked copy exists).
    pub fn state(&self, b: usize) -> bool {
        self.index.states.get(b)
    }

    /// μ of block `b`.
    pub fn mu<F: SzxFloat>(&self, b: usize) -> F {
        self.index.mu::<F>(b)
    }

    /// Compressed payload sizes of the non-constant blocks, in stream order
    /// (the `zsize_array` of §6.1). Constant blocks have no payload and do
    /// not appear here.
    pub fn zsizes(&self) -> &[u16] {
        &self.index.zsizes
    }

    /// (offset, length) of block `b`'s payload within [`Self::payloads`].
    /// Block `b` must be non-constant.
    pub fn payload_span(&self, b: usize) -> (usize, usize) {
        debug_assert!(self.state(b), "block {b} is constant");
        // PANIC-OK: documented contract — `b` must index a non-constant
        // block (state(b) itself panics past num_blocks, matching slices);
        // nc_before[b] < n_nonconstant then bounds both per-block arrays.
        let nc = self.nc_before[b];
        (
            self.index.payload_offsets[nc], // PANIC-OK: nc < n_nonconstant
            self.index.zsizes[nc] as usize, // PANIC-OK: nc < n_nonconstant
        )
    }
}

/// Decompress a stream produced by [`crate::compress`]. The element type
/// must match the stream's; use [`crate::stream::inspect`] to discover it.
pub fn decompress<F: SzxFloat>(bytes: &[u8]) -> Result<Vec<F>> {
    decompress_with(bytes, KernelSelect::Auto)
}

/// [`decompress`] with an explicit decode-path selection. The kernel and
/// scalar decoders are byte-identical on every valid stream; `kernel` only
/// chooses *how* blocks are reconstructed, never *what* they decode to.
pub fn decompress_with<F: SzxFloat>(bytes: &[u8], kernel: KernelSelect) -> Result<Vec<F>> {
    let _total = szx_telemetry::span("decompress.total");
    // Build (and thereby validate) the index *before* allocating the output:
    // a forged header could otherwise demand an absurd allocation.
    let index = {
        let _s = szx_telemetry::span("decompress.index");
        StreamIndex::build::<F>(bytes)?
    };
    let mut out = vec![F::ZERO; index.header.n];
    let mut scratch = DecodeScratch::default();
    decompress_with_index(&index, &mut out, kernel.resolve(), &mut scratch)?;
    Ok(out)
}

/// Decompress into a caller-provided buffer of exactly `header.n` elements
/// (allocation-free reuse across repeated decompressions).
pub fn decompress_into<F: SzxFloat>(bytes: &[u8], out: &mut [F]) -> Result<()> {
    decompress_into_with(bytes, out, KernelSelect::Auto)
}

/// [`decompress_into`] with an explicit decode-path selection.
pub fn decompress_into_with<F: SzxFloat>(
    bytes: &[u8],
    out: &mut [F],
    kernel: KernelSelect,
) -> Result<()> {
    let mut scratch = DecodeScratch::default();
    decompress_into_scratch(bytes, out, kernel, &mut scratch)
}

/// [`decompress_into_with`] reusing a caller-held [`DecodeScratch`] — the
/// fully allocation-free path for repeated decompressions (output buffer
/// *and* kernel arenas amortized).
pub fn decompress_into_scratch<F: SzxFloat>(
    bytes: &[u8],
    out: &mut [F],
    kernel: KernelSelect,
    scratch: &mut DecodeScratch,
) -> Result<()> {
    let _total = szx_telemetry::span("decompress.total");
    let index = {
        let _s = szx_telemetry::span("decompress.index");
        StreamIndex::build::<F>(bytes)?
    };
    decompress_with_index(&index, out, kernel.resolve(), scratch)
}

/// Publish what a decompression saw — block classes come for free from the
/// already-built index, so decode telemetry costs nothing per block.
pub(crate) fn flush_decode_telemetry<F: SzxFloat>(index: &StreamIndex<'_>) {
    let tel = szx_telemetry::global();
    let nblocks = index.states.len() as u64;
    let nc = index.header.n_nonconstant as u64;
    tel.counter("decompress.calls").incr();
    tel.counter("decompress.blocks.constant").add(nblocks - nc);
    tel.counter("decompress.blocks.nonconstant").add(nc);
    tel.counter("decompress.bytes.out")
        .add((index.header.n * F::BYTES) as u64);
}

/// Route one non-constant block to the SIMD, kernel, or scalar decoder.
/// The kernel and SIMD paths only cover `ByteAligned` (the default strategy
/// and the paper's Solution C); other strategies always take the scalar
/// loop.
#[inline]
pub(crate) fn decode_block_dispatch<F: SzxFloat>(
    payload: &[u8],
    out: &mut [F],
    mu: F,
    strategy: CommitStrategy,
    path: KernelPath,
    scratch: &mut DecodeScratch,
) -> Result<()> {
    match (path, strategy) {
        (KernelPath::Simd, CommitStrategy::ByteAligned) => {
            crate::simd::decode_nonconstant_block(payload, out, mu, scratch)
        }
        (KernelPath::Kernel, CommitStrategy::ByteAligned) => {
            crate::dekernels::decode_nonconstant_block(payload, out, mu, scratch)
        }
        _ => decode_nonconstant_block(payload, out, mu, strategy),
    }
}

pub(crate) fn decompress_with_index<F: SzxFloat>(
    index: &StreamIndex<'_>,
    out: &mut [F],
    path: KernelPath,
    scratch: &mut DecodeScratch,
) -> Result<()> {
    if out.len() != index.header.n {
        return Err(SzxError::InvalidConfig(format!(
            "output buffer holds {} elements, stream has {}",
            out.len(),
            index.header.n
        )));
    }
    if szx_telemetry::enabled() {
        flush_decode_telemetry::<F>(index);
    }
    let result = {
        let _s = szx_telemetry::span("decompress.blocks");
        // Zone-only path attribution for the profiler (the per-block
        // dispatch below also depends on the stream's strategy; this names
        // the path that was *requested* for the sweep).
        let _z = szx_telemetry::trace_zone(
            match path {
                KernelPath::Simd => "decompress.simd.decode",
                KernelPath::Kernel => "decompress.path.kernel",
                KernelPath::Scalar => "decompress.path.scalar",
            },
            0,
        );
        let bs = index.header.block_size;
        let strategy = index.header.strategy;
        let mut nc = 0usize;
        let mut result = Ok(());
        for (b, chunk) in out.chunks_mut(bs).enumerate() {
            let mu = index.mu::<F>(b);
            if index.states.get(b) {
                // PANIC-OK: build() verified count_ones == n_nonconstant
                // (bounding nc) and that the payload section holds the full
                // zsize prefix sum, so off + len <= payloads.len().
                let off = index.payload_offsets[nc];
                let len = index.zsizes[nc] as usize; // PANIC-OK: as above
                let payload = &index.payloads[off..off + len]; // PANIC-OK: as above
                if let Err(e) = decode_block_dispatch(payload, chunk, mu, strategy, path, scratch) {
                    result = Err(e);
                    break;
                }
                nc += 1;
            } else {
                chunk.fill(mu);
            }
        }
        result
    };
    let grows = scratch.take_grows();
    if grows > 0 && szx_telemetry::enabled() {
        let tel = szx_telemetry::global();
        tel.counter("decompress.scratch.grows").add(grows);
        tel.gauge("decompress.scratch.arena_bytes")
            .set_max(scratch.arena_bytes() as f64);
    }
    result
}

/// Decode one non-constant block payload into `out` (of the block's length).
pub(crate) fn decode_nonconstant_block<F: SzxFloat>(
    payload: &[u8],
    out: &mut [F],
    mu: F,
    strategy: CommitStrategy,
) -> Result<()> {
    let blen = out.len();
    let lead_bytes = (2 * blen).div_ceil(8);
    if payload.len() < 1 + lead_bytes {
        return Err(SzxError::CorruptStream("block payload truncated".into()));
    }
    // PANIC-OK: the length check above guarantees 1 + lead_bytes bytes.
    let req_len = payload[0] as u32;
    if req_len < F::SIGN_EXP_BITS || req_len > F::FULL_BITS {
        return Err(SzxError::CorruptStream(format!(
            "required length {req_len} invalid for {}",
            F::NAME
        )));
    }
    let raw = req_len == F::FULL_BITS;
    // PANIC-OK: same length check; payload.len() >= 1 + lead_bytes.
    let codes = &payload[1..1 + lead_bytes];
    let body = &payload[1 + lead_bytes..]; // PANIC-OK: as above

    #[inline]
    fn code_at(codes: &[u8], i: usize) -> usize {
        // PANIC-OK: callers pass i < blen, and codes holds
        // ceil(2 * blen / 8) bytes, so i / 4 < codes.len().
        ((codes[i / 4] >> (6 - 2 * (i % 4))) & 3) as usize
    }

    match strategy {
        CommitStrategy::ByteAligned => {
            let s = shift_for(req_len);
            let nb = bytes_for(req_len);
            let mut pos = 0usize;
            let mut prev = 0u64;
            for (i, slot) in out.iter_mut().enumerate() {
                let lead = code_at(codes, i).min(nb);
                let k = nb - lead;
                if pos + k > body.len() {
                    return Err(SzxError::CorruptStream("mid-byte pool truncated".into()));
                }
                let mut be = prev.to_be_bytes();
                // PANIC-OK: lead <= nb <= 8 by the min() above, and the
                // pos + k bound was just checked against body.len().
                be[lead..nb].copy_from_slice(&body[pos..pos + k]);
                pos += k;
                let w = u64::from_be_bytes(be);
                let v = F::from_word(w << s);
                *slot = if raw { v } else { v + mu };
                prev = w;
            }
        }
        CommitStrategy::BitPack => {
            let lead_cap = (req_len / 8).min(3) as usize;
            let mut r = BitReader::new(body);
            let mut prev = 0u64;
            for (i, slot) in out.iter_mut().enumerate() {
                let lead = code_at(codes, i).min(lead_cap);
                let t = req_len - 8 * lead as u32;
                let top = if lead > 0 {
                    (prev >> (64 - 8 * lead as u32)) << (64 - 8 * lead as u32)
                } else {
                    0
                };
                let bits = if t > 0 {
                    r.read_bits(t)
                        .ok_or_else(|| SzxError::CorruptStream("bit pool truncated".into()))?
                } else {
                    0
                };
                let w = top | (bits << (64 - req_len));
                let v = F::from_word(w);
                *slot = if raw { v } else { v + mu };
                prev = w;
            }
        }
        CommitStrategy::BytePlusResidual => {
            let beta = req_len % 8;
            let base_alpha = (req_len / 8) as usize;
            let lead_cap = base_alpha.min(3);
            // The whole-byte pool length follows from the leading codes.
            let mut total_alpha = 0usize;
            for i in 0..blen {
                total_alpha += base_alpha - code_at(codes, i).min(lead_cap);
            }
            if body.len() < total_alpha {
                return Err(SzxError::CorruptStream("byte pool truncated".into()));
            }
            let (pool, resid) = body.split_at(total_alpha);
            let mut r = BitReader::new(resid);
            let mut pos = 0usize;
            let mut prev = 0u64;
            for (i, slot) in out.iter_mut().enumerate() {
                let lead = code_at(codes, i).min(lead_cap);
                let alpha = base_alpha - lead;
                let prev_be = prev.to_be_bytes();
                let mut be = [0u8; 8];
                // PANIC-OK: lead + alpha == base_alpha <= 8, and the pool
                // holds total_alpha == sum(alpha_i) bytes (checked above).
                be[..lead].copy_from_slice(&prev_be[..lead]);
                // PANIC-OK: as above.
                be[lead..lead + alpha].copy_from_slice(&pool[pos..pos + alpha]);
                pos += alpha;
                let mut w = u64::from_be_bytes(be);
                if beta > 0 {
                    let bits = r
                        .read_bits(beta)
                        .ok_or_else(|| SzxError::CorruptStream("residual pool truncated".into()))?;
                    w |= bits << (64 - req_len);
                }
                let v = F::from_word(w);
                *slot = if raw { v } else { v + mu };
                prev = w;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SzxConfig;
    use crate::encode::compress;

    fn wave(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.01).sin() * 10.0 + 0.3)
            .collect()
    }

    #[test]
    fn roundtrip_respects_bound_all_strategies() {
        let data = wave(10_000);
        for strategy in [
            CommitStrategy::ByteAligned,
            CommitStrategy::BitPack,
            CommitStrategy::BytePlusResidual,
        ] {
            let cfg = SzxConfig::absolute(1e-3).with_strategy(strategy);
            let bytes = compress(&data, &cfg).unwrap();
            let back: Vec<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.len(), data.len());
            for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
                assert!(
                    (a - b).abs() as f64 <= 1e-3,
                    "{strategy:?}: index {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_f64() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.01).cos() * 3.0).collect();
        for strategy in [
            CommitStrategy::ByteAligned,
            CommitStrategy::BitPack,
            CommitStrategy::BytePlusResidual,
        ] {
            let cfg = SzxConfig::absolute(1e-6).with_strategy(strategy);
            let bytes = compress(&data, &cfg).unwrap();
            let back: Vec<f64> = decompress(&bytes).unwrap();
            for (&a, &b) in data.iter().zip(&back) {
                assert!((a - b).abs() <= 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_bound_is_bit_exact() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).sqrt().sin() * 1e20).collect();
        let bytes = compress(&data, &SzxConfig::absolute(0.0)).unwrap();
        let back: Vec<f32> = decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nan_and_inf_blocks_roundtrip_bit_exact() {
        let mut data = wave(512);
        data[10] = f32::NAN;
        data[300] = f32::INFINITY;
        data[301] = f32::NEG_INFINITY;
        let bytes = compress(&data, &SzxConfig::absolute(1e-2).with_block_size(128)).unwrap();
        let back: Vec<f32> = decompress(&bytes).unwrap();
        assert!(back[10].is_nan());
        assert_eq!(back[300], f32::INFINITY);
        assert_eq!(back[301], f32::NEG_INFINITY);
        // The NaN-carrying blocks are stored bit-exactly, so every value in
        // them must match exactly.
        for i in (0..128).chain(256..384) {
            assert_eq!(data[i].to_bits(), back[i].to_bits(), "index {i}");
        }
    }

    #[test]
    fn ragged_tail_block() {
        for n in [1usize, 5, 127, 128, 129, 255, 257] {
            let data = wave(n);
            let bytes = compress(&data, &SzxConfig::absolute(1e-4).with_block_size(128)).unwrap();
            let back: Vec<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.len(), n);
            for (&a, &b) in data.iter().zip(&back) {
                assert!((a - b).abs() <= 1e-4);
            }
        }
    }

    #[test]
    fn decompress_type_mismatch() {
        let data = wave(100);
        let bytes = compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        assert!(matches!(
            decompress::<f64>(&bytes),
            Err(SzxError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn decompress_into_wrong_size() {
        let data = wave(100);
        let bytes = compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
        let mut buf = vec![0f32; 99];
        assert!(decompress_into(&bytes, &mut buf).is_err());
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let data = wave(4096);
        let bytes = compress(&data, &SzxConfig::absolute(1e-4)).unwrap();
        for cut in [0, 10, 36, 50, bytes.len() / 2, bytes.len() - 1] {
            assert!(decompress::<f32>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_zsize_is_an_error_not_a_panic() {
        let data = wave(4096);
        let mut bytes = compress(&data, &SzxConfig::absolute(1e-4)).unwrap();
        let h = crate::stream::inspect(&bytes).unwrap();
        assert!(h.n_nonconstant > 0);
        // Blow up the first zsize entry.
        let layout_zsize_off = {
            let nblocks = h.num_blocks();
            crate::stream::HEADER_LEN + nblocks.div_ceil(8) + nblocks * 4
        };
        bytes[layout_zsize_off] = 0xff;
        bytes[layout_zsize_off + 1] = 0xff;
        assert!(decompress::<f32>(&bytes).is_err());
    }
}
