//! MSB-first bit-level writer/reader.
//!
//! Used for the per-block state bits, the 2-bit leading-byte codes, and the
//! residual-bit pools of commit Solutions A and B. The byte-aligned Solution C
//! path (the paper's contribution) deliberately avoids this module in its
//! inner loop — that is the whole point of §5.1.

/// Append-only MSB-first bit writer backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf` (0 when byte-aligned).
    used: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            used: 0,
        }
    }

    /// Reset to empty, keeping the allocation (for per-block reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.used = 0;
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }

    /// Write the lowest `n` bits of `value`, most significant first.
    /// `n` must be at most 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        // Mask away anything above the requested width so callers can pass
        // raw words.
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let mut remaining = n;
        while remaining > 0 {
            if self.used == 0 {
                self.buf.push(0);
                self.used = 0;
            }
            let free = 8 - self.used;
            let take = free.min(remaining);
            let chunk = (value >> (remaining - take)) as u8 & ((1u16 << take) - 1) as u8;
            // PANIC-OK: when used == 0 a byte was just pushed above, so the
            // buffer is never empty here. (Writer side; not fed untrusted
            // bytes, but the whole module is audited uniformly.)
            let last = self.buf.last_mut().expect("buffer has a current byte");
            *last |= chunk << (free - take);
            self.used = (self.used + take) % 8;
            remaining -= take;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Write the low `n` bits of `value`, least significant first (the
    /// convention of ZFP-style bitplane coding).
    #[inline]
    pub fn write_bits_lsb(&mut self, value: u64, n: u32) {
        for i in 0..n {
            self.write_bit((value >> i) & 1 != 0);
        }
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        self.used = 0;
    }

    /// Finish and return the underlying bytes (final partial byte is
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Bits still available.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Read `n <= 64` bits MSB-first. Returns `None` past the end.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        if n as usize > self.remaining() {
            return None;
        }
        let mut out = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            // PANIC-OK: the remaining() check above guarantees pos + n bits
            // fit, so pos / 8 stays within buf for the whole loop.
            let byte = self.buf[self.pos / 8];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as usize;
            remaining -= take;
        }
        Some(out)
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }

    /// Read `n` bits least-significant-first (inverse of
    /// [`BitWriter::write_bits_lsb`]).
    #[inline]
    pub fn read_bits_lsb(&mut self, n: u32) -> Option<u64> {
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_bit()? as u64) << i;
        }
        Some(v)
    }

    /// Peek `n <= 64` bits without consuming them.
    #[inline]
    pub fn peek_bits(&self, n: u32) -> Option<u64> {
        let mut copy = self.clone();
        copy.read_bits(n)
    }

    /// Advance the cursor by `n` bits (saturating at the end).
    #[inline]
    pub fn skip_bits(&mut self, n: u32) {
        self.pos = (self.pos + n as usize).min(self.buf.len() * 8);
    }

    /// Skip forward to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Absolute bit position (for diagnostics).
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

/// Borrowed, zero-copy view over the paper's per-block state bit array
/// (MSB-first, one bit per block: `1` = non-constant).
///
/// The decoder used to expand this section into a `Vec<bool>` on every
/// decompression; the view answers the same queries straight from the
/// stream bytes, so building a [`crate::decode::StreamIndex`] no longer
/// allocates O(nblocks) for block states.
#[derive(Debug, Clone, Copy)]
pub struct StateBits<'a> {
    bytes: &'a [u8],
    n: usize,
}

impl<'a> StateBits<'a> {
    /// Wrap `n` state bits stored MSB-first in `bytes`. Returns `None` when
    /// the section is too short to hold them.
    pub fn new(bytes: &'a [u8], n: usize) -> Option<Self> {
        if bytes.len() < n.div_ceil(8) {
            return None;
        }
        Some(StateBits { bytes, n })
    }

    /// Number of blocks covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// State of block `i` (`true` = non-constant). Panics if out of range,
    /// matching slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        // PANIC-OK: the documented out-of-range panic mirrors slice
        // indexing; new() guaranteed bytes covers ceil(n / 8).
        assert!(i < self.n, "state bit {i} out of range ({} blocks)", self.n);
        // PANIC-OK: i < n just asserted; new() guaranteed ceil(n / 8) bytes.
        (self.bytes[i / 8] >> (7 - i % 8)) & 1 != 0
    }

    /// Number of set bits (non-constant blocks), ignoring any padding bits
    /// past `n` in the final byte — a forged tail must not inflate the count.
    pub fn count_ones(&self) -> usize {
        let full = self.n / 8;
        // PANIC-OK: new() guaranteed bytes.len() >= ceil(n / 8), which
        // covers both the full-byte prefix and the partial final byte.
        let mut count: usize = self.bytes[..full]
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum();
        let rem = self.n % 8;
        if rem > 0 {
            let mask = !0u8 << (8 - rem);
            // PANIC-OK: rem > 0 means ceil(n / 8) == full + 1 <= bytes.len().
            count += (self.bytes[full] & mask).count_ones() as usize;
        }
        count
    }

    /// Iterate the `n` states in block order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.n).map(move |i| self.get(i))
    }
}

/// Pack one `bool` per block into the paper's state bit array (MSB-first).
pub fn pack_state_bits(states: &[bool]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(states.len().div_ceil(8));
    for &s in states {
        w.write_bit(s);
    }
    w.into_bytes()
}

/// Unpack `n` state bits.
pub fn unpack_state_bits(bytes: &[u8], n: usize) -> Option<Vec<bool>> {
    if bytes.len() < n.div_ceil(8) {
        return None;
    }
    let mut r = BitReader::new(bytes);
    (0..n).map(|_| r.read_bit()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(1, 1);
        w.write_bits(0x3f, 6);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(6), Some(0x3f));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn write_masks_excess_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xffff, 4); // only the low 4 bits should land
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1111_0000]);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 9);
        assert_eq!(w.bit_len(), 17);
    }

    #[test]
    fn align_pads_to_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align();
        w.write_bits(0xab, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xab]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        r.align();
        assert_eq!(r.read_bits(8), Some(0xab));
    }

    #[test]
    fn read_past_end_is_none() {
        let bytes = [0xff];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bits(1), None);
        // Partial over-read must not consume anything.
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(9), None);
        assert_eq!(r.remaining(), 8);
    }

    #[test]
    fn zero_width_ops() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), Some(0));
    }

    #[test]
    fn state_bits_roundtrip() {
        let states: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let packed = pack_state_bits(&states);
        assert_eq!(packed.len(), 5);
        assert_eq!(unpack_state_bits(&packed, 37).unwrap(), states);
        assert!(unpack_state_bits(&packed, 41).is_none());
    }

    #[test]
    fn state_bits_view_matches_unpack() {
        for n in [0usize, 1, 7, 8, 9, 37, 64, 129] {
            let states: Vec<bool> = (0..n).map(|i| i % 5 == 0 || i % 3 == 1).collect();
            let packed = pack_state_bits(&states);
            let view = StateBits::new(&packed, n).unwrap();
            assert_eq!(view.len(), n);
            assert_eq!(view.is_empty(), n == 0);
            assert_eq!(view.iter().collect::<Vec<_>>(), states, "n={n}");
            assert_eq!(
                view.count_ones(),
                states.iter().filter(|&&s| s).count(),
                "n={n}"
            );
            for (i, &s) in states.iter().enumerate() {
                assert_eq!(view.get(i), s);
            }
        }
        assert!(StateBits::new(&[0u8; 2], 17).is_none(), "section too short");
    }

    #[test]
    fn state_bits_ignore_padding_in_final_byte() {
        // 3 bits used, the 5 padding bits all forged to 1: the count must
        // still see only the real bits.
        let bytes = [0b101_11111u8];
        let view = StateBits::new(&bytes, 3).unwrap();
        assert_eq!(view.count_ones(), 2);
        assert!(view.get(0) && !view.get(1) && view.get(2));
    }

    #[test]
    fn msb_first_layout_is_stable() {
        // The exact bit layout is part of the stream format; lock it down.
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false, false, false, true] {
            w.write_bit(bit);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0001]);
    }
}
