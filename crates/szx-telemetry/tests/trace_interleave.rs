//! Concurrency tests for the flight recorder's publish/drain protocol.
//!
//! The recorder's contract (see `trace.rs`): each thread owns a bounded
//! buffer, writes a slot, then release-stores the published length; a
//! drainer acquire-loads the length and reads only below it. These tests
//! drive that protocol with real interleavings and assert that **no event
//! is ever torn** (name and arg always agree on the producing writer) and
//! that **no event is lost below capacity** when draining at a quiescent
//! point.
//!
//! The suite is sized so it also runs under Miri, whose weak-memory and
//! data-race machinery is the real reviewer here:
//!
//! ```text
//! MIRIFLAGS="-Zmiri-many-seeds" \
//!     cargo +nightly miri test -p szx-telemetry --test trace_interleave
//! ```

use std::sync::Mutex;
use szx_telemetry::{set_trace_enabled, take_trace, trace_instant, TracePhase};

const WRITERS: u64 = 4;
const EVENTS_PER_WRITER: u64 = if cfg!(miri) { 24 } else { 512 };
const DRAINS: usize = if cfg!(miri) { 4 } else { 64 };
/// `arg = writer * ARG_STRIDE + sequence` — a self-describing payload: any
/// mismatch between the arg's writer field and the event name is a tear.
const ARG_STRIDE: u64 = 1_000_000;

static NAMES: [&str; WRITERS as usize] = [
    "interleave.w0",
    "interleave.w1",
    "interleave.w2",
    "interleave.w3",
];

/// Both tests mutate process-global trace state; serialize them and start
/// each from a drained recorder.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = take_trace();
    guard
}

/// Every writer's event stream survives intact when the drain happens at a
/// quiescent point (all writers joined): exact counts, no duplicates, no
/// torn name/arg pairs, and per-thread FIFO order.
#[test]
fn no_event_is_torn_or_lost_below_capacity() {
    let _g = lock();
    set_trace_enabled(true);
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            s.spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    trace_instant(NAMES[t as usize], t * ARG_STRIDE + i);
                }
            });
        }
    });
    set_trace_enabled(false);
    let cap = take_trace();

    assert_eq!(cap.dropped, 0, "buffers are far below capacity");
    assert_eq!(cap.events.len(), (WRITERS * EVENTS_PER_WRITER) as usize);

    let mut seen = vec![vec![false; EVENTS_PER_WRITER as usize]; WRITERS as usize];
    for e in &cap.events {
        assert_eq!(e.phase, TracePhase::Instant);
        let t = (e.arg / ARG_STRIDE) as usize;
        let i = (e.arg % ARG_STRIDE) as usize;
        assert!(
            t < WRITERS as usize && i < EVENTS_PER_WRITER as usize,
            "alien payload — torn event: {e:?}"
        );
        assert_eq!(e.name, NAMES[t], "name/arg disagree — torn event: {e:?}");
        assert!(!seen[t][i], "event delivered twice at quiescence: {e:?}");
        seen[t][i] = true;
    }
    // The count + no-duplicate checks above already imply completeness;
    // `seen` being full restates it directly.
    assert!(seen.iter().flatten().all(|&s| s), "an event was lost");

    // take_trace sorts by timestamp with a stable sort and each buffer is
    // appended in push order, so filtering one tid must yield that writer's
    // strictly increasing sequence numbers.
    let mut tids: Vec<u64> = cap.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), WRITERS as usize, "one buffer lane per writer");
    for tid in tids {
        let args: Vec<u64> = cap
            .events
            .iter()
            .filter(|e| e.tid == tid)
            .map(|e| e.arg)
            .collect();
        assert!(
            args.windows(2).all(|w| w[0] < w[1]),
            "per-thread order lost for tid {tid}: {args:?}"
        );
    }
}

/// Draining *while writers are mid-flight* deliberately drops the
/// documented quiescence precondition. The protocol must stay memory-safe
/// (Miri verifies no data race and no uninitialized read) and every
/// delivered event must still be fully written — a racing writer may
/// re-publish an already-drained prefix (duplicates are acceptable), but a
/// torn or alien event is a protocol violation.
#[test]
fn concurrent_drain_yields_only_well_formed_events() {
    let _g = lock();
    set_trace_enabled(true);
    let mut captures = Vec::new();
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            s.spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    trace_instant(NAMES[t as usize], t * ARG_STRIDE + i);
                    if i % 8 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for _ in 0..DRAINS {
            captures.push(take_trace());
            std::thread::yield_now();
        }
    });
    set_trace_enabled(false);
    captures.push(take_trace());

    let mut dropped = 0;
    for cap in &captures {
        dropped += cap.dropped;
        for e in &cap.events {
            assert_eq!(e.phase, TracePhase::Instant);
            let t = (e.arg / ARG_STRIDE) as usize;
            let i = e.arg % ARG_STRIDE;
            assert!(
                t < WRITERS as usize && i < EVENTS_PER_WRITER,
                "alien payload — torn event: {e:?}"
            );
            assert_eq!(e.name, NAMES[t], "name/arg disagree — torn event: {e:?}");
        }
    }
    assert_eq!(dropped, 0, "capacity is far above the event count");
}
