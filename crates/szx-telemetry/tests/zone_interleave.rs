//! Concurrency tests for the zone-slot publish/snapshot protocol behind
//! the sampling profiler (`zones.rs`).
//!
//! The slot is a seqlock over all-atomic data: a writer bumps its
//! generation to odd, stores frames/depth relaxed behind a release fence,
//! and release-stores the generation back to even; a sampler acquire-loads
//! the generation, copies relaxed, fences, and re-checks. These tests
//! drive 4 writer threads against a concurrently spinning sampler and
//! assert the protocol's contract: **every delivered stack decodes to
//! registered name ids only** (a torn *combination* may be rejected and
//! retried, but an unregistered id in an accepted snapshot is a protocol
//! violation), stacks are always prefix-consistent with what the writer
//! could have published, and the slot count tracks thread lifetime.
//!
//! Sized to also run under Miri, whose weak-memory machinery is the real
//! reviewer here:
//!
//! ```text
//! MIRIFLAGS="-Zmiri-many-seeds" \
//!     cargo +nightly miri test -p szx-telemetry --test zone_interleave
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use szx_telemetry::{sample_stacks, set_profiling_enabled, trace_zone, zone_name};

const WRITERS: usize = 4;
const ROUNDS: usize = if cfg!(miri) { 16 } else { 2_000 };
const SAMPLER_SWEEPS: usize = if cfg!(miri) { 32 } else { 4_000 };

/// Nested zone names per writer: each writer cycles push/push/pop/pop so
/// the sampler races against both frame stores and depth changes.
static NAMES: [[&str; 2]; WRITERS] = [
    ["zones.w0.outer", "zones.w0.inner"],
    ["zones.w1.outer", "zones.w1.inner"],
    ["zones.w2.outer", "zones.w2.inner"],
    ["zones.w3.outer", "zones.w3.inner"],
];

/// Zone state is process-global; serialize tests and start disabled.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_profiling_enabled(false);
    // Drain slots left by earlier tests' exited threads.
    sample_stacks(|_| {});
    guard
}

/// 4 writers churning nested zones + one sampler spinning concurrently:
/// every accepted stack must decode to registered names, and the frames
/// must be one of the stacks the writer can actually occupy (prefix
/// consistency — never `inner` without its `outer` below it).
#[test]
fn sampled_stacks_never_contain_unregistered_or_inconsistent_frames() {
    let _g = lock();
    set_profiling_enabled(true);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writers: Vec<_> = NAMES
            .iter()
            .map(|names| {
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let _outer = trace_zone(names[0], 0);
                        {
                            let _inner = trace_zone(names[1], 0);
                        }
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        let sampler = s.spawn(|| {
            let mut sweeps = 0usize;
            let mut accepted = 0u64;
            while !done.load(Ordering::Relaxed) && sweeps < SAMPLER_SWEEPS {
                sweeps += 1;
                sample_stacks(|stack| {
                    accepted += 1;
                    assert!(
                        stack.len() <= 2,
                        "writers never nest deeper than 2: {stack:?}"
                    );
                    let resolved: Vec<&str> = stack
                        .iter()
                        .map(|&id| {
                            zone_name(id).unwrap_or_else(|| {
                                panic!("unregistered id {id} in accepted stack {stack:?}")
                            })
                        })
                        .collect();
                    // Prefix consistency: the stack must be [outer] or
                    // [outer, inner] of ONE writer — an inner frame from a
                    // different writer than the outer is a torn read the
                    // generation check failed to reject.
                    let writer = NAMES
                        .iter()
                        .position(|n| n[0] == resolved[0])
                        .unwrap_or_else(|| {
                            panic!("rootmost frame is not an outer zone: {resolved:?}")
                        });
                    if resolved.len() == 2 {
                        assert_eq!(
                            resolved[1], NAMES[writer][1],
                            "cross-writer frame mix — torn stack accepted: {resolved:?}"
                        );
                    }
                });
                if !cfg!(miri) {
                    std::hint::spin_loop();
                }
            }
        });
        // Join the writers, then release the sampler so its sweeps
        // genuinely overlap the writers' entire lifetime.
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        sampler.join().unwrap();
    });
    set_profiling_enabled(false);
    // Quiescent: all zones popped, so no stack may remain published.
    let sweep = sample_stacks(|s| panic!("stack survived joined writers: {s:?}"));
    assert_eq!(sweep.stacks, 0);
}

/// Slots outlive nothing: once the owning threads exit, one sweep drains
/// their registrations, and a balanced push/pop sequence leaves depth 0.
#[test]
fn exited_threads_are_garbage_collected_from_the_registry() {
    let _g = lock();
    set_profiling_enabled(true);
    std::thread::scope(|s| {
        for names in &NAMES {
            s.spawn(move || {
                for _ in 0..ROUNDS.min(64) {
                    let _z = trace_zone(names[0], 0);
                }
            });
        }
    });
    set_profiling_enabled(false);
    // First sweep observes the (empty) slots and unregisters any whose
    // owning thread has fully exited...
    let first = sample_stacks(|s| panic!("joined writers left a stack: {s:?}"));
    assert!(first.threads_seen >= WRITERS as u64);
    assert_eq!(first.stacks, 0);
    // ...and follow-up sweeps drain the rest. `join` returning does not
    // guarantee the thread-local destructor (which drops the slot's Arc)
    // has run yet, so assert *eventual* collection within a bounded wait
    // rather than an exact two-sweep schedule.
    let mut remaining = u64::MAX;
    for _ in 0..1_000 {
        remaining = sample_stacks(|_| {}).threads_seen;
        if remaining == 0 {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(remaining, 0, "exited threads' slots must be dropped");
}

/// Torn retries are surfaced, not hidden: with writers hammering one-deep
/// zones the sampler may retry, but the sweep's accounting must stay
/// consistent (stacks + torn never exceeds what was attempted) and the
/// rate must be far below the 1% health threshold under this mild load.
#[test]
fn torn_retry_accounting_is_consistent() {
    let _g = lock();
    set_profiling_enabled(true);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writers: Vec<_> = NAMES
            .iter()
            .map(|names| {
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let _z = trace_zone(names[1], 0);
                    }
                })
            })
            .collect();
        let stop = &stop;
        let sampler = s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let sweep = sample_stacks(|_| {});
                // A sweep never reports more delivered stacks than
                // registered threads (writers + this test's main thread's
                // leftover slot at most).
                assert!(sweep.stacks <= sweep.threads_seen);
                assert!(sweep.threads_seen <= WRITERS as u64 + 1);
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        sampler.join().unwrap();
    });
    set_profiling_enabled(false);
    let end = sample_stacks(|s| panic!("stack survived joined writers: {s:?}"));
    assert_eq!(end.stacks, 0);
}
