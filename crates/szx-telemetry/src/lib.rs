//! # szx-telemetry
//!
//! Zero-dependency observability for the szx compression pipeline: atomic
//! [`Counter`]s, log2/linear-bucketed [`Histogram`]s, RAII [`Span`] timers
//! on monotonic clocks, and a global [`Registry`] snapshotted into a
//! [`Report`] that renders through pluggable sinks (human-readable table or
//! JSON-lines for machines).
//!
//! ## Design rules
//!
//! * **Off by default, near-free when off.** Every entry point checks one
//!   relaxed atomic ([`enabled`]); the hot per-block/per-element paths in
//!   `szx-core` accumulate into *local* plain structs and flush to the
//!   global registry once per API call, so disabling telemetry removes all
//!   shared-memory traffic and enabling it adds no per-element atomics.
//! * **No contention across workers.** Parallel code keeps one local
//!   collector per chunk/thread and merges at the join point — the global
//!   registry only sees one flush per top-level call.
//! * **Paper-relevant counters for free.** `szx-core` publishes the §5.3
//!   impact factors (constant / non-constant / bit-exact-fallback block
//!   counts, the required-length histogram, mid-bytes written, leading-byte
//!   savings) on every instrumented compression, so a single run reproduces
//!   the paper's impact-factor analysis.
//!
//! ## Quick start
//!
//! ```
//! use szx_telemetry as tel;
//!
//! tel::set_enabled(true);
//! {
//!     let _span = tel::span("demo.work");
//!     tel::global().counter("demo.items").add(3);
//!     tel::global().hist_log2("demo.sizes").record(4096);
//! } // span records its wall time on drop
//!
//! let report = tel::global().snapshot();
//! assert_eq!(report.counter("demo.items"), Some(3));
//! println!("{}", tel::render_table(&report));
//! println!("{}", tel::render_jsonl(&report)); // one JSON object per line
//! # tel::global().reset();
//! # tel::set_enabled(false);
//! ```
//!
//! ## Adding a new counter
//!
//! Call `tel::global().counter("area.name").add(n)` (or `hist_log2` /
//! `hist_linear` / `span`) — names are created on first use, no central
//! enum to extend. Keep names `area.metric`-shaped so the table sink groups
//! sensibly, and gate any non-trivial computation of `n` behind
//! [`enabled`].

#![deny(unsafe_op_in_unsafe_fn)]

mod export;
mod hist;
pub mod json;
mod manifest;
mod progress;
mod registry;
mod report;
mod resource;
mod snapshot;
mod trace;
pub mod zones;

pub use export::{
    emit_event, escape_label_value, event_sink_installed, install_event_sink, render_prometheus,
    sanitize_metric_name, take_event_sink,
};
pub use hist::{Histogram, HistogramKind, HistogramSnapshot};
pub use manifest::{fnv1a64, Manifest, MANIFEST_KIND, MANIFEST_SCHEMA_VERSION};
pub use progress::{ProgressMeter, ProgressSnapshot};
pub use registry::{Counter, Registry, SpanStats};
pub use report::{render_jsonl, render_table, Report, SpanSnapshot, Value};
pub use resource::{
    current_phase, read_proc_sample, set_phase_tracking, ProcSample, ResourceAccountant,
};
pub use snapshot::{diff, Gauge, GaugeSnapshot};
pub use trace::{
    render_chrome_trace, set_trace_enabled, take_trace, trace_enabled, trace_instant, trace_zone,
    TraceCapture, TraceEvent, TracePhase, TraceZone,
};
pub use zones::{
    profiling_enabled, sample_stacks, set_profiling_enabled, zone_name, SampleSweep,
    MAX_STACK_DEPTH,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Master switch. Reads the `SZX_TELEMETRY` environment variable once
/// (`1`/`true`/`on` enable) and can be flipped at runtime with
/// [`set_enabled`].
static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(v) = std::env::var("SZX_TELEMETRY") {
            let on = matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes");
            ENABLED.store(on, Ordering::Relaxed);
        }
    });
}

/// Is telemetry collection on? One relaxed load; safe to call on hot paths
/// (but prefer hoisting out of per-element loops).
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on/off at runtime (overrides `SZX_TELEMETRY`).
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// RAII span timer: measures monotonic wall time from construction to drop
/// and records it under `name` in the global registry. A disabled-telemetry
/// span is a no-op (no clock read).
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    /// Keeps the flight-recorder zone open for the span's lifetime when
    /// event tracing is on (see [`trace_zone`]); `None`-named when off.
    _zone: TraceZone,
    /// Entry on the resource accountant's phase stack (`Some` only while
    /// phase tracking is on — see [`set_phase_tracking`]).
    phase_id: Option<u64>,
}

impl Span {
    /// Nanoseconds elapsed so far (0 when telemetry is disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            global().span_stats(self.name).record(ns);
        }
        if let Some(id) = self.phase_id {
            resource::phase_pop(id);
        }
    }
}

/// Open a [`Span`] under `name` (`area.stage`-shaped names render grouped).
/// When the flight recorder is on ([`trace_enabled`]), the span also emits
/// begin/end trace events, so every aggregated stage timer doubles as a
/// timeline zone for free.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
        _zone: trace_zone(name, 0),
        phase_id: resource::phase_push(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The global registry is process-wide; tests touching it serialize
    /// here and reset it on entry.
    pub(crate) fn lock_global() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        global().reset();
        guard
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = lock_global();
        set_enabled(false);
        {
            let s = span("test.off");
            assert_eq!(s.elapsed_ns(), 0);
        }
        assert!(global().snapshot().spans.is_empty());
    }

    #[test]
    fn enabled_span_records_on_drop() {
        let _g = lock_global();
        set_enabled(true);
        {
            let _s = span("test.on");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let r = global().snapshot();
        let s = r.span("test.on").expect("span recorded");
        assert_eq!(s.count, 1);
        assert!(
            s.total_ns >= 2_000_000,
            "slept 2ms, recorded {}",
            s.total_ns
        );
        set_enabled(false);
    }

    #[test]
    fn nested_spans_accumulate_independently() {
        let _g = lock_global();
        set_enabled(true);
        {
            let _outer = span("test.outer");
            for _ in 0..3 {
                let _inner = span("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let r = global().snapshot();
        let outer = r.span("test.outer").unwrap();
        let inner = r.span("test.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        // The outer span encloses all inner spans, so its wall time
        // dominates their sum.
        assert!(
            outer.total_ns >= inner.total_ns,
            "outer {} must enclose inner {}",
            outer.total_ns,
            inner.total_ns
        );
        set_enabled(false);
    }

    #[test]
    fn runtime_toggle_beats_env() {
        let _g = lock_global();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
