//! Flight recorder: per-thread event tracing with Chrome `trace_event`
//! export.
//!
//! Where the registry's [`crate::Span`]s aggregate (count/total/min/max per
//! name), the recorder keeps a *timeline*: every begin/end/instant event
//! with its thread id and a monotonic nanosecond timestamp, so chunk skew,
//! join-point stalls, and stage overlap in the rayon paths become visible
//! as per-thread lanes in `about:tracing` / Perfetto.
//!
//! ## Design
//!
//! * **Off by default, near-free when off.** Every entry point checks one
//!   relaxed atomic ([`trace_enabled`], seeded from `SZX_TRACE`); a
//!   disabled [`trace_zone`] reads no clock and touches no memory.
//! * **One writer per buffer, no locks on the hot path.** Each thread owns
//!   a bounded event buffer reached through a thread-local; recording is a
//!   plain slot write plus one release store of the published length. The
//!   global side only takes a mutex to *register* a new thread's buffer and
//!   to drain — never per event.
//! * **Bounded, drop-and-count.** A buffer that fills (default 1 Mi events
//!   per thread, `SZX_TRACE_CAPACITY` overrides) drops further events and
//!   counts them; [`TraceCapture::dropped`] reports the loss instead of
//!   silently truncating the timeline.
//! * **Drain at quiescent points.** [`take_trace`] is meant to run after
//!   the instrumented call returns (all rayon workers joined). Draining
//!   while other threads are still recording is memory-safe but may leave
//!   their in-flight events for the next capture.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Event kind, mirroring the Chrome trace phases we emit (`B`/`E`/`i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    Begin,
    End,
    Instant,
}

/// One recorded event. `ts_ns` is nanoseconds since the process's trace
/// epoch (the first trace activity); `tid` is a small dense id assigned per
/// OS thread in registration order; `arg` is a free u64 the instrumentation
/// site chooses (chunk index, frame number, element count, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub phase: TracePhase,
    pub ts_ns: u64,
    pub tid: u64,
    pub arg: u64,
}

/// Everything one [`take_trace`] call collected.
#[derive(Debug, Clone, Default)]
pub struct TraceCapture {
    /// All events, sorted by timestamp (ties keep per-thread order).
    pub events: Vec<TraceEvent>,
    /// Events lost to full buffers since the previous drain.
    pub dropped: u64,
}

const DEFAULT_CAPACITY: usize = 1 << 20;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENV_INIT: OnceLock<()> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SZX_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Is event recording on? One relaxed load (plus a first-call read of the
/// `SZX_TRACE` environment variable); safe on hot paths.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENV_INIT.get_or_init(|| {
        if let Ok(v) = std::env::var("SZX_TRACE") {
            let on = matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes");
            TRACE_ENABLED.store(on, Ordering::Relaxed);
        }
    });
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn event recording on/off at runtime (overrides `SZX_TRACE`). Enabling
/// also pins the trace epoch so the first event starts near t=0.
pub fn set_trace_enabled(on: bool) {
    trace_enabled(); // force env init so this store wins
    if on {
        epoch();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// A per-thread bounded event log. Only the owning thread appends; the
/// published length is release-stored after the slot write so a draining
/// thread acquire-loading `len` observes fully-written events only.
struct ThreadBuf {
    tid: u64,
    len: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
}

// SAFETY: slot `i` is written exactly once by the owning thread before
// `len` is release-stored past `i`; every other thread only reads slots
// strictly below an acquire-loaded `len`. `drain` resets `len` to 0, which
// is only called at quiescent points (documented on `take_trace`) — and a
// racing writer at worst re-publishes an already-drained prefix, never a
// torn event.
unsafe impl Sync for ThreadBuf {}

impl ThreadBuf {
    fn new(tid: u64, cap: usize) -> Self {
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || UnsafeCell::new(MaybeUninit::uninit()));
        ThreadBuf {
            tid,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Append one event (owning thread only).
    fn push(&self, name: &'static str, phase: TracePhase, arg: u64) {
        // ORDERING: relaxed is sufficient for this load — only the owning
        // thread stores `len` (drain's reset happens at quiescent points),
        // so this read observes the thread's own last store.
        let n = self.len.load(Ordering::Relaxed);
        if n == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            // Mirror the loss into the registry so `--stats`-only runs
            // (which never render the Chrome trace) still see it.
            crate::global().counter("trace.dropped_events").incr();
            return;
        }
        let ev = TraceEvent {
            name,
            phase,
            ts_ns: now_ns(),
            tid: self.tid,
            arg,
        };
        // SAFETY: slot `n` is unpublished (>= len), so no reader looks at it.
        unsafe { (*self.slots[n].get()).write(ev) };
        self.len.store(n + 1, Ordering::Release);
    }

    /// Copy out the published events and reset the buffer.
    fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let n = self.len.load(Ordering::Acquire);
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            // SAFETY: slots below the acquire-loaded `len` are fully written.
            out.push(unsafe { (*slot.get()).assume_init() });
        }
        self.len.store(0, Ordering::Release);
        (out, self.dropped.swap(0, Ordering::Relaxed))
    }
}

/// Registered buffers: Arcs shared with the owning threads' thread-locals.
/// Kept alive here past thread exit so scoped rayon workers' events survive
/// until the drain at the join point.
fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: UnsafeCell<Option<Arc<ThreadBuf>>> = const { UnsafeCell::new(None) };
}

/// Record into this thread's buffer, registering one on first use.
#[inline]
fn record(name: &'static str, phase: TracePhase, arg: u64) {
    LOCAL.with(|cell| {
        // SAFETY: the thread-local cell is only touched from this thread,
        // and `with` does not reenter.
        let local = unsafe { &mut *cell.get() };
        let buf = local.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf::new(
                NEXT_TID.fetch_add(1, Ordering::Relaxed),
                capacity(),
            ));
            buffers()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&buf));
            buf
        });
        buf.push(name, phase, arg);
    });
}

/// Record an instant (zero-duration) event.
#[inline]
pub fn trace_instant(name: &'static str, arg: u64) {
    if trace_enabled() {
        record(name, TracePhase::Instant, arg);
    }
}

/// RAII duration zone: records a begin event on creation and the matching
/// end on drop. Free (no clock read, no memory traffic) while tracing is
/// disabled.
#[must_use = "a zone records its end on drop; binding it to `_` drops immediately"]
pub struct TraceZone {
    name: Option<&'static str>,
    /// Did this zone push onto the profiler's zone stack? Remembered so a
    /// guard created before [`crate::zones::set_profiling_enabled`] flipped
    /// never pops (and one created while on always pops, even if profiling
    /// is disabled before the drop) — the stack stays balanced across
    /// runtime toggles.
    pop_zone: bool,
}

impl Drop for TraceZone {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            record(name, TracePhase::End, 0);
        }
        if self.pop_zone {
            crate::zones::zone_pop();
        }
    }
}

/// Open a duration zone under `name` with a site-chosen `arg` (chunk index,
/// frame number, …) attached to the begin event. Also the single hook point
/// for the sampling profiler's zone stack (see [`crate::zones`]): every
/// zone entry publishes its name while profiling is on.
#[inline]
pub fn trace_zone(name: &'static str, arg: u64) -> TraceZone {
    let pop_zone = crate::zones::zone_push(name);
    if trace_enabled() {
        record(name, TracePhase::Begin, arg);
        TraceZone {
            name: Some(name),
            pop_zone,
        }
    } else {
        TraceZone {
            name: None,
            pop_zone,
        }
    }
}

/// Drain every thread's buffer into one timestamp-sorted capture and reset
/// them. Call after the instrumented work has joined (see module docs);
/// buffers of threads that have since exited are unregistered here.
pub fn take_trace() -> TraceCapture {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut bufs = buffers().lock().unwrap_or_else(|e| e.into_inner());
    bufs.retain(|buf| {
        let (evs, drops) = buf.drain();
        events.extend(evs);
        dropped += drops;
        // strong_count == 1 means the owning thread is gone; its (now
        // drained) buffer can be forgotten.
        Arc::strong_count(buf) > 1
    });
    drop(bufs);
    events.sort_by_key(|e| e.ts_ns);
    TraceCapture { events, dropped }
}

/// Render a capture as Chrome `trace_event` JSON (the "JSON Object Format"),
/// loadable in `about:tracing` and Perfetto. Durations are `B`/`E` pairs,
/// instants are `i`; timestamps are microseconds with nanosecond precision;
/// each tid additionally gets a `thread_name` metadata record so lanes are
/// labeled.
pub fn render_chrome_trace(capture: &TraceCapture) -> String {
    let mut o = String::with_capacity(64 + capture.events.len() * 96);
    o.push_str("{\"traceEvents\":[");
    o.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"szx\"}}",
    );
    let mut tids: Vec<u64> = capture.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        o.push_str(&format!(
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"szx-thread-{tid}\"}}}}"
        ));
    }
    for e in &capture.events {
        let us_whole = e.ts_ns / 1_000;
        let ns_frac = e.ts_ns % 1_000;
        o.push_str(",{\"name\":");
        crate::report::json_escape(e.name, &mut o);
        let (ph, extra) = match e.phase {
            TracePhase::Begin => ("B", format!(",\"args\":{{\"arg\":{}}}", e.arg)),
            TracePhase::End => ("E", String::new()),
            TracePhase::Instant => ("i", format!(",\"s\":\"t\",\"args\":{{\"arg\":{}}}", e.arg)),
        };
        o.push_str(&format!(
            ",\"ph\":\"{ph}\",\"ts\":{us_whole}.{ns_frac:03},\"pid\":1,\"tid\":{}{extra}}}",
            e.tid
        ));
    }
    o.push_str(&format!(
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}",
        capture.dropped
    ));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; tests serialize on the same lock the
    /// registry tests use and drain on entry.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        let guard = crate::tests::lock_global();
        let _ = take_trace();
        guard
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = lock();
        set_trace_enabled(false);
        {
            let _z = trace_zone("test.zone", 1);
            trace_instant("test.instant", 2);
        }
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn zone_emits_matched_begin_end() {
        let _g = lock();
        set_trace_enabled(true);
        {
            let _z = trace_zone("test.zone", 7);
            trace_instant("test.mark", 9);
        }
        set_trace_enabled(false);
        let cap = take_trace();
        assert_eq!(cap.dropped, 0);
        let phases: Vec<(TracePhase, u64)> = cap.events.iter().map(|e| (e.phase, e.arg)).collect();
        assert_eq!(
            phases,
            vec![
                (TracePhase::Begin, 7),
                (TracePhase::Instant, 9),
                (TracePhase::End, 0),
            ]
        );
        let begin = cap.events[0].ts_ns;
        let end = cap.events[2].ts_ns;
        assert!(begin <= end, "begin {begin} must precede end {end}");
        assert!(cap.events.iter().all(|e| e.tid == cap.events[0].tid));
    }

    #[test]
    fn threads_get_distinct_tids_and_all_events_survive_thread_exit() {
        let _g = lock();
        set_trace_enabled(true);
        std::thread::scope(|s| {
            for i in 0..3u64 {
                s.spawn(move || {
                    let _z = trace_zone("test.worker", i);
                });
            }
        });
        set_trace_enabled(false);
        let cap = take_trace();
        let mut tids: Vec<u64> = cap.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "one lane per worker: {:?}", cap.events);
        assert_eq!(cap.events.len(), 6, "begin+end per worker");
    }

    #[test]
    fn full_buffer_drops_and_counts() {
        let buf = ThreadBuf::new(42, 2);
        buf.push("a", TracePhase::Instant, 0);
        buf.push("b", TracePhase::Instant, 1);
        buf.push("c", TracePhase::Instant, 2);
        let (events, dropped) = buf.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 1);
        assert_eq!(events[1].name, "b");
        // Drained buffer accepts new events again.
        buf.push("d", TracePhase::Instant, 3);
        let (events, dropped) = buf.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn chrome_render_contains_lanes_and_drop_count() {
        let cap = TraceCapture {
            events: vec![
                TraceEvent {
                    name: "z",
                    phase: TracePhase::Begin,
                    ts_ns: 1_500,
                    tid: 3,
                    arg: 4,
                },
                TraceEvent {
                    name: "z",
                    phase: TracePhase::End,
                    ts_ns: 2_750,
                    tid: 3,
                    arg: 0,
                },
            ],
            dropped: 5,
        };
        let j = render_chrome_trace(&cap);
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ts\":1.500"));
        assert!(j.contains("\"ts\":2.750"));
        assert!(j.contains("szx-thread-3"));
        assert!(j.contains("\"dropped_events\":5"));
    }
}
