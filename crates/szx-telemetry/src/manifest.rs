//! Run manifests: one versioned JSON document per run tying the
//! configuration (bound, mode, kernel, threads), the dataset identity
//! (path, size, FNV-1a digest), the final metrics snapshot, and the
//! measured quality numbers together — the durable record the bench
//! observatory ingests alongside its own `BENCH_<n>.json` reports.
//!
//! ## Schema v1
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "kind": "szx_run_manifest",
//!   "command": "compress",
//!   "created_unix_ms": 1700000000000,
//!   "config":  { "bound": 1e-3, "mode": "abs", "kernel": "auto", "threads": 8 },
//!   "dataset": { "path": "cldhgh.f32", "bytes": 26218800,
//!                "digest_fnv1a64": "a1b2c3d4e5f60789" },
//!   "metrics": { "spans": {…}, "counters": {…}, "hists": {…},
//!                "gauges": {…}, "derived": {…} },
//!   "quality": { "ratio": 8.4, "psnr_db": 84.2, "max_abs_err": 9.9e-4 }
//! }
//! ```
//!
//! `config`/`quality` member sets are open (renderers must ignore unknown
//! keys); the *required* top-level keys are what [`Manifest::validate`]
//! checks. Unknown top-level keys are likewise allowed — v1 consumers must
//! skip what they don't know so v1.x producers can extend the record.

use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::report::{render_jsonl, Report, Value};

/// Bumped only on breaking changes; see the module docs for the v1 shape.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;
/// Discriminator so a manifest is recognizable among other JSON artifacts.
pub const MANIFEST_KIND: &str = "szx_run_manifest";

/// 64-bit FNV-1a over `bytes` — the dataset digest. Not cryptographic;
/// meant to catch "same path, different contents" across bench runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::U64(x) => Json::Num(*x as f64),
        Value::F64(x) => Json::Num(*x),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

/// Builder for a schema-v1 run manifest. Construct with [`new`](Self::new),
/// fill the sections, then [`render`](Self::render) to a JSON document.
pub struct Manifest {
    members: Vec<(String, Json)>,
}

impl Manifest {
    pub fn new(command: &str) -> Manifest {
        let created_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Manifest {
            members: vec![
                (
                    "schema_version".into(),
                    Json::Num(MANIFEST_SCHEMA_VERSION as f64),
                ),
                ("kind".into(), Json::Str(MANIFEST_KIND.into())),
                ("command".into(), Json::Str(command.into())),
                ("created_unix_ms".into(), Json::Num(created_ms as f64)),
                ("config".into(), Json::Obj(Vec::new())),
                (
                    "dataset".into(),
                    Json::Obj(vec![
                        ("path".into(), Json::Str(String::new())),
                        ("bytes".into(), Json::Num(0.0)),
                        ("digest_fnv1a64".into(), Json::Str(String::new())),
                    ]),
                ),
                ("metrics".into(), Json::Obj(Vec::new())),
            ],
        }
    }

    /// Insert or replace a top-level member.
    pub fn set(&mut self, key: &str, v: Json) {
        if let Some(slot) = self.members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            self.members.push((key.to_string(), v));
        }
    }

    /// Replace the `config` object with these entries.
    pub fn set_config(&mut self, entries: &[(&str, Value)]) {
        self.set(
            "config",
            Json::Obj(
                entries
                    .iter()
                    .map(|(k, v)| (k.to_string(), value_to_json(v)))
                    .collect(),
            ),
        );
    }

    /// Record the dataset identity: path, byte length, FNV-1a digest
    /// (stored as 16 hex digits so 2^53-unsafe u64s survive the f64
    /// number model).
    pub fn set_dataset(&mut self, path: &str, bytes: u64, digest: u64) {
        self.set(
            "dataset",
            Json::Obj(vec![
                ("path".into(), Json::Str(path.into())),
                ("bytes".into(), Json::Num(bytes as f64)),
                ("digest_fnv1a64".into(), Json::Str(format!("{digest:016x}"))),
            ]),
        );
    }

    /// Embed a metrics snapshot (the JSON-lines report object, verbatim).
    pub fn set_metrics(&mut self, report: &Report) {
        let parsed = Json::parse(&render_jsonl(report))
            .expect("render_jsonl emits valid JSON by construction");
        self.set("metrics", parsed);
    }

    /// Replace the `quality` object (ratio, PSNR, max error, …).
    pub fn set_quality(&mut self, entries: &[(&str, Value)]) {
        self.set(
            "quality",
            Json::Obj(
                entries
                    .iter()
                    .map(|(k, v)| (k.to_string(), value_to_json(v)))
                    .collect(),
            ),
        );
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(self.members.clone())
    }

    /// Render the manifest document (compact JSON, one line).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Check a parsed document against schema v1: kind/version must match
    /// exactly, required sections must be present with the right shapes.
    /// Unknown members pass (open schema).
    pub fn validate(j: &Json) -> Result<(), String> {
        let version = j
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")?;
        if version != MANIFEST_SCHEMA_VERSION as f64 {
            return Err(format!("unsupported schema_version {version}"));
        }
        match j.get("kind").and_then(Json::as_str) {
            Some(MANIFEST_KIND) => {}
            other => return Err(format!("kind {other:?} != {MANIFEST_KIND:?}")),
        }
        j.get("command")
            .and_then(Json::as_str)
            .ok_or("missing command")?;
        j.get("config")
            .and_then(Json::as_obj)
            .ok_or("missing config object")?;
        let ds = j.get("dataset").ok_or("missing dataset object")?;
        ds.get("path")
            .and_then(Json::as_str)
            .ok_or("dataset.path")?;
        ds.get("bytes")
            .and_then(Json::as_f64)
            .ok_or("dataset.bytes")?;
        ds.get("digest_fnv1a64")
            .and_then(Json::as_str)
            .ok_or("dataset.digest_fnv1a64")?;
        j.get("metrics")
            .and_then(Json::as_obj)
            .ok_or("missing metrics object")?;
        Ok(())
    }

    /// Parse *and* validate a manifest document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let j = Json::parse(text)?;
        Self::validate(&j)?;
        Ok(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    fn sample() -> Manifest {
        let mut m = Manifest::new("compress");
        m.set_config(&[
            ("bound", Value::F64(1e-3)),
            ("mode", Value::Str("abs".into())),
            ("threads", Value::U64(4)),
        ]);
        m.set_dataset("cldhgh.f32", 26_218_800, 0xdead_beef_cafe_f00d);
        let mut r = Report::default();
        r.counters.push(("encode.blocks".into(), 42));
        m.set_metrics(&r);
        m.set_quality(&[("ratio", Value::F64(8.5)), ("psnr_db", Value::F64(84.25))]);
        m
    }

    #[test]
    fn roundtrip_through_in_tree_parser() {
        let m = sample();
        let text = m.render();
        let j = Manifest::parse(&text).expect("own output validates");
        assert_eq!(j.get("command").unwrap().as_str(), Some("compress"));
        assert_eq!(
            j.get("config").unwrap().get("bound").unwrap().as_f64(),
            Some(1e-3)
        );
        assert_eq!(
            j.get("dataset")
                .unwrap()
                .get("digest_fnv1a64")
                .unwrap()
                .as_str(),
            Some("deadbeefcafef00d")
        );
        assert_eq!(
            j.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("encode.blocks")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
        assert_eq!(
            j.get("quality").unwrap().get("ratio").unwrap().as_f64(),
            Some(8.5)
        );
        // Render → parse → render must be a fixed point.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn validate_rejects_wrong_version_kind_and_missing_sections() {
        let good = Json::parse(&sample().render()).unwrap();
        Manifest::validate(&good).unwrap();

        let mut wrong_version = sample();
        wrong_version.set("schema_version", Json::Num(2.0));
        assert!(Manifest::validate(&wrong_version.to_json()).is_err());

        let mut wrong_kind = sample();
        wrong_kind.set("kind", Json::Str("bench_report".into()));
        assert!(Manifest::validate(&wrong_kind.to_json()).is_err());

        for doc in ["{}", "[]", "{\"schema_version\":1}"] {
            assert!(Manifest::parse(doc).is_err(), "{doc} must not validate");
        }
    }

    #[test]
    fn unknown_members_are_allowed() {
        let mut m = sample();
        m.set("future_field", Json::Str("ok".into()));
        Manifest::validate(&m.to_json()).unwrap();
    }
}
