//! Zone-stack publication for the sampling profiler (`szx-profile`).
//!
//! Every [`crate::trace_zone`] / [`crate::Span`] entry pushes the zone's
//! interned name id onto a per-thread stack and mirrors it into a
//! lock-free, fixed-depth [`ZoneSlot`]; the profiler's sampler thread
//! snapshots every registered slot at its tick rate. No new instrumentation
//! is required — the existing RAII guards are the only write sites.
//!
//! ## Memory-ordering protocol (seqlock, safe code only)
//!
//! The slot is a classic sequence lock, except the protected data is itself
//! atomic (`AtomicU32` frames and depth), so no `unsafe` is needed and a
//! torn read can never be undefined behavior — only an inconsistent
//! *combination* of frames, which the generation check rejects:
//!
//! * **Writer** (owning thread only): bump `gen` to odd with a relaxed
//!   store, issue a release fence, store the changed frame/depth words
//!   relaxed, then release-store `gen` back to even (+2). The release fence
//!   makes the data stores carry the odd `gen` with them: a reader that
//!   observes any new data and then acquire-reads `gen` sees the write in
//!   progress (odd) or finished (advanced), never the old even value.
//! * **Reader** (sampler thread): acquire-load `gen`; retry if odd; load
//!   the frames relaxed; issue an acquire fence; re-load `gen` relaxed and
//!   retry if it moved. A stable even `gen` across the reads proves no
//!   writer overlapped, so the copied stack is a consistent snapshot.
//!
//! Because every frame word is always a previously-interned name id (slots
//! start at depth 0 and ids are only ever stored after interning), even a
//! *rejected* torn read only ever observes registered ids — asserted by the
//! `zone_interleave` concurrency suite under Miri and TSan.
//!
//! ## Overhead
//!
//! With profiling disabled, [`zone_push`] is one relaxed bool load. Enabled,
//! a push costs a thread-local lookup, one hash-map probe (per-site interned
//! id cache), and four atomic stores; zones sit at phase/chunk granularity
//! (never per element), so this stays far below noise — see DESIGN.md §13
//! for the measured budget.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Frames beyond this depth are tracked on the thread's local stack but not
/// published; a deeper-than-cap sample keeps the rootmost frames and drops
/// the leaves. Current zone nesting in szx-core tops out around 5.
pub const MAX_STACK_DEPTH: usize = 16;

/// How many times a sampler retries one slot before skipping the thread for
/// this tick (counted as torn so the health telemetry sees starvation).
pub const TORN_RETRY_LIMIT: usize = 8;

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Is zone-stack publication on? One relaxed load; called from every
/// [`crate::trace_zone`], so it must stay branch-plus-load cheap.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turn zone-stack publication on/off. The profiler flips this around its
/// sampler lifetime; zones already open keep their balanced pop (the RAII
/// guard remembers whether its push happened).
pub fn set_profiling_enabled(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Interned zone names: id = index into `names`. Zone names are `&'static
/// str` literals, so the table only ever grows and ids stay valid for the
/// process lifetime.
struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERN: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERN.get_or_init(|| {
        Mutex::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

fn intern(name: &'static str) -> u32 {
    let mut i = interner().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = i.by_name.get(name) {
        return id;
    }
    // PANIC-OK: zone names are static program strings, not stream data;
    // 2^32 of them cannot exist in a real binary.
    let id = u32::try_from(i.names.len()).expect("fewer than 2^32 zone names");
    i.names.push(name);
    i.by_name.insert(name, id);
    id
}

/// Resolve an interned id back to its zone name (`None` for ids never
/// handed out — a sampler that sees one has found a protocol bug).
pub fn zone_name(id: u32) -> Option<&'static str> {
    let i = interner().lock().unwrap_or_else(|e| e.into_inner());
    i.names.get(id as usize).copied()
}

/// One thread's published zone stack. All fields are atomics, so the
/// seqlock only guards *consistency*, never memory safety.
struct ZoneSlot {
    /// Sequence counter: even = stable, odd = write in progress.
    gen: AtomicU64,
    /// Published depth, clamped to [`MAX_STACK_DEPTH`].
    depth: AtomicU32,
    /// Interned name ids, rootmost first; only `..depth` are meaningful.
    frames: [AtomicU32; MAX_STACK_DEPTH],
}

impl ZoneSlot {
    fn new() -> Self {
        ZoneSlot {
            gen: AtomicU64::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Seqlock write (owning thread only): publish the stack top after a
    /// push (`new_frame = Some`) or pop (`None`).
    fn publish(&self, depth: usize, new_frame: Option<(usize, u32)>) {
        // ORDERING: relaxed — this thread is the only writer of `gen`, so
        // it always reads its own last value back.
        let g = self.gen.load(Ordering::Relaxed);
        // ORDERING: relaxed odd store (seqlock write entry) — the Release
        // fence below is what publishes the odd value to readers together
        // with the data stores.
        self.gen.store(g.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        if let Some((i, id)) = new_frame {
            if i < MAX_STACK_DEPTH {
                // ORDERING: relaxed — consistency is guarded by `gen`, and
                // the value itself is always a valid interned id.
                // PANIC-OK: `i < MAX_STACK_DEPTH` = frames.len() just above.
                self.frames[i].store(id, Ordering::Relaxed);
            }
        }
        self.depth
            .store(depth.min(MAX_STACK_DEPTH) as u32, Ordering::Relaxed);
        self.gen.store(g.wrapping_add(2), Ordering::Release);
    }

    /// Seqlock read (sampler): copy a consistent stack into `out`, or
    /// return the number of torn attempts burned without success.
    fn snapshot(&self, out: &mut Vec<u32>) -> Result<(), u64> {
        let mut torn = 0u64;
        while (torn as usize) < TORN_RETRY_LIMIT {
            let g1 = self.gen.load(Ordering::Acquire);
            if g1 & 1 == 1 {
                torn += 1;
                continue;
            }
            out.clear();
            let depth = (self.depth.load(Ordering::Relaxed) as usize).min(MAX_STACK_DEPTH);
            for frame in &self.frames[..depth] {
                // ORDERING: relaxed — the acquire fence below pairs with
                // the writer's release fence; a changed `gen` re-read
                // rejects any mix of old and new frames.
                out.push(frame.load(Ordering::Relaxed));
            }
            fence(Ordering::Acquire);
            // ORDERING: relaxed re-read — the fence above already orders it
            // after the frame loads; equality with the even `g1` proves no
            // write overlapped the copy.
            if self.gen.load(Ordering::Relaxed) == g1 {
                return Ok(());
            }
            torn += 1;
        }
        out.clear();
        Err(torn)
    }
}

/// Registered slots, one per thread that ever entered a zone while
/// profiling was on. Arcs are shared with the owning threads' thread-locals
/// and garbage-collected once the owner exits (see [`sample_stacks`]).
fn slots() -> &'static Mutex<Vec<Arc<ZoneSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<ZoneSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Thread-local writer state: the full (unclamped) zone stack plus the
/// published slot and a per-pointer cache of interned ids so steady-state
/// pushes never touch the interner lock.
struct LocalZones {
    slot: Arc<ZoneSlot>,
    stack: Vec<u32>,
    /// Keyed by the `&'static str`'s address: one entry per call site.
    /// Distinct literals with equal text still intern to one id.
    id_cache: HashMap<*const u8, u32>,
}

thread_local! {
    static ZLOCAL: RefCell<Option<LocalZones>> = const { RefCell::new(None) };
}

/// Push `name` onto this thread's published zone stack. Returns `true` when
/// the push happened (profiling on) so the RAII guard knows to pop — a
/// guard created before profiling was enabled never pops, keeping the stack
/// balanced across runtime toggles.
#[inline]
pub fn zone_push(name: &'static str) -> bool {
    if !profiling_enabled() {
        return false;
    }
    zone_push_slow(name);
    true
}

#[cold]
fn zone_push_slow(name: &'static str) {
    ZLOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        let local = local.get_or_insert_with(|| {
            let slot = Arc::new(ZoneSlot::new());
            slots()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&slot));
            LocalZones {
                slot,
                stack: Vec::with_capacity(MAX_STACK_DEPTH),
                id_cache: HashMap::new(),
            }
        });
        let id = *local
            .id_cache
            .entry(name.as_ptr())
            .or_insert_with(|| intern(name));
        let i = local.stack.len();
        local.stack.push(id);
        local.slot.publish(local.stack.len(), Some((i, id)));
    });
}

/// Pop this thread's zone stack (called from the RAII guard's drop when the
/// matching push happened). Runs even if profiling was disabled meanwhile,
/// so the published stack stays balanced.
pub fn zone_pop() {
    ZLOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        if let Some(local) = local.as_mut() {
            if local.stack.pop().is_some() {
                local.slot.publish(local.stack.len(), None);
            }
        }
    });
}

/// Statistics from one [`sample_stacks`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleSweep {
    /// Slots registered at sweep time (threads that ever entered a zone
    /// while profiling was on, alive or parked).
    pub threads_seen: u64,
    /// Torn or in-progress reads retried (or given up) across all slots.
    pub torn_retries: u64,
    /// Non-empty stacks delivered to the callback.
    pub stacks: u64,
}

/// Snapshot every registered thread's zone stack, invoking `f` once per
/// non-empty consistent stack (rootmost frame first). Empty stacks (idle
/// threads) are skipped; slots whose owning thread has exited are drained
/// from the registry. Called from the sampler thread at its tick rate.
pub fn sample_stacks(mut f: impl FnMut(&[u32])) -> SampleSweep {
    let mut sweep = SampleSweep::default();
    let mut stack = Vec::with_capacity(MAX_STACK_DEPTH);
    let mut slots = slots().lock().unwrap_or_else(|e| e.into_inner());
    slots.retain(|slot| {
        sweep.threads_seen += 1;
        match slot.snapshot(&mut stack) {
            Ok(()) => {
                if !stack.is_empty() {
                    sweep.stacks += 1;
                    f(&stack);
                }
            }
            Err(torn) => sweep.torn_retries += torn,
        }
        // strong_count == 1 means the owning thread is gone; an exited
        // thread's stack is necessarily empty, so dropping the slot loses
        // no samples.
        Arc::strong_count(slot) > 1
    });
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiling state is process-global; serialize on the registry lock.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        let guard = crate::tests::lock_global();
        set_profiling_enabled(false);
        guard
    }

    #[test]
    fn disabled_push_is_a_no_op() {
        let _g = lock();
        assert!(!zone_push("test.zones.off"));
        let sweep = sample_stacks(|_| panic!("no stack should be published"));
        assert_eq!(sweep.stacks, 0);
    }

    #[test]
    fn push_pop_publishes_and_unpublishes() {
        let _g = lock();
        set_profiling_enabled(true);
        assert!(zone_push("test.zones.outer"));
        assert!(zone_push("test.zones.inner"));
        let mut seen = Vec::new();
        sample_stacks(|s| seen.push(s.to_vec()));
        assert_eq!(seen.len(), 1, "one thread published");
        let names: Vec<_> = seen[0].iter().map(|&id| zone_name(id).unwrap()).collect();
        assert_eq!(names, ["test.zones.outer", "test.zones.inner"]);
        zone_pop();
        zone_pop();
        set_profiling_enabled(false);
        let sweep = sample_stacks(|_| panic!("stack should be empty after pops"));
        assert_eq!(sweep.stacks, 0);
        assert_eq!(sweep.torn_retries, 0);
    }

    #[test]
    fn interning_is_stable_and_content_keyed() {
        let _g = lock();
        let a = intern("test.zones.same");
        let b = intern("test.zones.same");
        assert_eq!(a, b);
        assert_eq!(zone_name(a), Some("test.zones.same"));
        assert_eq!(zone_name(u32::MAX), None);
    }

    #[test]
    fn deeper_than_cap_keeps_rootmost_frames() {
        let _g = lock();
        set_profiling_enabled(true);
        for _ in 0..MAX_STACK_DEPTH + 4 {
            assert!(zone_push("test.zones.deep"));
        }
        let mut depths = Vec::new();
        sample_stacks(|s| depths.push(s.len()));
        assert_eq!(depths, [MAX_STACK_DEPTH]);
        for _ in 0..MAX_STACK_DEPTH + 4 {
            zone_pop();
        }
        set_profiling_enabled(false);
        let sweep = sample_stacks(|_| panic!("unbalanced after deep pops"));
        assert_eq!(sweep.stacks, 0);
    }

    #[test]
    fn guard_integration_via_trace_zone() {
        let _g = lock();
        set_profiling_enabled(true);
        {
            let _z = crate::trace_zone("test.zones.guard", 0);
            let mut seen = 0;
            sample_stacks(|s| {
                seen += 1;
                assert_eq!(zone_name(s[s.len() - 1]), Some("test.zones.guard"));
            });
            assert_eq!(seen, 1);
        }
        set_profiling_enabled(false);
        let sweep = sample_stacks(|_| panic!("guard drop must pop"));
        assert_eq!(sweep.stacks, 0);
    }

    #[test]
    fn toggle_mid_zone_keeps_stack_balanced() {
        let _g = lock();
        // Zone opened before profiling: its drop must not underflow.
        let outer = crate::trace_zone("test.zones.pre", 0);
        set_profiling_enabled(true);
        {
            let _inner = crate::trace_zone("test.zones.mid", 0);
        }
        drop(outer);
        let mut count = 0;
        sample_stacks(|_| count += 1);
        assert_eq!(count, 0, "all pushes popped, pre-toggle zone never pushed");
        set_profiling_enabled(false);
    }
}
