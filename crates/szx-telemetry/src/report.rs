//! Snapshots and sinks: a [`Report`] is an immutable copy of the registry,
//! renderable as a human table or a single JSON line (JSON-lines style, for
//! log scrapers).

use crate::hist::HistogramSnapshot;

/// Aggregated view of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanSnapshot {
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Extra report fields added by callers (e.g. the CLI's end-to-end
/// throughput), kept separate from registry-owned instruments.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Str(String),
}

/// Point-in-time copy of every instrument, plus caller-provided extras.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub counters: Vec<(String, u64)>,
    pub hists: Vec<(String, HistogramSnapshot)>,
    pub spans: Vec<(String, SpanSnapshot)>,
    pub extra: Vec<(String, Value)>,
}

impl Report {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn push_extra(&mut self, name: impl Into<String>, value: Value) {
        self.extra.push((name.into(), value));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Human-readable table sink.
pub fn render_table(report: &Report) -> String {
    let mut out = String::new();
    if !report.spans.is_empty() {
        out.push_str("spans:\n");
        for (name, s) in &report.spans {
            out.push_str(&format!(
                "  {name:<36} count {:>8}  total {:>12}  mean {:>12}\n",
                s.count,
                fmt_ns(s.total_ns as f64),
                fmt_ns(s.mean_ns()),
            ));
        }
    }
    if !report.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &report.counters {
            out.push_str(&format!("  {name:<36} {v:>12}\n"));
        }
    }
    if !report.hists.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &report.hists {
            out.push_str(&format!(
                "  {name:<36} count {:>8}  min {}  max {}  mean {:.2}\n",
                h.count,
                h.min,
                h.max,
                h.mean()
            ));
            let peak = h.buckets.iter().map(|&(_, n)| n).max().unwrap_or(1);
            for &(lo, n) in &h.buckets {
                let bar = "#".repeat(((n * 40).div_ceil(peak.max(1))) as usize);
                out.push_str(&format!("    {lo:>12} | {n:>10} {bar}\n"));
            }
        }
    }
    if !report.extra.is_empty() {
        out.push_str("derived:\n");
        for (name, v) in &report.extra {
            let rendered = match v {
                Value::U64(x) => x.to_string(),
                Value::F64(x) => format!("{x:.4}"),
                Value::Str(s) => s.clone(),
            };
            out.push_str(&format!("  {name:<36} {rendered:>12}\n"));
        }
    }
    out
}

pub(crate) fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Machine sink: the whole report as ONE JSON object on one line
/// (JSON-lines / ndjson framing — append reports to a log and parse line
/// by line).
pub fn render_jsonl(report: &Report) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"event\":\"szx_telemetry\"");

    o.push_str(",\"spans\":{");
    for (i, (name, s)) in report.spans.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push_str(&format!(
            ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.min_ns, s.max_ns
        ));
    }
    o.push('}');

    o.push_str(",\"counters\":{");
    for (i, (name, v)) in report.counters.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push_str(&format!(":{v}"));
    }
    o.push('}');

    o.push_str(",\"hists\":{");
    for (i, (name, h)) in report.hists.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            h.count, h.sum, h.min, h.max
        ));
        for (j, &(lo, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&format!("[{lo},{n}]"));
        }
        o.push_str("]}");
    }
    o.push('}');

    o.push_str(",\"derived\":{");
    for (i, (name, v)) in report.extra.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push(':');
        match v {
            Value::U64(x) => o.push_str(&x.to_string()),
            Value::F64(x) => json_f64(*x, &mut o),
            Value::Str(s) => json_escape(s, &mut o),
        }
    }
    o.push('}');

    o.push('}');
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{Histogram, HistogramKind};

    fn sample_report() -> Report {
        let h = Histogram::new(HistogramKind::Linear { max: 64 });
        h.record_n(20, 5);
        h.record(32);
        let mut r = Report {
            counters: vec![("c.a".into(), 3), ("c.b".into(), 0)],
            hists: vec![("h.req".into(), h.snapshot())],
            spans: vec![(
                "s.total".into(),
                SpanSnapshot {
                    count: 2,
                    total_ns: 1000,
                    min_ns: 400,
                    max_ns: 600,
                },
            )],
            extra: Vec::new(),
        };
        r.push_extra("throughput_gbps", Value::F64(1.25));
        r.push_extra("mode", Value::Str("serial".into()));
        r
    }

    #[test]
    fn table_mentions_every_instrument() {
        let t = render_table(&sample_report());
        for needle in [
            "c.a",
            "c.b",
            "h.req",
            "s.total",
            "throughput_gbps",
            "serial",
        ] {
            assert!(t.contains(needle), "table missing {needle}:\n{t}");
        }
    }

    #[test]
    fn jsonl_is_one_line_and_balanced() {
        let j = render_jsonl(&sample_report());
        assert!(!j.contains('\n'), "must be a single line");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.starts_with("{\"event\":\"szx_telemetry\""));
        assert!(j.contains("\"c.a\":3"));
        assert!(j.contains("\"buckets\":[[20,5],[32,1]]"));
        assert!(j.contains("\"throughput_gbps\":1.25"));
        assert!(j.contains("\"mode\":\"serial\""));
    }

    #[test]
    fn json_escaping_handles_special_chars() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        let mut s = String::new();
        json_f64(f64::NAN, &mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn report_lookup_helpers() {
        let r = sample_report();
        assert_eq!(r.counter("c.a"), Some(3));
        assert_eq!(r.counter("nope"), None);
        assert_eq!(r.hist("h.req").unwrap().count, 6);
        assert_eq!(r.span("s.total").unwrap().mean_ns(), 500.0);
    }
}
