//! Snapshots and sinks: a [`Report`] is an immutable copy of the registry,
//! renderable as a human table or a single JSON line (JSON-lines style, for
//! log scrapers).

use crate::hist::HistogramSnapshot;
use crate::snapshot::GaugeSnapshot;

/// Aggregated view of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanSnapshot {
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Extra report fields added by callers (e.g. the CLI's end-to-end
/// throughput), kept separate from registry-owned instruments.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Str(String),
}

/// Point-in-time copy of every instrument, plus caller-provided extras.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub counters: Vec<(String, u64)>,
    pub hists: Vec<(String, HistogramSnapshot)>,
    pub spans: Vec<(String, SpanSnapshot)>,
    /// `(name, snapshot)` pairs; the same name may appear once per label
    /// set (see [`crate::Registry::gauge_labeled`]).
    pub gauges: Vec<(String, GaugeSnapshot)>,
    pub extra: Vec<(String, Value)>,
}

impl Report {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Value of the *unlabeled* gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauge_labeled(name, &[])
    }

    /// Value of the gauge with exactly this name and label set.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, g)| {
                k == name
                    && g.labels.len() == labels.len()
                    && g.labels
                        .iter()
                        .zip(labels)
                        .all(|((gk, gv), &(lk, lv))| gk == lk && gv == lv)
            })
            .map(|(_, g)| g.value)
    }

    pub fn push_extra(&mut self, name: impl Into<String>, value: Value) {
        self.extra.push((name.into(), value));
    }
}

/// `name{k="v",…}` display key for a labeled gauge (bare name when the
/// label set is empty) — shared by the table and JSON-lines sinks.
fn gauge_key(name: &str, g: &GaugeSnapshot) -> String {
    if g.labels.is_empty() {
        return name.to_string();
    }
    let mut k = String::from(name);
    k.push('{');
    for (i, (lk, lv)) in g.labels.iter().enumerate() {
        if i > 0 {
            k.push(',');
        }
        k.push_str(&format!("{lk}=\"{lv}\""));
    }
    k.push('}');
    k
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Human-readable table sink.
pub fn render_table(report: &Report) -> String {
    let mut out = String::new();
    if !report.spans.is_empty() {
        out.push_str("spans:\n");
        for (name, s) in &report.spans {
            out.push_str(&format!(
                "  {name:<36} count {:>8}  total {:>12}  mean {:>12}\n",
                s.count,
                fmt_ns(s.total_ns as f64),
                fmt_ns(s.mean_ns()),
            ));
        }
    }
    if !report.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &report.counters {
            out.push_str(&format!("  {name:<36} {v:>12}\n"));
        }
    }
    if !report.hists.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &report.hists {
            let (p50, p95, p99) = h.percentiles();
            out.push_str(&format!(
                "  {name:<36} count {:>8}  min {}  max {}  mean {:.2}  \
                 p50 {p50:.1}  p95 {p95:.1}  p99 {p99:.1}\n",
                h.count,
                h.min,
                h.max,
                h.mean()
            ));
            let peak = h.buckets.iter().map(|&(_, n)| n).max().unwrap_or(1);
            for &(lo, n) in &h.buckets {
                let bar = "#".repeat(((n * 40).div_ceil(peak.max(1))) as usize);
                out.push_str(&format!("    {lo:>12} | {n:>10} {bar}\n"));
            }
        }
    }
    if !report.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, g) in &report.gauges {
            out.push_str(&format!("  {:<36} {:>12.3}\n", gauge_key(name, g), g.value));
        }
    }
    if !report.extra.is_empty() {
        out.push_str("derived:\n");
        for (name, v) in &report.extra {
            let rendered = match v {
                Value::U64(x) => x.to_string(),
                Value::F64(x) => format!("{x:.4}"),
                Value::Str(s) => s.clone(),
            };
            out.push_str(&format!("  {name:<36} {rendered:>12}\n"));
        }
    }
    out
}

pub(crate) fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Machine sink: the whole report as ONE JSON object on one line
/// (JSON-lines / ndjson framing — append reports to a log and parse line
/// by line).
pub fn render_jsonl(report: &Report) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"event\":\"szx_telemetry\"");

    o.push_str(",\"spans\":{");
    for (i, (name, s)) in report.spans.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push_str(&format!(
            ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.min_ns, s.max_ns
        ));
    }
    o.push('}');

    o.push_str(",\"counters\":{");
    for (i, (name, v)) in report.counters.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push_str(&format!(":{v}"));
    }
    o.push('}');

    o.push_str(",\"hists\":{");
    for (i, (name, h)) in report.hists.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        let (p50, p95, p99) = h.percentiles();
        o.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},",
            h.count, h.sum, h.min, h.max
        ));
        o.push_str("\"p50\":");
        json_f64(p50, &mut o);
        o.push_str(",\"p95\":");
        json_f64(p95, &mut o);
        o.push_str(",\"p99\":");
        json_f64(p99, &mut o);
        o.push_str(",\"buckets\":[");
        for (j, &(lo, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&format!("[{lo},{n}]"));
        }
        o.push_str("]}");
    }
    o.push('}');

    o.push_str(",\"gauges\":{");
    for (i, (name, g)) in report.gauges.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(&gauge_key(name, g), &mut o);
        o.push(':');
        json_f64(g.value, &mut o);
    }
    o.push('}');

    o.push_str(",\"derived\":{");
    for (i, (name, v)) in report.extra.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        json_escape(name, &mut o);
        o.push(':');
        match v {
            Value::U64(x) => o.push_str(&x.to_string()),
            Value::F64(x) => json_f64(*x, &mut o),
            Value::Str(s) => json_escape(s, &mut o),
        }
    }
    o.push('}');

    o.push('}');
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{Histogram, HistogramKind};

    fn sample_report() -> Report {
        let h = Histogram::new(HistogramKind::Linear { max: 64 });
        h.record_n(20, 5);
        h.record(32);
        let mut r = Report {
            counters: vec![("c.a".into(), 3), ("c.b".into(), 0)],
            hists: vec![("h.req".into(), h.snapshot())],
            spans: vec![(
                "s.total".into(),
                SpanSnapshot {
                    count: 2,
                    total_ns: 1000,
                    min_ns: 400,
                    max_ns: 600,
                },
            )],
            gauges: vec![
                (
                    "g.rss".into(),
                    GaugeSnapshot {
                        labels: Vec::new(),
                        value: 2048.0,
                    },
                ),
                (
                    "g.rss".into(),
                    GaugeSnapshot {
                        labels: vec![("phase".into(), "compress".into())],
                        value: 1024.0,
                    },
                ),
            ],
            extra: Vec::new(),
        };
        r.push_extra("throughput_gbps", Value::F64(1.25));
        r.push_extra("mode", Value::Str("serial".into()));
        r
    }

    #[test]
    fn table_mentions_every_instrument() {
        let t = render_table(&sample_report());
        for needle in [
            "c.a",
            "c.b",
            "h.req",
            "s.total",
            "g.rss",
            "g.rss{phase=\"compress\"}",
            "p50",
            "throughput_gbps",
            "serial",
        ] {
            assert!(t.contains(needle), "table missing {needle}:\n{t}");
        }
    }

    #[test]
    fn jsonl_is_one_line_and_balanced() {
        let j = render_jsonl(&sample_report());
        assert!(!j.contains('\n'), "must be a single line");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.starts_with("{\"event\":\"szx_telemetry\""));
        assert!(j.contains("\"c.a\":3"));
        assert!(j.contains("\"buckets\":[[20,5],[32,1]]"));
        assert!(j.contains("\"p50\":20"));
        assert!(j.contains("\"g.rss\":2048"));
        assert!(j.contains("\"g.rss{phase=\\\"compress\\\"}\":1024"));
        assert!(j.contains("\"throughput_gbps\":1.25"));
        assert!(j.contains("\"mode\":\"serial\""));
    }

    #[test]
    fn json_escaping_handles_special_chars() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        let mut s = String::new();
        json_f64(f64::NAN, &mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn report_lookup_helpers() {
        let r = sample_report();
        assert_eq!(r.counter("c.a"), Some(3));
        assert_eq!(r.counter("nope"), None);
        assert_eq!(r.hist("h.req").unwrap().count, 6);
        assert_eq!(r.span("s.total").unwrap().mean_ns(), 500.0);
        assert_eq!(r.gauge("g.rss"), Some(2048.0));
        assert_eq!(
            r.gauge_labeled("g.rss", &[("phase", "compress")]),
            Some(1024.0)
        );
        assert_eq!(r.gauge_labeled("g.rss", &[("phase", "nope")]), None);
    }

    #[test]
    fn linear_histogram_quantiles_are_exact() {
        // 5 observations of 20 and one of 32: p50 -> 20, p99/p100 -> 32.
        let r = sample_report();
        let h = r.hist("h.req").unwrap();
        assert_eq!(h.quantile(0.50), 20.0);
        assert_eq!(h.quantile(0.99), 32.0);
        assert_eq!(h.quantile(1.0), 32.0);
        assert_eq!(h.quantile(0.0), 20.0, "q=0 lands in the first bucket");
    }

    #[test]
    fn log2_histogram_quantiles_interpolate_within_bucket() {
        let h = Histogram::new(HistogramKind::Log2);
        // 100 values in bucket [64, 127].
        h.record_n(100, 100);
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        assert!(
            (64.0..=127.0).contains(&p50),
            "p50 {p50} must stay inside its bucket"
        );
        // Clamped to observed extrema: all values were exactly 100.
        assert!(s.quantile(0.999) <= s.max as f64 + 1e-9);
        assert!(s.quantile(0.001) >= s.min as f64 - 1e-9);
    }
}
