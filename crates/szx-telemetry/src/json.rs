//! A minimal JSON value model with a recursive-descent parser and a
//! renderer — just enough to validate this workspace's machine outputs
//! (Chrome traces, `BENCH_*.json` reports) and to read them back without
//! external dependencies.
//!
//! Numbers are held as `f64` (every value this workspace serializes fits
//! well inside the 2^53 integer-exact range). Object member order is
//! preserved; duplicate keys keep the first occurrence on lookup.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, any
    /// other trailing content is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Render compactly (no whitespace). Non-finite numbers become `null`,
    /// matching the JSON-lines sink's convention.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}: {other:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}: {other:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates are replaced, not paired — the
                            // workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: `self.bytes` came from a `&str` and `self.pos`
                    // only ever advances by whole UTF-8 scalars (1 for ASCII
                    // arms, `len_utf8()` here), so the tail at `pos..` is
                    // always valid UTF-8.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(false)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = Json::Obj(vec![
            ("n".into(), Json::Num(3.5)),
            ("s".into(), Json::Str("q\"uote\n".into())),
            (
                "a".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-7.0)]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&doc).is_err());
    }

    #[test]
    fn existing_sinks_parse() {
        // The JSON-lines report sink's output must be valid by this parser.
        let mut r = crate::Report::default();
        r.counters.push(("a.b".into(), 3));
        r.push_extra("mode", crate::Value::Str("serial".into()));
        let line = crate::render_jsonl(&r);
        let v = Json::parse(&line).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_f64(),
            Some(3.0)
        );
    }
}
