//! Live progress metering for streaming runs: per-frame updates fold into
//! an EWMA throughput estimate, a running compression ratio, and an ETA,
//! rendered as a single carriage-return status line by the CLI's
//! `--progress` flag.
//!
//! The meter is plain single-threaded state — the CLI owns it on the
//! streaming thread and calls [`ProgressMeter::on_frame`] once per frame,
//! which is far off any per-element hot path.

use std::time::Instant;

/// Smoothing factor: each new frame contributes 30% to the throughput
/// estimate, so the line settles within a few frames without jittering on
/// every scheduler hiccup.
const EWMA_ALPHA: f64 = 0.3;

/// Frames completing faster than this (coarse clocks can report ~0 elapsed
/// for a cache-hot first frame) clamp to it instead of dividing by ~0 —
/// `raw/1e9/ε` otherwise seeds the EWMA with an absurd or infinite GB/s
/// that pollutes the line and the ETA for many frames.
const MIN_FRAME_SECONDS: f64 = 1e-6;

/// Derived view after one frame, ready to render.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    pub frames: u64,
    pub raw_bytes: u64,
    pub compressed_bytes: u64,
    /// Smoothed raw-input throughput in GB/s (1e9 bytes).
    pub gbps: f64,
    /// Running `raw / compressed`; 0 until compressed bytes exist.
    pub ratio: f64,
    /// Seconds remaining at the smoothed rate; `None` without a known
    /// total or before any throughput estimate exists.
    pub eta_seconds: Option<f64>,
    /// Fraction complete in `[0, 1]`; `None` without a known total.
    pub fraction: Option<f64>,
}

impl ProgressSnapshot {
    /// One status line, e.g.
    /// `42.0% | 1.234 GB/s | ratio 8.41 | eta 3.2s | 128 MiB of 305 MiB`.
    pub fn render_line(&self) -> String {
        let mut line = String::with_capacity(96);
        if let Some(f) = self.fraction {
            line.push_str(&format!("{:5.1}% | ", f * 100.0));
        }
        line.push_str(&format!("{:.3} GB/s | ratio {:.2}", self.gbps, self.ratio));
        if let Some(eta) = self.eta_seconds {
            line.push_str(&format!(" | eta {eta:.1}s"));
        }
        line.push_str(&format!(" | {} processed", fmt_bytes(self.raw_bytes)));
        line
    }
}

fn fmt_bytes(b: u64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= 1024.0 * MIB {
        format!("{:.2} GiB", b / (1024.0 * MIB))
    } else if b >= MIB {
        format!("{:.1} MiB", b / MIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Folds per-frame `(raw, compressed)` byte counts into smoothed
/// throughput / ratio / ETA. Clock reads happen once per frame.
pub struct ProgressMeter {
    total_raw_bytes: Option<u64>,
    raw_bytes: u64,
    compressed_bytes: u64,
    frames: u64,
    ewma_gbps: Option<f64>,
    last_frame_at: Instant,
}

impl ProgressMeter {
    /// `total_raw_bytes` enables the percentage and ETA; pass `None` for
    /// unbounded streams (stdin).
    pub fn new(total_raw_bytes: Option<u64>) -> ProgressMeter {
        ProgressMeter {
            total_raw_bytes,
            raw_bytes: 0,
            compressed_bytes: 0,
            frames: 0,
            ewma_gbps: None,
            last_frame_at: Instant::now(),
        }
    }

    /// Record one completed frame and return the snapshot to render.
    pub fn on_frame(&mut self, raw_bytes: u64, compressed_bytes: u64) -> ProgressSnapshot {
        let now = Instant::now();
        let dt = now.duration_since(self.last_frame_at).as_secs_f64();
        self.last_frame_at = now;
        self.frames += 1;
        self.raw_bytes += raw_bytes;
        self.compressed_bytes += compressed_bytes;
        let inst = raw_bytes as f64 / 1e9 / dt.max(MIN_FRAME_SECONDS);
        self.ewma_gbps = Some(match self.ewma_gbps {
            None => inst, // first frame seeds the estimate
            Some(prev) => EWMA_ALPHA * inst + (1.0 - EWMA_ALPHA) * prev,
        });
        self.snapshot()
    }

    pub fn snapshot(&self) -> ProgressSnapshot {
        let gbps = self.ewma_gbps.unwrap_or(0.0);
        let ratio = if self.compressed_bytes > 0 {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        } else {
            0.0
        };
        let fraction = self
            .total_raw_bytes
            .map(|t| (self.raw_bytes as f64 / t.max(1) as f64).min(1.0));
        let eta_seconds = match (self.total_raw_bytes, self.ewma_gbps) {
            (Some(total), Some(g)) if g > 0.0 => {
                Some(total.saturating_sub(self.raw_bytes) as f64 / 1e9 / g)
            }
            _ => None,
        };
        ProgressSnapshot {
            frames: self.frames,
            raw_bytes: self.raw_bytes,
            compressed_bytes: self.compressed_bytes,
            gbps,
            ratio,
            eta_seconds,
            fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_fraction_accumulate() {
        let mut m = ProgressMeter::new(Some(1000));
        m.on_frame(400, 100);
        let s = m.on_frame(100, 25);
        assert_eq!(s.frames, 2);
        assert_eq!(s.raw_bytes, 500);
        assert_eq!(s.compressed_bytes, 125);
        assert!((s.ratio - 4.0).abs() < 1e-12);
        assert_eq!(s.fraction, Some(0.5));
    }

    #[test]
    fn ewma_smooths_toward_new_rate() {
        let mut m = ProgressMeter::new(None);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let first = m.on_frame(1_000_000, 100);
        assert!(first.gbps > 0.0, "first frame seeds the estimate");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = m.on_frame(2_000_000, 100);
        // The estimate moves, but only by the smoothing factor.
        assert!(second.gbps > 0.0);
        assert_eq!(second.eta_seconds, None, "no total, no ETA");
        assert_eq!(second.fraction, None);
    }

    #[test]
    fn eta_counts_down_with_progress() {
        let mut m = ProgressMeter::new(Some(2_000_000));
        std::thread::sleep(std::time::Duration::from_millis(1));
        let s = m.on_frame(1_000_000, 500);
        let eta = s.eta_seconds.expect("total + estimate => ETA");
        assert!(eta > 0.0);
        let line = s.render_line();
        assert!(line.contains("GB/s"), "{line}");
        assert!(line.contains("ratio"), "{line}");
        assert!(line.contains("eta"), "{line}");
        assert!(line.contains("50.0%"), "{line}");
    }

    #[test]
    fn zero_elapsed_frames_stay_finite() {
        // Back-to-back frames with no measurable elapsed time: the clamp
        // must keep throughput and ETA finite (no `inf GB/s` in the line).
        let mut m = ProgressMeter::new(Some(1 << 30));
        for _ in 0..4 {
            let s = m.on_frame(8 << 20, 1 << 20);
            assert!(s.gbps.is_finite(), "gbps {}", s.gbps);
            assert!(s.gbps >= 0.0);
            if let Some(eta) = s.eta_seconds {
                assert!(eta.is_finite() && eta >= 0.0, "eta {eta}");
            }
            let line = s.render_line();
            assert!(!line.contains("inf"), "{line}");
            assert!(!line.contains("NaN"), "{line}");
        }
    }

    #[test]
    fn zero_compressed_bytes_is_not_a_division() {
        let m = ProgressMeter::new(None);
        let s = m.snapshot();
        assert_eq!(s.ratio, 0.0);
        assert_eq!(s.gbps, 0.0);
        let _ = s.render_line();
    }
}
