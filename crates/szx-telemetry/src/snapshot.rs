//! Gauges and the snapshot **diff** algebra.
//!
//! The registry's counters/histograms/spans are cumulative for the process
//! lifetime; a long-lived embedder (or the future `szx-serve` daemon) wants
//! *per-interval* numbers instead. [`diff`] subtracts one [`Report`] from a
//! later one under per-instrument semantics:
//!
//! * **counters** are monotonic — the diff is `current − baseline`,
//!   saturating at zero so a registry reset between snapshots can never
//!   produce an underflowed garbage value;
//! * **gauges** are instantaneous, last-wins — the diff *is* the current
//!   value;
//! * **histograms** subtract bucket-wise (count/sum likewise saturating);
//!   min/max are not recoverable from aggregates, so the interval keeps the
//!   current snapshot's extrema (documented approximation);
//! * **spans** subtract count/total; min/max keep the current extrema for
//!   the same reason.
//!
//! [`Gauge`] itself is the one instrument the original registry lacked: an
//! instantaneous `f64` with optional labels (e.g. `phase="compress"`), set
//! by the resource accountant (peak RSS, CPU time) and the scratch-arena
//! plumbing in `szx-core`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::report::{Report, SpanSnapshot};

const R: Ordering = Ordering::Relaxed;

/// A last-wins instantaneous value (peak RSS, arena bytes, queue depth).
/// Stored as `f64` bits in one atomic: `set` is a plain store, so concurrent
/// setters race benignly — the last writer wins and values are never torn.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the gauge (last writer wins).
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), R);
    }

    /// Convenience for byte/element counts published as gauges.
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Raise the gauge to `v` if `v` is larger — peak tracking. NaN inputs
    /// are ignored (the comparison is false).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(R);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(cur, v.to_bits(), R, R) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(R))
    }

    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Point-in-time view of one gauge, with its label set (possibly empty).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// `(key, value)` label pairs in registration order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// What happened *between* two snapshots of the same registry — see the
/// module docs for the per-instrument semantics. Instruments that exist
/// only in `baseline` (possible after a reset) are dropped; instruments
/// only in `current` diff against zero.
pub fn diff(baseline: &Report, current: &Report) -> Report {
    let counters = current
        .counters
        .iter()
        .map(|(name, cur)| {
            let base = baseline.counter(name).unwrap_or(0);
            (name.clone(), cur.saturating_sub(base))
        })
        .collect();

    let spans = current
        .spans
        .iter()
        .map(|(name, cur)| {
            let base = baseline.span(name).copied().unwrap_or(SpanSnapshot {
                count: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
            });
            (
                name.clone(),
                SpanSnapshot {
                    count: cur.count.saturating_sub(base.count),
                    total_ns: cur.total_ns.saturating_sub(base.total_ns),
                    // Interval extrema are not recoverable from aggregates;
                    // keep the lifetime extrema of the current snapshot.
                    min_ns: cur.min_ns,
                    max_ns: cur.max_ns,
                },
            )
        })
        .collect();

    let hists = current
        .hists
        .iter()
        .map(|(name, cur)| {
            let mut h = cur.clone();
            if let Some(base) = baseline.hist(name) {
                h.count = h.count.saturating_sub(base.count);
                h.sum = h.sum.saturating_sub(base.sum);
                let base_of = |lo: u64| {
                    base.buckets
                        .iter()
                        .find(|&&(l, _)| l == lo)
                        .map_or(0, |&(_, n)| n)
                };
                h.buckets = h
                    .buckets
                    .iter()
                    .filter_map(|&(lo, n)| {
                        let d = n.saturating_sub(base_of(lo));
                        (d > 0).then_some((lo, d))
                    })
                    .collect();
            }
            (name.clone(), h)
        })
        .collect();

    Report {
        counters,
        hists,
        spans,
        // Gauges are instantaneous: the interval value IS the current one.
        gauges: current.gauges.clone(),
        extra: current.extra.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{Histogram, HistogramKind};
    use crate::Registry;

    #[test]
    fn gauge_is_last_wins_and_peak_tracks() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(5.0);
        g.set(3.0);
        assert_eq!(g.get(), 3.0, "plain set is last-wins");
        g.set_max(2.0);
        assert_eq!(g.get(), 3.0, "set_max never lowers");
        g.set_max(9.5);
        assert_eq!(g.get(), 9.5);
        g.set_max(f64::NAN);
        assert_eq!(g.get(), 9.5, "NaN ignored");
    }

    #[test]
    fn counter_diff_is_monotonic_and_saturating() {
        let r = Registry::new();
        r.counter("c").add(10);
        let base = r.snapshot();
        r.counter("c").add(7);
        r.counter("new").add(2);
        let d = diff(&base, &r.snapshot());
        assert_eq!(d.counter("c"), Some(7));
        assert_eq!(d.counter("new"), Some(2), "new counters diff against 0");

        // A reset between snapshots must saturate to 0, not wrap.
        r.reset();
        r.counter("c").add(3);
        let d = diff(&base, &r.snapshot());
        assert_eq!(d.counter("c"), Some(0));
    }

    #[test]
    fn gauge_diff_is_last_wins() {
        let r = Registry::new();
        r.gauge("g").set(100.0);
        let base = r.snapshot();
        r.gauge("g").set(42.0);
        let d = diff(&base, &r.snapshot());
        assert_eq!(d.gauge("g"), Some(42.0), "diff reports the current value");
    }

    #[test]
    fn span_and_hist_diff_subtract() {
        let r = Registry::new();
        r.span_stats("s").record(100);
        r.hist_log2("h").record(4);
        r.hist_log2("h").record(5);
        let base = r.snapshot();
        r.span_stats("s").record(300);
        r.hist_log2("h").record(5);
        r.hist_log2("h").record(1000);
        let d = diff(&base, &r.snapshot());
        let s = d.span("s").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_ns, 300);
        let h = d.hist("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1005);
        // Bucket lo 4 held {4,5} in the baseline and gained one more 5.
        assert_eq!(h.buckets, vec![(4, 1), (512, 1)]);
    }

    #[test]
    fn identical_snapshots_diff_to_zero() {
        let r = Registry::new();
        r.counter("c").add(4);
        r.span_stats("s").record(9);
        r.hist_linear("h", 8).record(2);
        let a = r.snapshot();
        let b = r.snapshot();
        let d = diff(&a, &b);
        assert_eq!(d.counter("c"), Some(0));
        assert_eq!(d.span("s").unwrap().count, 0);
        assert_eq!(d.hist("h").unwrap().count, 0);
        assert!(d.hist("h").unwrap().buckets.is_empty());
    }

    #[test]
    fn diff_preserves_histogram_kind() {
        let a = Histogram::new(HistogramKind::Linear { max: 8 });
        a.record(3);
        let r = Registry::new();
        r.hist_linear("h", 8).record(3);
        let base = r.snapshot();
        r.hist_linear("h", 8).record(7);
        let d = diff(&base, &r.snapshot());
        assert_eq!(d.hist("h").unwrap().kind, a.snapshot().kind);
    }
}
