//! Resource accounting: a background sampler thread that reads
//! `/proc/self/{status,statm,stat}` and publishes process gauges —
//! resident set size, its peak, and user/system CPU time — plus per-phase
//! peak RSS attributed to whichever [`crate::Span`] is innermost at each
//! sample.
//!
//! Everything here is best-effort and strictly read-only: on platforms
//! without procfs the sampler publishes the gauges once at zero and exits
//! (the promised "no-op gauges" portable fallback). The final sample at
//! [`ResourceAccountant::stop`] reads `VmHWM` — the kernel's own
//! high-water mark — so the reported peak is exact even if the sampler
//! never woke during a transient spike.
//!
//! Gauges published (bytes / seconds):
//!
//! | gauge                              | meaning                          |
//! |------------------------------------|----------------------------------|
//! | `process.rss_bytes`                | resident set at last sample      |
//! | `process.peak_rss_bytes`           | `VmHWM` (exact at stop)          |
//! | `process.utime_seconds`            | user CPU since process start     |
//! | `process.stime_seconds`            | system CPU since process start   |
//! | `process.phase_peak_rss_bytes{phase=…}` | peak RSS while that span was innermost |

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

const R: Ordering = Ordering::Relaxed;

// ---------------------------------------------------------------------------
// Phase tracking: which span is innermost right now?

static PHASE_TRACKING: AtomicBool = AtomicBool::new(false);
static PHASE_NEXT_ID: AtomicU64 = AtomicU64::new(1);
static PHASE_STACK: Mutex<Vec<(u64, &'static str)>> = Mutex::new(Vec::new());

/// Turn phase tracking on/off. Off (the default), [`crate::span`] pays one
/// relaxed load and nothing else; on, each span push/pops a global stack
/// the sampler labels its per-phase gauges from. Flipped automatically by
/// [`ResourceAccountant::start`]/`stop`.
pub fn set_phase_tracking(on: bool) {
    PHASE_TRACKING.store(on, R);
    if !on {
        PHASE_STACK
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

#[inline]
pub(crate) fn phase_push(name: &'static str) -> Option<u64> {
    if !PHASE_TRACKING.load(R) {
        return None;
    }
    let id = PHASE_NEXT_ID.fetch_add(1, R);
    PHASE_STACK
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id, name));
    Some(id)
}

pub(crate) fn phase_pop(id: u64) {
    let mut stack = PHASE_STACK.lock().unwrap_or_else(|e| e.into_inner());
    // Spans can end out of stack order across threads; remove by identity.
    if let Some(i) = stack.iter().rposition(|&(pid, _)| pid == id) {
        stack.remove(i);
    }
}

/// Name of the innermost live tracked span, if any.
pub fn current_phase() -> Option<&'static str> {
    PHASE_STACK
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .last()
        .map(|&(_, name)| name)
}

// ---------------------------------------------------------------------------
// /proc parsing (pure string functions, unit-testable off-Linux)

/// One process sample; all fields best-effort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProcSample {
    pub rss_bytes: u64,
    /// Kernel high-water mark (`VmHWM`); 0 when only `statm` was readable.
    pub peak_rss_bytes: u64,
    pub utime_seconds: f64,
    pub stime_seconds: f64,
}

/// `VmRSS:    1234 kB`-style line values from `/proc/self/status`, in bytes.
pub(crate) fn parse_status_kb(status: &str, key: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start_matches(':').trim();
            let kb: u64 = rest.split_whitespace().next()?.parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Resident bytes from `/proc/self/statm` (second field, in pages; the
/// kernel page size is 4 KiB on every platform this workspace targets).
pub(crate) fn parse_statm_resident(statm: &str) -> Option<u64> {
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// `(utime, stime)` seconds from a `/proc/self/stat` line. The comm field
/// may contain spaces and parentheses, so tokens are counted from after
/// the *last* `)`: state is token 0, utime token 11, stime token 12.
/// Ticks are divided by the de-facto universal `USER_HZ` of 100.
pub(crate) fn parse_stat_cpu(stat: &str) -> Option<(f64, f64)> {
    let after = &stat[stat.rfind(')')? + 1..];
    let mut toks = after.split_whitespace();
    let utime: u64 = toks.nth(11)?.parse().ok()?;
    let stime: u64 = toks.next()?.parse().ok()?;
    Some((utime as f64 / 100.0, stime as f64 / 100.0))
}

/// Read one sample from procfs; `None` where `/proc/self` is unavailable.
pub fn read_proc_sample() -> Option<ProcSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok();
    let rss_bytes = status
        .as_deref()
        .and_then(|s| parse_status_kb(s, "VmRSS"))
        .or_else(|| {
            std::fs::read_to_string("/proc/self/statm")
                .ok()
                .as_deref()
                .and_then(parse_statm_resident)
        })?;
    let peak_rss_bytes = status
        .as_deref()
        .and_then(|s| parse_status_kb(s, "VmHWM"))
        .unwrap_or(0);
    let (utime_seconds, stime_seconds) = std::fs::read_to_string("/proc/self/stat")
        .ok()
        .as_deref()
        .and_then(parse_stat_cpu)
        .unwrap_or((0.0, 0.0));
    Some(ProcSample {
        rss_bytes,
        peak_rss_bytes,
        utime_seconds,
        stime_seconds,
    })
}

fn publish(sample: &ProcSample) {
    let reg = crate::global();
    reg.gauge("process.rss_bytes").set_u64(sample.rss_bytes);
    let peak = reg.gauge("process.peak_rss_bytes");
    peak.set_max(sample.peak_rss_bytes as f64);
    peak.set_max(sample.rss_bytes as f64);
    reg.gauge("process.utime_seconds").set(sample.utime_seconds);
    reg.gauge("process.stime_seconds").set(sample.stime_seconds);
    if let Some(phase) = current_phase() {
        reg.gauge_labeled("process.phase_peak_rss_bytes", &[("phase", phase)])
            .set_max(sample.rss_bytes as f64);
    }
}

fn publish_zeroes() {
    let reg = crate::global();
    for name in [
        "process.rss_bytes",
        "process.peak_rss_bytes",
        "process.utime_seconds",
        "process.stime_seconds",
    ] {
        reg.gauge(name).set(0.0);
    }
}

// ---------------------------------------------------------------------------
// The sampler thread

/// Owns the sampler thread; construct with [`start`](Self::start), finish
/// with [`stop`](Self::stop) (also run on drop). The thread holds no locks
/// between samples and costs one procfs read per interval.
pub struct ResourceAccountant {
    stop_tx: Option<mpsc::Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl ResourceAccountant {
    /// Spawn the sampler (and enable phase tracking). `interval` is how
    /// often procfs is polled; 50–200 ms keeps the cost unmeasurable.
    pub fn start(interval: Duration) -> Self {
        set_phase_tracking(true);
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("szx-resource-sampler".into())
            .spawn(move || {
                if read_proc_sample().is_none() {
                    // Portable fallback: gauges exist, values stay zero.
                    publish_zeroes();
                    return;
                }
                loop {
                    if let Some(s) = read_proc_sample() {
                        publish(&s);
                    }
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => continue,
                        _ => break,
                    }
                }
            })
            .ok();
        ResourceAccountant {
            stop_tx: Some(stop_tx),
            handle,
        }
    }

    /// Stop the sampler, take a final exact-peak sample (`VmHWM`), and
    /// disable phase tracking.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop_tx.is_none() && self.handle.is_none() {
            return; // already stopped (stop() followed by drop)
        }
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(s) = read_proc_sample() {
            publish(&s);
        }
        set_phase_tracking(false);
    }
}

impl Drop for ResourceAccountant {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_kb_parsing() {
        let status = "Name:\tszx\nVmPeak:\t  999 kB\nVmRSS:\t  1234 kB\nVmHWM:\t 2000 kB\n";
        assert_eq!(parse_status_kb(status, "VmRSS"), Some(1234 * 1024));
        assert_eq!(parse_status_kb(status, "VmHWM"), Some(2000 * 1024));
        assert_eq!(parse_status_kb(status, "VmSwap"), None);
    }

    #[test]
    fn statm_resident_parsing() {
        assert_eq!(
            parse_statm_resident("5000 300 120 5 0 190 0"),
            Some(300 * 4096)
        );
        assert_eq!(parse_statm_resident(""), None);
    }

    #[test]
    fn stat_cpu_parsing_survives_hostile_comm() {
        // comm contains spaces AND a ')': tokens must count from the LAST ')'.
        let stat = "1234 (a b) c) R 1 1 1 0 -1 4194304 100 0 0 0 250 75 0 0 20 0 1 0 100 1000 50";
        let (u, s) = parse_stat_cpu(stat).unwrap();
        assert!((u - 2.5).abs() < 1e-9, "utime {u}");
        assert!((s - 0.75).abs() < 1e-9, "stime {s}");
        assert_eq!(parse_stat_cpu("no parens here"), None);
    }

    #[test]
    fn phase_stack_tracks_innermost_and_out_of_order_pops() {
        set_phase_tracking(true);
        let a = phase_push("compress").unwrap();
        let b = phase_push("encode").unwrap();
        assert_eq!(current_phase(), Some("encode"));
        phase_pop(a); // outer ends first (cross-thread interleave)
        assert_eq!(current_phase(), Some("encode"));
        phase_pop(b);
        assert_eq!(current_phase(), None);
        set_phase_tracking(false);
        assert_eq!(phase_push("ignored"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_sample_reads_plausible_values() {
        let s = read_proc_sample().expect("procfs available on linux");
        assert!(s.rss_bytes > 0, "a running test has nonzero RSS");
        assert!(s.peak_rss_bytes >= s.rss_bytes);
    }
}
