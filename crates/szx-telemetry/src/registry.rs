//! The global name → instrument registry.
//!
//! Instruments are created on first use and live for the process lifetime;
//! lookups take a read lock, so callers on hot paths should hold the
//! returned `Arc` (or, better, accumulate locally and flush once per call —
//! the pattern `szx-core` uses).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::hist::{Histogram, HistogramKind};
use crate::report::{Report, SpanSnapshot};
use crate::snapshot::{Gauge, GaugeSnapshot};

/// Gauges are keyed by name *plus* label set — `(name, [(k, v), …])` — so
/// `process.phase_peak_rss_bytes{phase="compress"}` and `{phase="write"}`
/// are distinct instruments.
type GaugeKey = (String, Vec<(String, String)>);

const R: Ordering = Ordering::Relaxed;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, R);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(R)
    }

    pub fn reset(&self) {
        self.0.store(0, R);
    }
}

/// Aggregated timings of one span name.
#[derive(Debug)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    fn new() -> Self {
        SpanStats {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, R);
        self.total_ns.fetch_add(ns, R);
        self.min_ns.fetch_min(ns, R);
        self.max_ns.fetch_max(ns, R);
    }

    pub fn snapshot(&self) -> SpanSnapshot {
        let count = self.count.load(R);
        SpanSnapshot {
            count,
            total_ns: self.total_ns.load(R),
            min_ns: if count == 0 { 0 } else { self.min_ns.load(R) },
            max_ns: self.max_ns.load(R),
        }
    }

    fn reset(&self) {
        self.count.store(0, R);
        self.total_ns.store(0, R);
        self.min_ns.store(u64::MAX, R);
        self.max_ns.store(0, R);
    }
}

/// Holds every named instrument. Normally accessed through
/// [`crate::global`]; independent registries are constructible for tests.
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    hists: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<&'static str, Arc<SpanStats>>>,
    gauges: RwLock<BTreeMap<GaugeKey, Arc<Gauge>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            hists: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
        }
    }

    fn get_or_insert<T>(
        map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
        name: &'static str,
        make: impl FnOnce() -> T,
    ) -> Arc<T> {
        // PANIC-OK: lock poisoning is not data-dependent — it only occurs
        // after another thread has already panicked while registering.
        if let Some(v) = map.read().expect("registry poisoned").get(name) {
            return Arc::clone(v);
        }
        // PANIC-OK: as above — poisoning, not untrusted input.
        let mut w = map.write().expect("registry poisoned");
        Arc::clone(w.entry(name).or_insert_with(|| Arc::new(make())))
    }

    /// Counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name, Counter::default)
    }

    /// Log2-bucketed histogram (latencies, sizes).
    pub fn hist_log2(&self, name: &'static str) -> Arc<Histogram> {
        Self::get_or_insert(&self.hists, name, || Histogram::new(HistogramKind::Log2))
    }

    /// Linear histogram over `0..=max` (small bounded domains; a histogram
    /// created once keeps its original `max`).
    pub fn hist_linear(&self, name: &'static str, max: u64) -> Arc<Histogram> {
        Self::get_or_insert(&self.hists, name, || {
            Histogram::new(HistogramKind::Linear { max })
        })
    }

    /// Aggregated span stats for `name` (usually fed by [`crate::span`]).
    pub fn span_stats(&self, name: &'static str) -> Arc<SpanStats> {
        Self::get_or_insert(&self.spans, name, SpanStats::new)
    }

    /// Unlabeled gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_labeled(name, &[])
    }

    /// Labeled gauge: `(name, labels)` is the instrument identity. Unlike
    /// counters/histograms, gauge names are not `&'static` — the label
    /// values (phase names, field names) are often computed at runtime.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key: GaugeKey = (
            name.to_string(),
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        // PANIC-OK: lock poisoning is not data-dependent — it only occurs
        // after another thread has already panicked while registering.
        if let Some(g) = self.gauges.read().expect("registry poisoned").get(&key) {
            return Arc::clone(g);
        }
        // PANIC-OK: as above — poisoning, not untrusted input.
        let mut w = self.gauges.write().expect("registry poisoned");
        Arc::clone(w.entry(key).or_default())
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Report {
        Report {
            counters: self
                .counters
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            hists: self
                .hists
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            spans: self
                .spans
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|((name, labels), g)| {
                    (
                        name.clone(),
                        GaugeSnapshot {
                            labels: labels.clone(),
                            value: g.get(),
                        },
                    )
                })
                .collect(),
            extra: Vec::new(),
        }
    }

    /// Zero all instruments (names stay registered).
    pub fn reset(&self) {
        for c in self.counters.read().expect("registry poisoned").values() {
            c.reset();
        }
        for h in self.hists.read().expect("registry poisoned").values() {
            h.reset();
        }
        for s in self.spans.read().expect("registry poisoned").values() {
            s.reset();
        }
        for g in self.gauges.read().expect("registry poisoned").values() {
            g.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.counter("b").incr();
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.counter("b").get(), 1);
    }

    #[test]
    fn snapshot_contains_all_instruments() {
        let r = Registry::new();
        r.counter("n").add(7);
        r.hist_log2("h").record(100);
        r.hist_linear("l", 8).record(3);
        r.span_stats("s").record(500);
        r.gauge("g").set(1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), Some(7));
        assert_eq!(snap.hist("h").unwrap().count, 1);
        assert_eq!(snap.hist("l").unwrap().buckets, vec![(3, 1)]);
        assert_eq!(snap.span("s").unwrap().total_ns, 500);
        assert_eq!(snap.gauge("g"), Some(1.5));
    }

    #[test]
    fn labeled_gauges_are_distinct_instruments() {
        let r = Registry::new();
        r.gauge_labeled("phase.rss", &[("phase", "compress")])
            .set(10.0);
        r.gauge_labeled("phase.rss", &[("phase", "write")])
            .set(20.0);
        r.gauge_labeled("phase.rss", &[("phase", "compress")])
            .set_max(15.0);
        let snap = r.snapshot();
        assert_eq!(
            snap.gauge_labeled("phase.rss", &[("phase", "compress")]),
            Some(15.0)
        );
        assert_eq!(
            snap.gauge_labeled("phase.rss", &[("phase", "write")]),
            Some(20.0)
        );
        assert_eq!(snap.gauge("phase.rss"), None, "unlabeled variant unset");
    }

    #[test]
    fn reset_keeps_names_but_zeroes_values() {
        let r = Registry::new();
        r.counter("x").add(9);
        r.span_stats("sp").record(10);
        r.gauge("g").set(4.0);
        r.reset();
        assert_eq!(r.counter("x").get(), 0);
        assert_eq!(r.snapshot().span("sp").unwrap().count, 0);
        assert_eq!(r.snapshot().gauge("g"), Some(0.0));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("hot");
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(r.counter("hot").get(), 40_000);
    }
}
