//! Export sinks: Prometheus text exposition for snapshots and a process-wide
//! JSON-lines **event sink** for streaming (per-frame) events.
//!
//! The Prometheus renderer follows text format 0.0.4: every metric is
//! prefixed `szx_`, counters get the `_total` suffix, histograms expose
//! cumulative `_bucket{le="…"}` series plus `_sum`/`_count`, and spans
//! export as `summary`-typed `<name>_seconds_{sum,count}` pairs. Metric
//! names are sanitized ([`sanitize_metric_name`]) and label values escaped
//! ([`escape_label_value`]) so arbitrary instrument names can't corrupt the
//! exposition.
//!
//! The event sink is the streaming counterpart of the one-shot report
//! sinks: [`install_event_sink`] points the process at any `Write + Send`
//! target, after which [`emit_event`] appends one JSON object per line.
//! When no sink is installed the emit path is one relaxed atomic load —
//! the same zero-cost-when-off discipline as the rest of the crate.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::report::{json_escape, Report, Value};

/// Sanitize an instrument name into a Prometheus metric name: every char
/// outside `[a-zA-Z0-9_:]` becomes `_`, a leading digit gets an extra `_`,
/// and the result is prefixed `szx_` (which also guarantees a valid first
/// character). `encode.block_count` → `szx_encode_block_count`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("szx_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double quote,
/// and line feed are escaped; everything else passes through.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".into()
    } else if v > 0.0 {
        "+Inf".into()
    } else {
        "-Inf".into()
    }
}

/// Render a [`Report`] as a Prometheus text exposition (format 0.0.4).
///
/// * counters → `counter`, name suffixed `_total`;
/// * gauges → `gauge`, labels preserved (one `# TYPE` line per name);
/// * histograms → `histogram` with cumulative `_bucket{le="hi"}` series
///   over the *inclusive upper bounds* of the non-empty buckets, a final
///   `+Inf` bucket, `_sum`, and `_count`;
/// * spans → `summary` as `<name>_seconds_sum` / `<name>_seconds_count`
///   (nanoseconds converted to seconds), plus companion
///   `<name>_seconds_min`/`_max` gauges since aggregated extrema don't fit
///   the summary model;
/// * `extra` entries → gauges (numeric) or info-style gauges with the value
///   in a label (strings).
pub fn render_prometheus(report: &Report) -> String {
    let mut o = String::with_capacity(4096);

    for (name, v) in &report.counters {
        let m = sanitize_metric_name(name);
        o.push_str(&format!("# TYPE {m}_total counter\n{m}_total {v}\n"));
    }

    let mut last_gauge: Option<&str> = None;
    for (name, g) in &report.gauges {
        let m = sanitize_metric_name(name);
        if last_gauge != Some(name.as_str()) {
            o.push_str(&format!("# TYPE {m} gauge\n"));
            last_gauge = Some(name.as_str());
        }
        o.push_str(&m);
        if !g.labels.is_empty() {
            o.push('{');
            for (i, (k, v)) in g.labels.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                o.push_str(&format!(
                    "{}=\"{}\"",
                    sanitize_label_name(k),
                    escape_label_value(v)
                ));
            }
            o.push('}');
        }
        o.push_str(&format!(" {}\n", fmt_f64(g.value)));
    }

    for (name, h) in &report.hists {
        let m = sanitize_metric_name(name);
        o.push_str(&format!("# TYPE {m} histogram\n"));
        let mut cum = 0u64;
        for &(lo, n) in &h.buckets {
            cum += n;
            let le = h.kind.bucket_hi_of_lo(lo);
            o.push_str(&format!("{m}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        o.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        o.push_str(&format!("{m}_sum {}\n{m}_count {}\n", h.sum, h.count));
    }

    for (name, s) in &report.spans {
        let m = sanitize_metric_name(name);
        o.push_str(&format!("# TYPE {m}_seconds summary\n"));
        o.push_str(&format!(
            "{m}_seconds_sum {}\n",
            fmt_f64(s.total_ns as f64 / 1e9)
        ));
        o.push_str(&format!("{m}_seconds_count {}\n", s.count));
        o.push_str(&format!("# TYPE {m}_seconds_min gauge\n"));
        o.push_str(&format!(
            "{m}_seconds_min {}\n",
            fmt_f64(s.min_ns as f64 / 1e9)
        ));
        o.push_str(&format!("# TYPE {m}_seconds_max gauge\n"));
        o.push_str(&format!(
            "{m}_seconds_max {}\n",
            fmt_f64(s.max_ns as f64 / 1e9)
        ));
    }

    for (name, v) in &report.extra {
        let m = sanitize_metric_name(name);
        match v {
            Value::U64(x) => o.push_str(&format!("# TYPE {m} gauge\n{m} {x}\n")),
            Value::F64(x) => o.push_str(&format!("# TYPE {m} gauge\n{m} {}\n", fmt_f64(*x))),
            Value::Str(s) => o.push_str(&format!(
                "# TYPE {m}_info gauge\n{m}_info{{value=\"{}\"}} 1\n",
                escape_label_value(s)
            )),
        }
    }

    o
}

fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

// ---------------------------------------------------------------------------
// JSON-lines event sink

static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK_SEQ: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Is an event sink installed? One relaxed load — callers building
/// non-trivial event payloads should gate on this first.
#[inline]
pub fn event_sink_installed() -> bool {
    SINK_INSTALLED.load(Ordering::Relaxed)
}

/// Install (or replace) the process-wide event sink. Subsequent
/// [`emit_event`] calls append one JSON line each to `w`.
pub fn install_event_sink(w: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    *sink = Some(w);
    SINK_SEQ.store(0, Ordering::Relaxed);
    SINK_INSTALLED.store(true, Ordering::Relaxed);
}

/// Remove the event sink and return it (flushed), e.g. to close the file
/// deterministically at end of run. `None` if nothing was installed.
pub fn take_event_sink() -> Option<Box<dyn Write + Send>> {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    SINK_INSTALLED.store(false, Ordering::Relaxed);
    let mut w = sink.take()?;
    let _ = w.flush();
    Some(w)
}

/// Append one event line: `{"event":NAME,"seq":N,"ts_ms":…,FIELDS…}`.
/// No-op (one atomic load) when no sink is installed; write errors are
/// swallowed after disabling the sink — telemetry must never take down the
/// compression run it observes.
pub fn emit_event(name: &str, fields: &[(&str, Value)]) {
    if !event_sink_installed() {
        return;
    }
    let seq = SINK_SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(128);
    line.push_str("{\"event\":");
    json_escape(name, &mut line);
    line.push_str(&format!(",\"seq\":{seq},\"ts_ms\":{ts_ms}"));
    for (k, v) in fields {
        line.push(',');
        json_escape(k, &mut line);
        line.push(':');
        match v {
            Value::U64(x) => line.push_str(&x.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    line.push_str(&format!("{x}"));
                } else {
                    line.push_str("null");
                }
            }
            Value::Str(s) => json_escape(s, &mut line),
        }
    }
    line.push_str("}\n");
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = sink.as_mut() {
        if w.write_all(line.as_bytes()).is_err() {
            *sink = None;
            SINK_INSTALLED.store(false, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{Histogram, HistogramKind};
    use crate::json::Json;
    use crate::report::SpanSnapshot;
    use crate::snapshot::GaugeSnapshot;
    use std::sync::mpsc;

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(
            sanitize_metric_name("encode.block_count"),
            "szx_encode_block_count"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "szx_a_b_c");
        assert_eq!(sanitize_metric_name("0weird"), "szx_0weird");
        assert_eq!(sanitize_label_name("le-gal"), "le_gal");
        assert_eq!(sanitize_label_name("9x"), "_x");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let h = Histogram::new(HistogramKind::Log2);
        h.record(3); // bucket [2,3]
        h.record(3);
        h.record(100); // bucket [64,127]
        let mut r = Report::default();
        r.hists.push(("h".into(), h.snapshot()));
        let p = render_prometheus(&r);
        assert!(p.contains("szx_h_bucket{le=\"3\"} 2\n"), "{p}");
        assert!(p.contains("szx_h_bucket{le=\"127\"} 3\n"), "{p}");
        assert!(p.contains("szx_h_bucket{le=\"+Inf\"} 3\n"), "{p}");
        assert!(p.contains("szx_h_sum 106\n"), "{p}");
        assert!(p.contains("szx_h_count 3\n"), "{p}");
    }

    #[test]
    fn golden_exposition_snapshot() {
        let h = Histogram::new(HistogramKind::Linear { max: 4 });
        h.record(1);
        h.record(2);
        let mut r = Report::default();
        r.counters.push(("blocks.total".into(), 9));
        r.gauges.push((
            "rss.bytes".into(),
            GaugeSnapshot {
                labels: Vec::new(),
                value: 4096.0,
            },
        ));
        r.gauges.push((
            "rss.bytes".into(),
            GaugeSnapshot {
                labels: vec![("phase".into(), "compress".into())],
                value: 1024.0,
            },
        ));
        r.hists.push(("len".into(), h.snapshot()));
        r.spans.push((
            "total".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 3_000_000_000,
                min_ns: 1_000_000_000,
                max_ns: 2_000_000_000,
            },
        ));
        r.push_extra("ratio", Value::F64(5.5));
        r.push_extra("mode", Value::Str("serial".into()));
        let got = render_prometheus(&r);
        let want = "\
# TYPE szx_blocks_total_total counter
szx_blocks_total_total 9
# TYPE szx_rss_bytes gauge
szx_rss_bytes 4096
szx_rss_bytes{phase=\"compress\"} 1024
# TYPE szx_len histogram
szx_len_bucket{le=\"1\"} 1
szx_len_bucket{le=\"2\"} 2
szx_len_bucket{le=\"+Inf\"} 2
szx_len_sum 3
szx_len_count 2
# TYPE szx_total_seconds summary
szx_total_seconds_sum 3
szx_total_seconds_count 2
# TYPE szx_total_seconds_min gauge
szx_total_seconds_min 1
# TYPE szx_total_seconds_max gauge
szx_total_seconds_max 2
# TYPE szx_ratio gauge
szx_ratio 5.5
# TYPE szx_mode_info gauge
szx_mode_info{value=\"serial\"} 1
";
        assert_eq!(got, want);
    }

    /// A `Write` handing each chunk to an mpsc channel, so the test can
    /// observe what the global sink wrote without files.
    struct ChanWriter(mpsc::Sender<Vec<u8>>);
    impl Write for ChanWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let _ = self.0.send(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn event_sink_emits_parseable_json_lines() {
        let (tx, rx) = mpsc::channel();
        install_event_sink(Box::new(ChanWriter(tx)));
        emit_event(
            "frame",
            &[
                ("raw_bytes", Value::U64(4096)),
                ("ratio", Value::F64(5.25)),
                ("field", Value::Str("CLDHGH".into())),
            ],
        );
        emit_event("done", &[]);
        take_event_sink();
        emit_event("after_close", &[]); // must be a silent no-op
        let written: Vec<u8> = rx.try_iter().flatten().collect();
        let text = String::from_utf8(written).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("frame"));
        assert_eq!(first.get("seq").unwrap().as_f64(), Some(0.0));
        assert_eq!(first.get("raw_bytes").unwrap().as_f64(), Some(4096.0));
        assert_eq!(first.get("ratio").unwrap().as_f64(), Some(5.25));
        assert_eq!(first.get("field").unwrap().as_str(), Some("CLDHGH"));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("seq").unwrap().as_f64(), Some(1.0));
    }
}
