//! Lock-free histograms: log2-bucketed for latencies/sizes spanning orders
//! of magnitude, linear for small bounded domains (e.g. required lengths
//! 0..=64).

use std::sync::atomic::{AtomicU64, Ordering};

const R: Ordering = Ordering::Relaxed;

/// Bucketing scheme of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Bucket `i` holds values `v` with `floor(log2(max(v,1))) == i`;
    /// 64 buckets cover the whole `u64` range.
    Log2,
    /// Bucket `i` holds exactly the value `i`; values above `max` clamp
    /// into the last bucket. `max + 1` buckets.
    Linear { max: u64 },
}

impl HistogramKind {
    fn num_buckets(self) -> usize {
        match self {
            HistogramKind::Log2 => 64,
            HistogramKind::Linear { max } => max as usize + 1,
        }
    }

    #[inline]
    fn bucket_of(self, v: u64) -> usize {
        match self {
            HistogramKind::Log2 => 63 - (v | 1).leading_zeros() as usize,
            HistogramKind::Linear { max } => v.min(max) as usize,
        }
    }

    /// Lower bound of bucket `i` (inclusive), for rendering.
    pub fn bucket_lo(self, i: usize) -> u64 {
        match self {
            HistogramKind::Log2 => {
                if i == 0 {
                    0
                } else {
                    1u64 << i
                }
            }
            HistogramKind::Linear { .. } => i as u64,
        }
    }

    /// Inclusive upper bound of the bucket whose lower bound is `lo` (as
    /// stored in [`HistogramSnapshot::buckets`]). The clamped last linear
    /// bucket nominally extends to infinity; it reports `lo` here and the
    /// snapshot's observed `max` bounds it in practice.
    pub fn bucket_hi_of_lo(self, lo: u64) -> u64 {
        match self {
            HistogramKind::Log2 => {
                if lo == 0 {
                    1
                } else {
                    lo.saturating_mul(2).saturating_sub(1)
                }
            }
            HistogramKind::Linear { .. } => lo,
        }
    }
}

/// A thread-safe histogram with count/sum/min/max plus bucket counts.
/// All updates are relaxed atomics — merges from local collectors cost one
/// `fetch_add` per non-empty bucket.
pub struct Histogram {
    kind: HistogramKind,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub fn new(kind: HistogramKind) -> Self {
        Histogram {
            kind,
            buckets: (0..kind.num_buckets()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value (how local collectors
    /// flush whole buckets at once).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[self.kind.bucket_of(v)].fetch_add(n, R);
        self.count.fetch_add(n, R);
        self.sum.fetch_add(v.saturating_mul(n), R);
        self.min.fetch_min(v, R);
        self.max.fetch_max(v, R);
    }

    /// Fold another histogram's snapshot in (used when merging per-thread
    /// collectors; kinds must match).
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        assert_eq!(self.kind, snap.kind, "histogram kind mismatch on merge");
        for &(lo, n) in &snap.buckets {
            self.buckets[self.kind.bucket_of(lo)].fetch_add(n, R);
        }
        self.count.fetch_add(snap.count, R);
        self.sum.fetch_add(snap.sum, R);
        if snap.count > 0 {
            self.min.fetch_min(snap.min, R);
            self.max.fetch_max(snap.max, R);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(R);
        HistogramSnapshot {
            kind: self.kind,
            count,
            sum: self.sum.load(R),
            min: if count == 0 { 0 } else { self.min.load(R) },
            max: self.max.load(R),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(R);
                    (n > 0).then(|| (self.kind.bucket_lo(i), n))
                })
                .collect(),
        }
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, R);
        }
        self.count.store(0, R);
        self.sum.store(0, R);
        self.min.store(u64::MAX, R);
        self.max.store(0, R);
    }
}

/// Point-in-time view of a [`Histogram`]; only non-empty buckets are kept,
/// as `(bucket lower bound, count)` pairs in ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub kind: HistogramKind,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), 0.0 for an empty histogram.
    ///
    /// The containing bucket is found exactly from the bucket counts; the
    /// position *inside* it is linearly interpolated (values assumed
    /// uniform within the bucket). The error is therefore bounded by the
    /// bucket width: **exact** for linear histograms (unit-width buckets,
    /// except the clamped last bucket), and within the bucket `[lo, 2·lo)`
    /// for log2 histograms — i.e. a relative error strictly below 2×. The
    /// result is additionally clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Fractional rank in [1, count]: p50 of 4 values targets rank 2,
        // p100 targets rank 4 (the maximum).
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for &(lo, n) in &self.buckets {
            cum += n;
            if cum as f64 >= rank {
                let hi = self.kind.bucket_hi_of_lo(lo) as f64;
                let lo = lo as f64;
                let frac = (rank - (cum - n) as f64) / n as f64;
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// The `(p50, p95, p99)` triple the report sinks print.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing_boundaries() {
        let k = HistogramKind::Log2;
        assert_eq!(k.bucket_of(0), 0);
        assert_eq!(k.bucket_of(1), 0);
        assert_eq!(k.bucket_of(2), 1);
        assert_eq!(k.bucket_of(3), 1);
        assert_eq!(k.bucket_of(4), 2);
        assert_eq!(k.bucket_of(1023), 9);
        assert_eq!(k.bucket_of(1024), 10);
        assert_eq!(k.bucket_of(u64::MAX), 63);
        assert_eq!(k.bucket_lo(0), 0);
        assert_eq!(k.bucket_lo(10), 1024);
    }

    #[test]
    fn linear_bucketing_clamps_at_max() {
        let k = HistogramKind::Linear { max: 64 };
        assert_eq!(k.num_buckets(), 65);
        assert_eq!(k.bucket_of(0), 0);
        assert_eq!(k.bucket_of(64), 64);
        assert_eq!(k.bucket_of(900), 64);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let h = Histogram::new(HistogramKind::Log2);
        for v in [3u64, 5, 100, 100, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 215);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 43.0).abs() < 1e-12);
        // 3 -> bucket lo 2, 5 and 7 -> lo 4, 100 (x2) -> lo 64.
        assert_eq!(s.buckets, vec![(2, 1), (4, 2), (64, 2)]);
    }

    #[test]
    fn merge_snapshot_is_additive() {
        let a = Histogram::new(HistogramKind::Linear { max: 10 });
        let b = Histogram::new(HistogramKind::Linear { max: 10 });
        for v in [1u64, 2, 2, 9] {
            a.record(v);
        }
        for v in [2u64, 10, 10] {
            b.record(v);
        }
        a.merge_snapshot(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.buckets, vec![(1, 1), (2, 3), (9, 1), (10, 2)]);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::new(HistogramKind::Log2);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new(HistogramKind::Log2);
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
        h.record(7);
        assert_eq!(h.snapshot().min, 7);
    }
}
