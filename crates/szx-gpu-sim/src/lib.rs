//! # szx-gpu-sim
//!
//! A deterministic SIMT execution model — warps, shuffles, ballots, shared
//! memory, barriers, all charged to an operation counter — hosting the
//! **cuSZx** kernels of the SZx paper's §6.2:
//!
//! * warp-level min/max reductions for block classification;
//! * the two-level in-warp prefix scan that breaks the mid-byte address
//!   dependency (Solution 1);
//! * predecessor re-reads that break the compression value dependency
//!   (Solution 2);
//! * the recursive-doubling **index propagation** of Figure 11 that
//!   resolves leading-byte RAW chains during parallel decompression.
//!
//! The kernels are validated *byte-for-byte* against the CPU codec: the
//! simulated device produces identical compressed streams and identical
//! reconstructions. A physical cost model ([`cost::GpuSpec`]) converts the
//! counted operations into modeled A100/V100 throughput for the Figure
//! 14/15 experiments; see `models` for the cuSZ-like and cuZFP-like
//! comparator models.

#![forbid(unsafe_code)]

pub mod cost;
pub mod cusz_kernels;
pub mod kernels;
pub mod machine;
pub mod models;

pub use cost::{Cost, GpuSpec, A100, V100};
pub use kernels::{compress_gpu, decompress_gpu};
