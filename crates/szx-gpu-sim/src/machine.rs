//! The SIMT execution model: warp-synchronous primitives over lane arrays,
//! with every operation charged to a [`Cost`] counter.
//!
//! A *block* is a flat lane array whose length is a multiple of the warp
//! width (32). Primitives mirror CUDA warp intrinsics: `__shfl_up_sync`,
//! `__shfl_xor_sync`, ballots, and warp reductions; block-wide collectives
//! (scan, max-propagation) compose them exactly as §6.2 of the paper
//! describes — two-level in-warp shuffles with shared memory carrying the
//! per-warp partials across the seam.

use crate::cost::Cost;

/// Lanes per warp, as on every NVIDIA GPU.
pub const WARP: usize = 32;

/// Charge one warp-wide instruction per warp covering `lanes` lanes.
#[inline]
fn charge_warp_inst(cost: &mut Cost, lanes: usize) {
    cost.warp_instructions += lanes.div_ceil(WARP) as u64;
}

/// `__shfl_up_sync` within each 32-lane warp segment: lane `i` receives the
/// value of lane `i - delta` in its warp, or keeps its own value when the
/// source is out of range (CUDA semantics).
pub fn shfl_up<T: Copy>(vals: &[T], delta: usize, cost: &mut Cost) -> Vec<T> {
    cost.shuffles += vals.len().div_ceil(WARP) as u64;
    let mut out = vals.to_vec();
    for warp_start in (0..vals.len()).step_by(WARP) {
        let end = (warp_start + WARP).min(vals.len());
        for i in warp_start..end {
            let lane = i - warp_start;
            if lane >= delta {
                out[i] = vals[i - delta];
            }
        }
    }
    out
}

/// `__shfl_xor_sync`: butterfly exchange within each warp.
// Lane-indexed on purpose: `i` is the lane id, matching the shuffle's
// source-lane arithmetic.
#[allow(clippy::needless_range_loop)]
pub fn shfl_xor<T: Copy>(vals: &[T], mask: usize, cost: &mut Cost) -> Vec<T> {
    cost.shuffles += vals.len().div_ceil(WARP) as u64;
    let mut out = vals.to_vec();
    for warp_start in (0..vals.len()).step_by(WARP) {
        let end = (warp_start + WARP).min(vals.len());
        for i in warp_start..end {
            let lane = i - warp_start;
            let src = lane ^ mask;
            if warp_start + src < end {
                out[i] = vals[warp_start + src];
            }
        }
    }
    out
}

/// Warp-level min/max reduction via `shfl_xor` butterflies, then a block
/// combine through shared memory — the §6.2.1 "parallel min and max with
/// CUDA warp-level operations". Returns (min, max) of all lanes.
pub fn block_minmax(vals: &[f32], cost: &mut Cost) -> (f32, f32) {
    assert!(!vals.is_empty());
    let mut mins = vals.to_vec();
    let mut maxs = vals.to_vec();
    let mut mask = 1;
    while mask < WARP {
        let m2 = shfl_xor(&mins, mask, cost);
        let x2 = shfl_xor(&maxs, mask, cost);
        charge_warp_inst(cost, vals.len()); // min op
        charge_warp_inst(cost, vals.len()); // max op
        for i in 0..vals.len() {
            if m2[i] < mins[i] {
                mins[i] = m2[i];
            }
            if x2[i] > maxs[i] {
                maxs[i] = x2[i];
            }
        }
        mask <<= 1;
    }
    // Lane 0 of each warp holds the warp result; combine via shared memory.
    let nwarps = vals.len().div_ceil(WARP);
    cost.shared_ops += nwarps as u64; // stores
    cost.barriers += 1;
    cost.shared_ops += 1; // first warp loads the partials
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for w in 0..nwarps {
        let m = mins[w * WARP];
        let x = maxs[w * WARP];
        if m < lo {
            lo = m;
        }
        if x > hi {
            hi = x;
        }
    }
    charge_warp_inst(cost, WARP.min(vals.len())); // final reduce in warp 0
    (lo, hi)
}

/// Block-wide *exclusive* prefix sum over u32 lanes, built from two-level
/// in-warp shuffle scans (Solution 1 of §6.2.2): intra-warp Hillis–Steele
/// scan, per-warp totals staged in shared memory, warp-0 scan of the
/// totals, then a broadcast add.
pub fn block_exclusive_scan(vals: &[u32], cost: &mut Cost) -> Vec<u32> {
    let n = vals.len();
    let mut inclusive: Vec<u32> = vals.to_vec();
    let mut delta = 1;
    while delta < WARP {
        let shifted = shfl_up(&inclusive, delta, cost);
        charge_warp_inst(cost, n);
        for i in 0..n {
            if i % WARP >= delta {
                inclusive[i] = inclusive[i].wrapping_add(shifted[i]);
            }
        }
        delta <<= 1;
    }
    // Stage warp totals.
    let nwarps = n.div_ceil(WARP);
    let mut warp_totals = Vec::with_capacity(nwarps);
    for w in 0..nwarps {
        let last = (w * WARP + WARP - 1).min(n - 1);
        warp_totals.push(inclusive[last]);
    }
    cost.shared_ops += nwarps as u64;
    cost.barriers += 1;
    // Warp 0 scans the totals (sequentially here; ≤ 32 of them = one warp).
    let mut warp_offsets = vec![0u32; nwarps];
    let mut acc = 0u32;
    for w in 0..nwarps {
        warp_offsets[w] = acc;
        acc = acc.wrapping_add(warp_totals[w]);
    }
    cost.shuffles += 5; // log2(32) shuffle steps in warp 0
    cost.warp_instructions += 5;
    cost.barriers += 1;
    // Broadcast add + convert inclusive -> exclusive.
    charge_warp_inst(cost, n);
    let mut out = vec![0u32; n];
    for i in 0..n {
        let w = i / WARP;
        out[i] = inclusive[i]
            .wrapping_add(warp_offsets[w])
            .wrapping_sub(vals[i]);
    }
    out
}

/// Block-wide max-index propagation in recursive-doubling style — the
/// paper's *index propagation* (§6.2.2, Figure 11) that resolves the
/// leading-byte dependence chains of parallel decompression. Each lane
/// starts with its own index if it *owns* a value (mid-byte) or a sentinel
/// if it must inherit; after `log2(n)` rounds every lane knows the index of
/// the nearest owner at or before it. Intra-warp rounds are shuffles;
/// cross-warp seams go through shared memory.
pub fn block_propagate_max(idx: &[i64], cost: &mut Cost) -> Vec<i64> {
    let n = idx.len();
    let mut cur = idx.to_vec();
    let mut stride = 1;
    while stride < n {
        // One propagation round: lane i takes max(own, lane i-stride).
        // Within-warp traffic is a shuffle; lanes whose source crosses a
        // warp boundary read a shared-memory mirror written beforehand.
        cost.shuffles += n.div_ceil(WARP) as u64;
        cost.shared_ops += 2; // mirror store + load per round (warp-wide)
        charge_warp_inst(cost, n);
        cost.barriers += 1;
        let mut next = cur.clone();
        for i in stride..n {
            if cur[i - stride] > next[i] {
                next[i] = cur[i - stride];
            }
        }
        cur = next;
        stride <<= 1;
    }
    cur
}

/// Account a coalesced global read of `bytes`.
#[inline]
pub fn global_read(cost: &mut Cost, bytes: usize) {
    cost.global_read_bytes += bytes as u64;
}

/// Account a coalesced global write of `bytes`.
#[inline]
pub fn global_write(cost: &mut Cost, bytes: usize) {
    cost.global_write_bytes += bytes as u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shfl_up_semantics() {
        let mut c = Cost::default();
        let v: Vec<u32> = (0..64).collect();
        let s = shfl_up(&v, 1, &mut c);
        assert_eq!(s[0], 0, "lane 0 keeps own value");
        assert_eq!(s[1], 0);
        assert_eq!(s[31], 30);
        assert_eq!(s[32], 32, "warp boundary: lane 32 keeps own value");
        assert_eq!(s[33], 32);
        assert_eq!(c.shuffles, 2, "two warps");
    }

    #[test]
    fn shfl_xor_butterfly() {
        let mut c = Cost::default();
        let v: Vec<u32> = (0..32).collect();
        let s = shfl_xor(&v, 16, &mut c);
        assert_eq!(s[0], 16);
        assert_eq!(s[16], 0);
        assert_eq!(s[5], 21);
    }

    #[test]
    fn block_minmax_matches_sequential() {
        let mut c = Cost::default();
        let v: Vec<f32> = (0..128).map(|i| ((i * 37) % 97) as f32 - 50.0).collect();
        let (lo, hi) = block_minmax(&v, &mut c);
        let slo = v.iter().cloned().fold(f32::INFINITY, f32::min);
        let shi = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(lo, slo);
        assert_eq!(hi, shi);
        assert!(c.shuffles > 0 && c.warp_instructions > 0 && c.barriers > 0);
    }

    #[test]
    fn block_minmax_partial_warp() {
        let mut c = Cost::default();
        let v: Vec<f32> = vec![3.0, -1.0, 7.0];
        assert_eq!(block_minmax(&v, &mut c), (-1.0, 7.0));
    }

    #[test]
    fn exclusive_scan_matches_sequential() {
        let mut c = Cost::default();
        let v: Vec<u32> = (0..128).map(|i| (i * 7 % 5) as u32 + 1).collect();
        let scan = block_exclusive_scan(&v, &mut c);
        let mut acc = 0u32;
        for i in 0..v.len() {
            assert_eq!(scan[i], acc, "index {i}");
            acc += v[i];
        }
    }

    #[test]
    fn exclusive_scan_partial_and_tiny() {
        let mut c = Cost::default();
        for n in [1usize, 2, 31, 33, 100] {
            let v: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
            let scan = block_exclusive_scan(&v, &mut c);
            let mut acc = 0;
            for i in 0..n {
                assert_eq!(scan[i], acc, "n={n} i={i}");
                acc += v[i];
            }
        }
    }

    #[test]
    fn propagate_max_resolves_chains() {
        let mut c = Cost::default();
        // Owners at 0, 3, 64; everyone else inherits the nearest owner left.
        let mut idx = vec![i64::MIN; 128];
        idx[0] = 0;
        idx[3] = 3;
        idx[64] = 64;
        let out = block_propagate_max(&idx, &mut c);
        assert_eq!(out[2], 0);
        assert_eq!(out[3], 3);
        assert_eq!(out[63], 3, "chain crosses warp seam sources");
        assert_eq!(out[64], 64);
        assert_eq!(out[127], 64);
    }

    #[test]
    fn propagate_rounds_are_logarithmic() {
        let mut c = Cost::default();
        let idx = vec![0i64; 128];
        block_propagate_max(&idx, &mut c);
        // ceil(log2(128)) = 7 rounds, each one barrier.
        assert_eq!(c.barriers, 7);
    }
}
