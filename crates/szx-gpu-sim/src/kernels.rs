//! The cuSZx kernels of §6.2, written against the SIMT execution model and
//! validated byte-for-byte against the CPU codec.
//!
//! * One simulated thread block processes one SZx data block; one lane
//!   processes one data point (Loops 1 and 2 of Figures 9/10 unrolled).
//! * Compression breaks the mid-byte address dependency with a two-level
//!   in-warp prefix scan (§6.2.2 Solution 1) and the previous-value
//!   dependency by re-reading the predecessor from the input (Solution 2,
//!   depth 1).
//! * Decompression resolves the leading-byte RAW dependence chains with the
//!   recursive-doubling *index propagation* of Figure 11.
//!
//! Only the `ByteAligned` commit strategy (the paper's Solution C) exists on
//! the GPU path, as in the real cuSZx.

use szx_core::bitio::pack_state_bits;
use szx_core::block::{bytes_for, required_length, shift_for, BlockStats};
use szx_core::config::{CommitStrategy, SzxConfig};
use szx_core::error::{Result, SzxError};
use szx_core::float::SzxFloat;
use szx_core::stream::Header;

use crate::cost::Cost;
use crate::machine::{
    block_exclusive_scan, block_minmax, block_propagate_max, global_read, global_write, WARP,
};

/// Per-block output of the compression kernel.
struct BlockOut {
    constant: bool,
    mu: f32,
    payload: Vec<u8>,
}

/// Compress one data block on the simulated device. The payload layout is
/// exactly the CPU `ByteAligned` payload.
fn compress_block(block: &[f32], eb: f64, cost: &mut Cost) -> BlockOut {
    let lanes = block.len();
    global_read(cost, lanes * 4);

    // §6.2.1: parallel min/max via warp reductions. NaN must classify the
    // block as non-constant with bit-exact storage, matching the CPU; a
    // ballot detects it.
    let mut has_nan = false;
    for &v in block {
        has_nan |= v.is_nan();
    }
    cost.warp_instructions += lanes.div_ceil(WARP) as u64; // ballot
    let stats = if has_nan {
        BlockStats {
            mu: 0.0f32,
            radius: f32::NAN,
        }
    } else {
        let (lo, hi) = block_minmax(block, cost);
        let mu = f32::half_sum(lo, hi);
        BlockStats {
            mu,
            radius: hi - mu,
        }
    };
    cost.warp_instructions += 2; // μ and radius (lane 0)

    if stats.is_constant_for(eb, block) {
        return BlockOut {
            constant: true,
            mu: stats.mu,
            payload: Vec::new(),
        };
    }

    let req_len = required_length::<f32>(stats.radius, eb);
    let raw = req_len == <f32 as SzxFloat>::FULL_BITS;
    let mu = if raw { 0.0 } else { stats.mu };
    let s = shift_for(req_len);
    let nb = bytes_for(req_len);
    let lead_cap = nb.min(3);

    // Steps 1–2 of Figure 9, one lane per point. The predecessor's word is
    // recomputed from the input (Solution 2): one extra subtraction+shift
    // per lane instead of a cross-lane dependency.
    let mut words = vec![0u64; lanes];
    let mut leads = vec![0u32; lanes];
    let mut mid_counts = vec![0u32; lanes];
    for i in 0..lanes {
        let v = if raw { block[i] } else { block[i] - mu };
        let w = v.to_word() >> s;
        let prev = if i == 0 {
            0
        } else {
            let pv = if raw { block[i - 1] } else { block[i - 1] - mu };
            pv.to_word() >> s
        };
        let lead = (((w ^ prev).leading_zeros() / 8) as usize).min(lead_cap) as u32;
        words[i] = w;
        leads[i] = lead;
        mid_counts[i] = nb as u32 - lead;
    }
    // sub, shift, xor, clz, min, sub — charged warp-wide; ×2 for the
    // predecessor recomputation.
    cost.warp_instructions += 12 * lanes.div_ceil(WARP) as u64;
    global_read(cost, lanes * 4); // predecessor re-reads (L1-coalesced)

    // Solution 1: prefix scan gives every lane its mid-byte write offset.
    let offsets = block_exclusive_scan(&mid_counts, cost);
    let total_mid: usize = mid_counts.iter().sum::<u32>() as usize;

    // Assemble the payload in shared memory, then one coalesced store.
    let lead_bytes = (2 * lanes).div_ceil(8);
    let mut payload = vec![0u8; 1 + lead_bytes];
    payload[0] = req_len as u8;
    for (i, &lead) in leads.iter().enumerate() {
        payload[1 + i / 4] |= (lead as u8) << (6 - 2 * (i % 4));
    }
    cost.shared_ops += lanes.div_ceil(WARP) as u64; // packed code stores
    payload.resize(1 + lead_bytes + total_mid, 0);
    for i in 0..lanes {
        let be = words[i].to_be_bytes();
        let dst = 1 + lead_bytes + offsets[i] as usize;
        let k = mid_counts[i] as usize;
        payload[dst..dst + k].copy_from_slice(&be[leads[i] as usize..leads[i] as usize + k]);
    }
    cost.shared_ops += lanes as u64; // per-lane mid-byte stores
    global_write(cost, payload.len());

    BlockOut {
        constant: false,
        mu: stats.mu,
        payload,
    }
}

/// Decompress one non-constant block payload on the simulated device.
fn decompress_block(payload: &[u8], mu: f32, lanes: usize, cost: &mut Cost) -> Result<Vec<f32>> {
    let lead_bytes = (2 * lanes).div_ceil(8);
    if payload.len() < 1 + lead_bytes {
        return Err(SzxError::CorruptStream("payload truncated".into()));
    }
    global_read(cost, payload.len());
    let req_len = payload[0] as u32;
    if !(<f32 as SzxFloat>::SIGN_EXP_BITS..=<f32 as SzxFloat>::FULL_BITS).contains(&req_len) {
        return Err(SzxError::CorruptStream(format!(
            "bad required length {req_len}"
        )));
    }
    let raw = req_len == <f32 as SzxFloat>::FULL_BITS;
    let s = shift_for(req_len);
    let nb = bytes_for(req_len);
    let lead_cap = nb.min(3);
    let codes = &payload[1..1 + lead_bytes];
    let mid = &payload[1 + lead_bytes..];

    // Step 1 of Figure 10: every lane reads its leading number.
    let mut leads = vec![0usize; lanes];
    let mut mid_counts = vec![0u32; lanes];
    for i in 0..lanes {
        let lead = (((codes[i / 4] >> (6 - 2 * (i % 4))) & 3) as usize).min(lead_cap);
        leads[i] = lead;
        mid_counts[i] = (nb - lead) as u32;
    }
    cost.warp_instructions += 4 * lanes.div_ceil(WARP) as u64;

    // Prefix scan locates each lane's mid-bytes in the pool.
    let offsets = block_exclusive_scan(&mid_counts, cost);
    let total: usize = mid_counts.iter().sum::<u32>() as usize;
    if mid.len() < total {
        return Err(SzxError::CorruptStream("mid-byte pool truncated".into()));
    }

    // Figure 11: index propagation per byte position. Lane i owns byte p
    // iff p >= lead_i; non-owners inherit the nearest owner to their left.
    let mut words = vec![0u64; lanes];
    for p in 0..nb {
        let mut idx: Vec<i64> = (0..lanes)
            .map(|i| if p >= leads[i] { i as i64 } else { i64::MIN })
            .collect();
        cost.warp_instructions += lanes.div_ceil(WARP) as u64;
        idx = block_propagate_max(&idx, cost);
        for i in 0..lanes {
            let byte = if idx[i] == i64::MIN {
                // No owner before this lane: the virtual predecessor is the
                // zero word, matching the CPU decoder's `prev = 0` start.
                0
            } else {
                let owner = idx[i] as usize;
                mid[offsets[owner] as usize + (p - leads[owner])]
            };
            words[i] |= (byte as u64) << (56 - 8 * p);
        }
        cost.shared_ops += lanes.div_ceil(WARP) as u64; // gather
    }

    // Step 5: left shift and denormalize.
    let mut out = vec![0f32; lanes];
    for i in 0..lanes {
        let v = f32::from_word(words[i] << s);
        out[i] = if raw { v } else { v + mu };
    }
    cost.warp_instructions += 3 * lanes.div_ceil(WARP) as u64;
    global_write(cost, lanes * 4);
    Ok(out)
}

/// Full-stream compression on the simulated device. Produces a stream
/// **byte-identical** to `szx_core::compress` with the `ByteAligned`
/// strategy (tests enforce this), plus the accumulated operation counts.
pub fn compress_gpu(data: &[f32], cfg: &SzxConfig) -> Result<(Vec<u8>, Cost)> {
    cfg.validate()?;
    if data.is_empty() {
        return Err(SzxError::EmptyInput);
    }
    if cfg.strategy != CommitStrategy::ByteAligned {
        return Err(SzxError::InvalidConfig(
            "the GPU path implements only the ByteAligned (Solution C) strategy".into(),
        ));
    }
    let eb = cfg.error_bound.resolve(data);
    let mut cost = Cost::default();

    let mut states = Vec::new();
    let mut mus: Vec<f32> = Vec::new();
    let mut zsizes: Vec<u16> = Vec::new();
    let mut payloads: Vec<u8> = Vec::new();
    for block in data.chunks(cfg.block_size) {
        let out = compress_block(block, eb, &mut cost);
        states.push(!out.constant);
        if out.constant {
            mus.push(out.mu);
        } else {
            // Bit-exact blocks store μ = 0, like the CPU encoder.
            let req_is_raw = out.payload[0] as u32 == <f32 as SzxFloat>::FULL_BITS;
            mus.push(if req_is_raw { 0.0 } else { out.mu });
            zsizes.push(out.payload.len() as u16);
            payloads.extend_from_slice(&out.payload);
        }
    }

    let header = Header {
        dtype: <f32 as SzxFloat>::DTYPE_CODE,
        strategy: cfg.strategy,
        block_size: cfg.block_size,
        n: data.len(),
        eb,
        n_nonconstant: zsizes.len(),
    };
    let mut bytes = Vec::new();
    header.write(&mut bytes);
    bytes.extend_from_slice(&pack_state_bits(&states));
    for &mu in &mus {
        mu.write_le(&mut bytes);
    }
    for z in &zsizes {
        bytes.extend_from_slice(&z.to_le_bytes());
    }
    bytes.extend_from_slice(&payloads);
    global_write(
        &mut cost,
        szx_core::stream::HEADER_LEN + states.len() / 8 + states.len() * 4,
    );
    Ok((bytes, cost))
}

/// Full-stream decompression on the simulated device. Only the non-constant
/// blocks run kernels (constant blocks are filled during the host gather,
/// as §6.2.1 describes).
pub fn decompress_gpu(bytes: &[u8]) -> Result<(Vec<f32>, Cost)> {
    let header = szx_core::inspect(bytes)?;
    if header.strategy != CommitStrategy::ByteAligned {
        return Err(SzxError::InvalidConfig(
            "the GPU path implements only the ByteAligned (Solution C) strategy".into(),
        ));
    }
    // Reuse the CPU index machinery for section parsing (host-side work in
    // the real implementation too), then run the per-block device kernels.
    let mut cost = Cost::default();
    let mut out = vec![0f32; header.n];

    // Host-side parse identical to the CPU path.
    let parsed = szx_core::decode::ParsedStream::parse::<f32>(bytes)?;
    let bs = header.block_size;
    for (b, chunk) in out.chunks_mut(bs).enumerate() {
        let mu = parsed.mu::<f32>(b);
        if parsed.state(b) {
            let (off, len) = parsed.payload_span(b);
            let payload = &parsed.payloads[off..off + len];
            let decoded = decompress_block(payload, mu, chunk.len(), &mut cost)?;
            chunk.copy_from_slice(&decoded);
        } else {
            chunk.fill(mu);
            global_write(&mut cost, chunk.len() * 4);
        }
    }
    Ok((out, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use szx_core::SzxConfig;

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = i as f32 * 0.004;
                x.sin() * 3.0 + (x * 19.0).sin() * 0.01
            })
            .collect()
    }

    #[test]
    fn gpu_stream_is_byte_identical_to_cpu() {
        let data = field(100_000);
        for eb in [1e-2, 1e-4, 1e-6] {
            let cfg = SzxConfig::absolute(eb);
            let cpu = szx_core::compress(&data, &cfg).unwrap();
            let (gpu, cost) = compress_gpu(&data, &cfg).unwrap();
            assert_eq!(cpu, gpu, "eb={eb}");
            assert!(cost.shuffles > 0 && cost.barriers > 0);
        }
    }

    #[test]
    fn gpu_decompress_matches_cpu() {
        let data = field(50_000);
        let cfg = SzxConfig::absolute(1e-4);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let cpu: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        let (gpu, cost) = decompress_gpu(&bytes).unwrap();
        assert_eq!(cpu, gpu);
        assert!(cost.barriers > 0, "index propagation must have run");
    }

    #[test]
    fn gpu_roundtrip_with_nan_and_tail() {
        let mut data = field(12_345);
        data[77] = f32::NAN;
        data[12_344] = f32::INFINITY;
        let cfg = SzxConfig::absolute(1e-3);
        let (bytes, _) = compress_gpu(&data, &cfg).unwrap();
        let cpu_bytes = szx_core::compress(&data, &cfg).unwrap();
        assert_eq!(bytes, cpu_bytes);
        let (back, _) = decompress_gpu(&bytes).unwrap();
        assert!(back[77].is_nan());
        assert_eq!(back[12_344], f32::INFINITY);
    }

    #[test]
    fn gpu_rejects_other_strategies() {
        let data = field(1000);
        let cfg = SzxConfig::absolute(1e-3).with_strategy(szx_core::CommitStrategy::BitPack);
        assert!(compress_gpu(&data, &cfg).is_err());
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        assert!(decompress_gpu(&bytes).is_err());
    }

    #[test]
    fn constant_data_runs_no_nonconstant_kernels() {
        let data = vec![5.0f32; 4096];
        let cfg = SzxConfig::absolute(1e-3);
        let (bytes, cost) = compress_gpu(&data, &cfg).unwrap();
        assert_eq!(szx_core::inspect(&bytes).unwrap().n_nonconstant, 0);
        // min/max reductions still run, but no payload writes.
        assert!(cost.global_write_bytes < 1024);
    }

    #[test]
    fn cost_scales_with_data() {
        let cfg = SzxConfig::absolute(1e-4);
        let (_, small) = compress_gpu(&field(10_000), &cfg).unwrap();
        let (_, large) = compress_gpu(&field(100_000), &cfg).unwrap();
        assert!(large.global_read_bytes >= 9 * small.global_read_bytes);
        assert!(large.shuffles > 5 * small.shuffles);
    }
}
