//! GPU cost models for the Figure 14/15 comparators.
//!
//! The cuSZx bars come from *executing* the kernels in this crate and
//! counting operations. cuSZ and cuZFP are not re-implemented at kernel
//! granularity; instead each gets an operation-count model assembled from
//! its published algorithm structure, with the *data-dependent* quantities
//! (compressed size, symbol counts) taken from running the corresponding
//! CPU baseline on the actual data:
//!
//! * **cuSZ-like** — dual-quantization pass (memory-streaming), histogram,
//!   and Huffman encode; decompression is dominated by warp-divergent
//!   variable-length Huffman decoding, charged as serial chain operations.
//! * **cuZFP-like** — block transform (warp-parallel arithmetic) + bitplane
//!   coding with warp-ballot assistance (partially serialized).
//!
//! Serial chain operations are charged by [`crate::cost::GpuSpec::time`] —
//! the cost of a warp-divergent dependent step (shared-memory latency that
//! occupancy cannot hide during variable-length coding). That latency is a
//! hardware property, not fitted to the paper's figures; see EXPERIMENTS.md
//! for the resulting model-vs-paper comparison.

use szx_baselines::{szlike, zfplike};
use szx_core::SzxConfig;

use crate::cost::Cost;
use crate::kernels;

/// Scatter inefficiency for per-lane variable-length writes/reads (partial
/// cache-line transactions), applied to SZx mid-byte traffic.
pub const SCATTER_FACTOR: u64 = 4;

/// Modeled compression + decompression costs for one field.
#[derive(Debug, Clone)]
pub struct ModelResult {
    pub codec: &'static str,
    pub comp: Cost,
    pub decomp: Cost,
    pub compressed_len: usize,
    pub raw_len: usize,
}

/// cuSZx: execute the simulated kernels and count real operations. The
/// mid-byte traffic is re-charged with the scatter factor (per-lane
/// variable-length accesses do not coalesce).
pub fn cuszx_model(data: &[f32], eb: f64) -> ModelResult {
    let cfg = SzxConfig::absolute(eb);
    let (bytes, mut comp) = kernels::compress_gpu(data, &cfg).expect("cuszx compress");
    let (_, mut decomp) = kernels::decompress_gpu(&bytes).expect("cuszx decompress");
    // Scattered payload writes/reads: charge the extra partial transactions.
    comp.global_write_bytes += bytes.len() as u64 * (SCATTER_FACTOR - 1);
    decomp.global_read_bytes += bytes.len() as u64 * (SCATTER_FACTOR - 1);
    ModelResult {
        codec: "cuSZx",
        comp,
        decomp,
        compressed_len: bytes.len(),
        raw_len: data.len() * 4,
    }
}

/// cuSZ-like: the dual-quantization and histogram phases are *executed*
/// on the SIMT model ([`crate::cusz_kernels`]) and their operations
/// counted; the Huffman stage is modeled, with the real compressed size
/// obtained from the SZ-like CPU codec on the same data.
pub fn cusz_model(data: &[f32], dims: [usize; 3], eb: f64) -> ModelResult {
    let n = data.len() as u64;
    let eb = if eb > 0.0 { eb } else { 1e-30 };
    let stream = szlike::compress(data, dims, eb).expect("szlike compress");
    let clen = stream.len() as u64;

    let mut comp = Cost::default();
    // Phase 1+2, executed: prequant + integer Lorenzo, then the
    // shared-memory histogram for codebook construction.
    let dq = crate::cusz_kernels::dual_quant_kernel(data, eb, 256, &mut comp);
    let _hist = crate::cusz_kernels::histogram_kernel(&dq.codes, &mut comp);
    // Phase 3, modeled: Huffman encode — codebook lookup + bit placement;
    // warp-cooperative in cuSZ but each symbol still takes a dependent
    // bit-offset step.
    comp.global_read_bytes += 2 * n;
    comp.warp_instructions += 12 * n / 32;
    comp.serial_chain_ops += n;
    comp.global_write_bytes += clen;
    comp.barriers += n / 1024;

    let mut decomp = Cost::default();
    // Huffman decode: per-symbol dependent table walk, warp-divergent —
    // modeled (this is cuSZ's decompression bottleneck).
    decomp.global_read_bytes += clen;
    decomp.serial_chain_ops += n * 3 / 2;
    decomp.warp_instructions += 10 * n / 32;
    // Reverse dual-quant: executed — the segmented-scan Lorenzo inversion.
    let _ = crate::cusz_kernels::dual_quant_reconstruct_kernel(&dq, eb, 256, &mut decomp);

    ModelResult {
        codec: "cuSZ",
        comp,
        decomp,
        compressed_len: stream.len(),
        raw_len: data.len() * 4,
    }
}

/// cuZFP-like: block transform + warp-assisted bitplane coding, with the
/// real compressed size from the ZFP-like CPU codec.
pub fn cuzfp_model(data: &[f32], dims: [usize; 3], eb: f64) -> ModelResult {
    let n = data.len() as u64;
    let stream = zfplike::compress(data, dims, eb).expect("zfplike compress");
    let clen = stream.len() as u64;
    let encoded_bits = clen * 8;

    let mut comp = Cost::default();
    comp.global_read_bytes += 4 * n;
    // Lifting transform: ~10 integer ops per value, warp-parallel.
    comp.warp_instructions += 10 * n / 32;
    // Bitplane emission: ballot-assisted but still partially serialized.
    comp.serial_chain_ops += encoded_bits / 8;
    comp.warp_instructions += encoded_bits / 64;
    comp.global_write_bytes += clen;
    comp.barriers += n / 4096;

    let mut decomp = Cost::default();
    decomp.global_read_bytes += clen;
    // Bitplane parsing has a tighter dependence chain than emission.
    decomp.serial_chain_ops += encoded_bits / 4;
    decomp.warp_instructions += 12 * n / 32;
    decomp.global_write_bytes += 4 * n;
    decomp.barriers += n / 4096;

    ModelResult {
        codec: "cuZFP",
        comp,
        decomp,
        compressed_len: stream.len(),
        raw_len: data.len() * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::A100;

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.002).sin() * 2.0 + (i as f32 * 0.05).sin() * 0.01)
            .collect()
    }

    #[test]
    fn cuszx_is_fastest_in_the_model() {
        let data = field(200_000);
        let dims = [data.len(), 1, 1];
        let eb = 1e-3 * 4.0;
        let x = cuszx_model(&data, eb);
        let s = cusz_model(&data, dims, eb);
        let z = cuzfp_model(&data, dims, eb);
        let tx = A100.time(&x.comp) + A100.time(&x.decomp);
        let ts = A100.time(&s.comp) + A100.time(&s.decomp);
        let tz = A100.time(&z.comp) + A100.time(&z.decomp);
        assert!(tx < ts, "cuSZx {tx} must beat cuSZ {ts}");
        assert!(tx < tz, "cuSZx {tx} must beat cuZFP {tz}");
    }

    #[test]
    fn model_throughputs_land_in_plausible_bands() {
        // Paper (Figs 14-15, A100): cuSZx 150-264 GB/s compress; cuSZ and
        // cuZFP 9.8-86 GB/s. Order-of-magnitude agreement with correct
        // ordering is what the model promises.
        let data = field(1_000_000);
        let dims = [data.len(), 1, 1];
        let eb = 1e-3 * 4.0;
        let x = cuszx_model(&data, eb);
        let s = cusz_model(&data, dims, eb);
        let z = cuzfp_model(&data, dims, eb);
        let gx = A100.throughput_gbps(x.raw_len, &x.comp);
        let gs = A100.throughput_gbps(s.raw_len, &s.comp);
        let gz = A100.throughput_gbps(z.raw_len, &z.comp);
        assert!(gx > 100.0 && gx < 1200.0, "cuSZx compress {gx}");
        assert!(gs > 3.0 && gs < 150.0, "cuSZ compress {gs}");
        assert!(gz > 5.0 && gz < 300.0, "cuZFP compress {gz}");
        let dx = A100.throughput_gbps(x.raw_len, &x.decomp);
        assert!(dx > gs && dx > gz, "cuSZx decompress {dx} must dominate");
    }

    #[test]
    fn compressed_sizes_come_from_real_codecs() {
        // Use a 2-D grid: transform coding needs multidimensional blocks to
        // shine, exactly as in the paper's datasets.
        let (nx, ny) = (320, 320);
        let mut data = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                data.push((x as f32 * 0.05).sin() * (y as f32 * 0.04).cos());
            }
        }
        let dims = [nx, ny, 1];
        let s = cusz_model(&data, dims, 1e-3);
        let z = cuzfp_model(&data, dims, 1e-3);
        let x = cuszx_model(&data, 1e-3);
        assert!(s.compressed_len < x.compressed_len, "SZ CR beats SZx CR");
        assert!(z.compressed_len < x.compressed_len, "ZFP CR beats SZx CR");
    }
}
