//! Operation accounting and the GPU cost model used to evaluate the
//! Figure 14/15 experiments.
//!
//! The simulator counts the operations a kernel performs; this module turns
//! those counts into a modeled execution time using *physical* device
//! parameters (memory bandwidth, SM count, clock) — no constants are fitted
//! to the paper's reported numbers, so the resulting codec ratios are a
//! genuine consequence of operation counting.

/// Operation counts accumulated while executing kernels on the simulator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Bytes read from global memory (coalesced accounting).
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Warp-wide instructions (ALU/control), one per warp per step.
    pub warp_instructions: u64,
    /// Warp shuffle operations.
    pub shuffles: u64,
    /// Shared-memory load/store operations (warp-wide).
    pub shared_ops: u64,
    /// Block-level barriers.
    pub barriers: u64,
    /// Operations executed on a *serial dependency chain* (e.g. Huffman
    /// decode symbol steps): these cannot be hidden by parallelism and
    /// are charged per-thread-cycle rather than per-warp-cycle.
    pub serial_chain_ops: u64,
}

impl Cost {
    pub fn add(&mut self, other: &Cost) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.warp_instructions += other.warp_instructions;
        self.shuffles += other.shuffles;
        self.shared_ops += other.shared_ops;
        self.barriers += other.barriers;
        self.serial_chain_ops += other.serial_chain_ops;
    }
}

/// Physical parameters of the modeled device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    pub name: &'static str,
    /// Global memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp instructions retired per SM per cycle (issue width for simple
    /// int/logic ops).
    pub ipc: f64,
}

/// SM-cycles per warp-divergent dependent operation (see [`GpuSpec::time`]).
pub const CHAIN_LATENCY_CYCLES: f64 = 40.0;

/// NVIDIA A100-like (the paper's ThetaGPU node).
pub const A100: GpuSpec = GpuSpec {
    name: "A100-like",
    mem_bw_gbps: 1555.0,
    sm_count: 108,
    clock_ghz: 1.41,
    ipc: 2.0,
};

/// NVIDIA V100-like (the paper's Summit node).
pub const V100: GpuSpec = GpuSpec {
    name: "V100-like",
    mem_bw_gbps: 900.0,
    sm_count: 80,
    clock_ghz: 1.53,
    ipc: 2.0,
};

impl GpuSpec {
    /// Modeled kernel time in seconds: the device is limited by whichever
    /// of memory traffic, warp issue, or serialized chains dominates;
    /// shuffles and shared ops issue like regular instructions.
    pub fn time(&self, c: &Cost) -> f64 {
        let mem = (c.global_read_bytes + c.global_write_bytes) as f64 / (self.mem_bw_gbps * 1e9);
        let issue_ops = c.warp_instructions + c.shuffles + c.shared_ops;
        let compute = issue_ops as f64 / (self.sm_count as f64 * self.ipc * self.clock_ghz * 1e9);
        // Serial chain ops model warp-divergent variable-length coding:
        // each step is a dependent shared-memory access whose latency the
        // divergence-starved occupancy cannot hide. Charged at
        // CHAIN_LATENCY_CYCLES SM-cycles per op — a hardware latency
        // figure, not a constant fitted to the paper's plots.
        let serial = c.serial_chain_ops as f64 * CHAIN_LATENCY_CYCLES
            / (self.sm_count as f64 * self.clock_ghz * 1e9);
        let barrier = c.barriers as f64 * 20.0 / (self.sm_count as f64 * self.clock_ghz * 1e9);
        mem.max(compute).max(serial) + barrier
    }

    /// Modeled throughput in GB/s for processing `raw_bytes` of input.
    pub fn throughput_gbps(&self, raw_bytes: usize, c: &Cost) -> f64 {
        raw_bytes as f64 / self.time(c) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_hits_bandwidth() {
        // A kernel that only streams memory should approach device BW.
        let c = Cost {
            global_read_bytes: 1 << 30,
            ..Default::default()
        };
        let t = A100.time(&c);
        let gbps = (1u64 << 30) as f64 / t / 1e9;
        assert!((gbps - 1555.0).abs() < 1.0, "{gbps}");
    }

    #[test]
    fn serial_chains_dominate_when_large() {
        let streaming = Cost {
            global_read_bytes: 1 << 20,
            ..Default::default()
        };
        let chained = Cost {
            global_read_bytes: 1 << 20,
            serial_chain_ops: 1 << 28,
            ..Default::default()
        };
        assert!(A100.time(&chained) > 10.0 * A100.time(&streaming));
    }

    #[test]
    fn cost_accumulates() {
        let mut a = Cost {
            shuffles: 1,
            barriers: 2,
            ..Default::default()
        };
        let b = Cost {
            shuffles: 3,
            global_write_bytes: 7,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.shuffles, 4);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.global_write_bytes, 7);
    }

    #[test]
    fn v100_is_slower_than_a100_on_memory() {
        let c = Cost {
            global_read_bytes: 1 << 30,
            ..Default::default()
        };
        assert!(V100.time(&c) > A100.time(&c));
    }
}
