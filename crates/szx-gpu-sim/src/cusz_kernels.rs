//! cuSZ's dual-quantization phase, implemented as real kernels on the SIMT
//! execution model (plus a scalar reference) — the part of the cuSZ
//! comparator that is *executed and counted* rather than estimated.
//!
//! Dual-quantization (Tian et al., PACT '20) makes Lorenzo prediction
//! GPU-friendly: values are first *prequantized* to integers
//! `q = round(v / 2e)`, then predicted in integer space
//! (`delta_i = q_i − q_{i−1}`). Because prediction runs on prequantized
//! values rather than reconstructed ones, every lane can recompute its
//! predecessor independently — no serial reconstruction chain, the same
//! dependency-breaking idea as SZx's Solution 2.

use crate::cost::Cost;
use crate::machine::{global_read, global_write, WARP};

/// Quantization code radius (symbols fit u16 like cuSZ's default).
pub const RADIUS: i64 = 32768;

/// Output of the dual-quantization phase.
#[derive(Debug, Clone, PartialEq)]
pub struct DualQuantOutput {
    /// Per-value quantization codes (`delta + RADIUS`; 0 = outlier escape).
    pub codes: Vec<u16>,
    /// Raw values for escaped points, in order.
    pub outliers: Vec<f32>,
}

/// Scalar reference implementation (ground truth for the kernel).
pub fn dual_quant_reference(data: &[f32], eb: f64) -> DualQuantOutput {
    assert!(eb > 0.0, "dual quantization needs a positive bound");
    let inv = 1.0 / (2.0 * eb);
    let mut codes = Vec::with_capacity(data.len());
    let mut outliers = Vec::new();
    let mut prev_q = 0i64;
    for &v in data {
        let qf = (v as f64 * inv).round();
        let (code, q) = if qf.is_finite() && qf.abs() < 1e18 {
            let q = qf as i64;
            let delta = q - prev_q;
            if delta.abs() < RADIUS - 1 {
                ((delta + RADIUS) as u16, q)
            } else {
                (0u16, q)
            }
        } else {
            (0u16, 0)
        };
        if code == 0 {
            outliers.push(v);
        }
        codes.push(code);
        prev_q = q;
    }
    DualQuantOutput { codes, outliers }
}

/// Reconstruct values from a [`DualQuantOutput`] (used by tests to verify
/// the error bound; cuSZ's decoder does the same integer walk).
pub fn dual_quant_reconstruct(out: &DualQuantOutput, eb: f64) -> Vec<f32> {
    let step = 2.0 * eb;
    let mut values = Vec::with_capacity(out.codes.len());
    let mut prev_q = 0i64;
    let mut next_outlier = 0usize;
    let inv = 1.0 / step;
    for &code in &out.codes {
        if code == 0 {
            let v = out.outliers[next_outlier];
            next_outlier += 1;
            // Re-derive the quantized value so later deltas chain correctly.
            let qf = (v as f64 * inv).round();
            prev_q = if qf.is_finite() && qf.abs() < 1e18 {
                qf as i64
            } else {
                0
            };
            values.push(v);
        } else {
            let delta = code as i64 - RADIUS;
            prev_q += delta;
            values.push((prev_q as f64 * step) as f32);
        }
    }
    values
}

/// The dual-quantization kernel on the simulated device: one lane per
/// value; each lane prequantizes itself *and its predecessor*, so the
/// Lorenzo delta needs no cross-lane communication at all.
pub fn dual_quant_kernel(data: &[f32], eb: f64, block: usize, cost: &mut Cost) -> DualQuantOutput {
    assert!(eb > 0.0);
    let inv = 1.0 / (2.0 * eb);
    let mut codes = vec![0u16; data.len()];
    let mut outliers = Vec::new();

    for (b, chunk) in data.chunks(block).enumerate() {
        let base = b * block;
        global_read(cost, chunk.len() * 4);
        global_read(cost, chunk.len() * 4); // predecessor re-reads
                                            // round, cast, sub, compare, add — per lane, warp-wide.
        cost.warp_instructions += 8 * chunk.len().div_ceil(WARP) as u64;
        for (i, &v) in chunk.iter().enumerate() {
            let gi = base + i;
            let quant = |x: f32| -> Option<i64> {
                let qf = (x as f64 * inv).round();
                (qf.is_finite() && qf.abs() < 1e18).then_some(qf as i64)
            };
            let code = match quant(v) {
                Some(q) => {
                    let prev_q = if gi == 0 {
                        Some(0)
                    } else {
                        quant(data[gi - 1])
                    };
                    match prev_q {
                        Some(p) if (q - p).abs() < RADIUS - 1 => (q - p + RADIUS) as u16,
                        _ => 0,
                    }
                }
                None => 0,
            };
            codes[gi] = code;
        }
        global_write(cost, chunk.len() * 2);
    }
    // Outlier compaction: a device-wide prefix scan locates each escape's
    // slot (cuSZ uses the same pattern); gather afterwards.
    let n_out = codes.iter().filter(|&&c| c == 0).count();
    cost.warp_instructions += 2 * data.len().div_ceil(WARP) as u64;
    cost.shared_ops += data.len().div_ceil(WARP) as u64;
    for (i, &c) in codes.iter().enumerate() {
        if c == 0 {
            outliers.push(data[i]);
        }
    }
    global_write(cost, n_out * 4);
    DualQuantOutput { codes, outliers }
}

/// Element of the segmented scan: a running quantized value plus a flag
/// marking whether an *anchor* (escape with a known absolute value) lies in
/// the element's covered range. The combine operator is associative, which
/// is what lets Hillis–Steele rounds and cross-block carries both use it.
#[derive(Debug, Clone, Copy)]
struct SegItem {
    sum: i64,
    anchored: bool,
}

#[inline]
fn seg_combine(a: SegItem, b: SegItem) -> SegItem {
    if b.anchored {
        b
    } else {
        SegItem {
            sum: a.sum.wrapping_add(b.sum),
            anchored: a.anchored,
        }
    }
}

/// Scan-based reconstruction kernel: cuSZ inverts the integer Lorenzo
/// chain `q_i = q_{i-1} + delta_i` with a parallel *segmented inclusive
/// scan* over the deltas — prefix sums turn the serial recurrence into
/// O(log n) rounds. Escape positions re-anchor the chain with their own
/// prequantized value (the scan's segment boundaries).
// Lane-indexed on purpose: the loop mirrors the kernel's per-lane view,
// where `i` *is* the lane id across several arrays.
#[allow(clippy::needless_range_loop)]
pub fn dual_quant_reconstruct_kernel(
    out: &DualQuantOutput,
    eb: f64,
    block: usize,
    cost: &mut Cost,
) -> Vec<f32> {
    let step = 2.0 * eb;
    let inv = 1.0 / step;
    let n = out.codes.len();
    let mut values = vec![0f32; n];
    let mut items = Vec::with_capacity(n);

    let mut next_outlier = 0usize;
    global_read(cost, n * 2 + out.outliers.len() * 4);
    for i in 0..n {
        if out.codes[i] == 0 {
            let v = out.outliers[next_outlier];
            next_outlier += 1;
            let qf = (v as f64 * inv).round();
            let q = if qf.is_finite() && qf.abs() < 1e18 {
                qf as i64
            } else {
                0
            };
            values[i] = v; // escapes reproduce the raw value
            items.push(SegItem {
                sum: q,
                anchored: true,
            });
        } else {
            items.push(SegItem {
                sum: out.codes[i] as i64 - RADIUS,
                anchored: false,
            });
        }
    }
    cost.warp_instructions += 4 * n.div_ceil(WARP) as u64;

    // Intra-block Hillis–Steele segmented scan, then a sequential carry of
    // one SegItem per block (cuSZ's two-pass scan structure).
    let mut carry: Option<SegItem> = None;
    for chunk_start in (0..n).step_by(block) {
        let chunk_end = (chunk_start + block).min(n);
        let len = chunk_end - chunk_start;
        let mut stride = 1;
        while stride < len {
            cost.shuffles += len.div_ceil(WARP) as u64;
            cost.warp_instructions += len.div_ceil(WARP) as u64;
            cost.barriers += 1;
            let prev = items[chunk_start..chunk_end].to_vec();
            for i in stride..len {
                items[chunk_start + i] = seg_combine(prev[i - stride], prev[i]);
            }
            stride <<= 1;
        }
        if let Some(c) = carry {
            cost.warp_instructions += len.div_ceil(WARP) as u64;
            for item in items[chunk_start..chunk_end].iter_mut() {
                *item = seg_combine(c, *item);
            }
        }
        carry = Some(items[chunk_end - 1]);
    }

    for i in 0..n {
        if out.codes[i] != 0 {
            values[i] = (items[i].sum as f64 * step) as f32;
        }
    }
    cost.warp_instructions += 2 * n.div_ceil(WARP) as u64;
    global_write(cost, n * 4);
    values
}

/// Shared-memory histogram kernel (cuSZ's codebook-frequency pass): each
/// thread block accumulates a private histogram, then merges into the
/// global one.
pub fn histogram_kernel(codes: &[u16], cost: &mut Cost) -> Vec<u64> {
    let mut hist = vec![0u64; 2 * RADIUS as usize];
    const BLOCK: usize = 4096;
    for chunk in codes.chunks(BLOCK) {
        global_read(cost, chunk.len() * 2);
        // One shared atomic per value plus the block-level merge.
        cost.shared_ops += chunk.len() as u64 / 8;
        cost.warp_instructions += chunk.len().div_ceil(WARP) as u64;
        for &c in chunk {
            hist[c as usize] += 1;
        }
        cost.shared_ops += 16; // merge the private histogram
        cost.barriers += 1;
    }
    global_write(cost, 2 * RADIUS as usize * 8 / 64); // only touched bins in practice
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.004).sin() * 5.0 + (i as f32 * 0.07).cos() * 0.02)
            .collect()
    }

    #[test]
    fn kernel_matches_reference_exactly() {
        let data = field(10_000);
        for eb in [1e-2, 1e-4] {
            let reference = dual_quant_reference(&data, eb);
            let mut cost = Cost::default();
            let kernel = dual_quant_kernel(&data, eb, 256, &mut cost);
            assert_eq!(reference, kernel, "eb={eb}");
            assert!(cost.global_read_bytes >= 2 * 4 * data.len() as u64);
        }
    }

    #[test]
    fn dual_quant_respects_bound() {
        let data = field(5_000);
        for eb in [1e-1, 1e-3, 1e-5] {
            let out = dual_quant_reference(&data, eb);
            let back = dual_quant_reconstruct(&out, eb);
            for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
                // The f32 representation of the dequantized value adds up
                // to half a ulp on top of the bound (as in real cuSZ).
                let tol = eb + (a.abs() as f64) * f32::EPSILON as f64;
                assert!(
                    (a as f64 - b as f64).abs() <= tol,
                    "eb={eb} i={i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn outliers_and_nonfinite_escape() {
        let mut data = field(1000);
        data[10] = 1e30; // prequant overflow territory with tiny eb
        data[11] = f32::NAN;
        let out = dual_quant_reference(&data, 1e-6);
        assert!(out.outliers.len() >= 2);
        let back = dual_quant_reconstruct(&out, 1e-6);
        assert_eq!(back[10], 1e30);
        assert!(back[11].is_nan());
        // Values after the escapes still respect the bound.
        assert!((back[500] as f64 - data[500] as f64).abs() <= 1e-6 + 1e-12);
    }

    #[test]
    fn scan_reconstruction_matches_sequential() {
        let mut data = field(10_000);
        data[100] = 1e30; // escape mid-stream to exercise segmentation
        data[5000] = f32::NAN;
        for eb in [1e-2, 1e-4] {
            let out = dual_quant_reference(&data, eb);
            let sequential = dual_quant_reconstruct(&out, eb);
            let mut cost = Cost::default();
            let parallel = dual_quant_reconstruct_kernel(&out, eb, 256, &mut cost);
            assert_eq!(sequential.len(), parallel.len());
            for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "eb={eb} i={i}: {a} vs {b}"
                );
            }
            assert!(cost.barriers > 0, "scan rounds must have run");
        }
    }

    #[test]
    fn scan_reconstruction_depth_is_logarithmic() {
        let data = field(256);
        let out = dual_quant_reference(&data, 1e-3);
        let mut cost = Cost::default();
        dual_quant_reconstruct_kernel(&out, 1e-3, 256, &mut cost);
        // One block of 256: ceil(log2(256)) = 8 scan rounds.
        assert_eq!(cost.barriers, 8);
    }

    #[test]
    fn histogram_counts_are_exact() {
        let data = field(20_000);
        let out = dual_quant_reference(&data, 1e-3);
        let mut cost = Cost::default();
        let hist = histogram_kernel(&out.codes, &mut cost);
        assert_eq!(hist.iter().sum::<u64>(), out.codes.len() as u64);
        let mut expected = vec![0u64; 2 * RADIUS as usize];
        for &c in &out.codes {
            expected[c as usize] += 1;
        }
        assert_eq!(hist, expected);
        assert!(cost.barriers > 0 && cost.shared_ops > 0);
    }

    #[test]
    fn smooth_data_concentrates_codes() {
        // The premise of cuSZ's Huffman stage: deltas cluster near zero.
        let data = field(50_000);
        let out = dual_quant_reference(&data, 1e-3);
        let center = RADIUS as u16;
        let near: usize = out
            .codes
            .iter()
            .filter(|&&c| c != 0 && (c as i64 - center as i64).abs() <= 64)
            .count();
        assert!(
            near * 10 > out.codes.len() * 9,
            "{near}/{}",
            out.codes.len()
        );
    }
}
