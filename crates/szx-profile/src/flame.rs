//! Self-contained, deterministic SVG flamegraph renderer.
//!
//! The layout is the classic one: x-extent proportional to cumulative
//! samples, one row per stack depth, children packed left-to-right in
//! name order (not sample order — stable across runs whose counts jitter).
//! Colors come from an FNV-1a hash of the frame name, so a zone keeps its
//! color across profiles and the output is a pure function of the
//! [`Profile`]'s folded stacks. Hover shows `name (count samples, pct%)`
//! via `<title>` — no JavaScript, loads anywhere.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Profile;

const IMAGE_WIDTH: f64 = 1200.0;
const ROW_HEIGHT: f64 = 17.0;
const FONT_SIZE: f64 = 12.0;
/// Approximate glyph advance for the monospace label font; rects narrower
/// than ~3 glyphs get no text (the `<title>` tooltip still names them).
const GLYPH_WIDTH: f64 = 7.2;
const HEADER_HEIGHT: f64 = 36.0;
/// Rects narrower than this many pixels are culled entirely.
const MIN_RECT_WIDTH: f64 = 0.2;

/// One merge-tree node: cumulative count plus name-ordered children.
#[derive(Default)]
struct Node {
    total: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn insert(&mut self, stack: &[String], count: u64) {
        self.total += count;
        if let Some((head, rest)) = stack.split_first() {
            self.children
                .entry(head.clone())
                .or_default()
                .insert(rest, count);
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

/// FNV-1a, the same hash the manifest code uses — stable across platforms.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Warm flamegraph palette derived deterministically from the name hash:
/// red 205–254, green 50–189, blue 0–54.
fn color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 205 + (h % 50);
    let g = 50 + ((h >> 8) % 140);
    let b = (h >> 16) % 55;
    format!("rgb({r},{g},{b})")
}

fn xml_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Render `profile` as a standalone SVG flamegraph. Pure function of the
/// folded stacks: identical profiles render byte-identical SVG (golden
/// tested), regardless of insertion order or sampling timing.
pub fn render_flamegraph_svg(profile: &Profile) -> String {
    let mut root = Node::default();
    for (stack, &count) in &profile.stacks {
        root.insert(stack, count);
    }
    // Row 0 (bottom) is the synthetic "all" frame; stacks grow upward.
    let depth = root.depth();
    let height = HEADER_HEIGHT + depth as f64 * ROW_HEIGHT + ROW_HEIGHT;
    let mut svg = String::with_capacity(4096);
    let _ = write!(
        svg,
        "<svg version=\"1.1\" width=\"{IMAGE_WIDTH}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n\
         <style>text {{ font-family: monospace; font-size: {FONT_SIZE}px; fill: #000; }} \
         rect {{ stroke: #ffffff; stroke-width: 0.5; }}</style>\n\
         <rect x=\"0\" y=\"0\" width=\"{IMAGE_WIDTH}\" height=\"{height}\" fill=\"#f8f8f8\"/>\n\
         <text x=\"8\" y=\"22\">szx zone-stack flamegraph — {} samples at {} Hz \
         ({} torn reads, {} threads)</text>\n",
        profile.samples, profile.hz, profile.torn_retries, profile.threads_seen
    );
    if root.total > 0 {
        let scale = IMAGE_WIDTH / root.total as f64;
        // Bottom row: everything.
        emit_frame(
            &mut svg,
            "all",
            root.total,
            root.total,
            0.0,
            frame_y(0, depth),
            IMAGE_WIDTH,
        );
        emit_children(&mut svg, &root, 0.0, 1, depth, scale, root.total);
    } else {
        svg.push_str("<text x=\"8\" y=\"52\">(no samples)</text>\n");
    }
    svg.push_str("</svg>\n");
    svg
}

/// y-coordinate for a row: depth 0 at the bottom of the plot area.
fn frame_y(row: usize, total_rows: usize) -> f64 {
    HEADER_HEIGHT + (total_rows - row) as f64 * ROW_HEIGHT
}

fn emit_children(
    svg: &mut String,
    node: &Node,
    mut x: f64,
    row: usize,
    total_rows: usize,
    scale: f64,
    grand_total: u64,
) {
    for (name, child) in &node.children {
        let w = child.total as f64 * scale;
        if w >= MIN_RECT_WIDTH {
            emit_frame(
                svg,
                name,
                child.total,
                grand_total,
                x,
                frame_y(row, total_rows),
                w,
            );
            emit_children(svg, child, x, row + 1, total_rows, scale, grand_total);
        }
        x += w;
    }
}

fn emit_frame(svg: &mut String, name: &str, count: u64, grand_total: u64, x: f64, y: f64, w: f64) {
    let pct = 100.0 * count as f64 / grand_total.max(1) as f64;
    let fill = if name == "all" {
        "rgb(235,235,235)".to_string()
    } else {
        color(name)
    };
    let mut title = String::new();
    xml_escape(name, &mut title);
    let _ = write!(
        svg,
        "<g><title>{title} ({count} samples, {pct:.2}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{ROW_HEIGHT}\" fill=\"{fill}\"/>",
    );
    let max_chars = (w / GLYPH_WIDTH) as usize;
    if max_chars >= 3 {
        let label: String = if name.chars().count() <= max_chars {
            name.to_string()
        } else {
            let cut: String = name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{cut}..")
        };
        let mut esc = String::new();
        xml_escape(&label, &mut esc);
        let ty = y + ROW_HEIGHT - 4.0;
        let tx = x + 3.0;
        let _ = write!(svg, "<text x=\"{tx:.2}\" y=\"{ty:.2}\">{esc}</text>");
    }
    svg.push_str("</g>\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        Profile::from_folded(
            "compress.total 5\n\
             compress.total;compress.range_scan 40\n\
             compress.total;compress.encode_blocks 50\n\
             compress.total;compress.encode_blocks;io.write 5\n",
        )
        .unwrap()
    }

    #[test]
    fn svg_is_deterministic_and_well_formed() {
        let p = profile();
        let a = render_flamegraph_svg(&p);
        let b = render_flamegraph_svg(&p);
        assert_eq!(a, b, "pure function of the profile");
        assert!(a.starts_with("<svg "));
        assert!(a.trim_end().ends_with("</svg>"));
        assert_eq!(a.matches("<g>").count(), a.matches("</g>").count());
        // Every named frame appears as a tooltip.
        for name in [
            "all",
            "compress.total",
            "compress.range_scan",
            "compress.encode_blocks",
            "io.write",
        ] {
            assert!(
                a.contains(&format!("<title>{name} (")),
                "missing frame {name}"
            );
        }
    }

    #[test]
    fn widths_are_proportional_to_samples() {
        let p = profile();
        let svg = render_flamegraph_svg(&p);
        // 100 samples over 1200px → range_scan (40 cumulative) is 480px.
        assert!(svg.contains("width=\"480.00\""), "{svg}");
        // encode_blocks is 50 self + 5 in its io.write child → 660px.
        assert!(svg.contains("width=\"660.00\""), "{svg}");
    }

    #[test]
    fn stack_order_does_not_matter() {
        // from_folded uses a BTreeMap, so two orderings of the same lines
        // must produce identical SVG.
        let a = Profile::from_folded("x;y 1\na;b 2\n").unwrap();
        let b = Profile::from_folded("a;b 2\nx;y 1\n").unwrap();
        assert_eq!(render_flamegraph_svg(&a), render_flamegraph_svg(&b));
    }

    #[test]
    fn names_are_xml_escaped() {
        let p = Profile::from_folded("a<b>&\"c 3\n").unwrap();
        let svg = render_flamegraph_svg(&p);
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c"));
        assert!(!svg.contains("<b>"));
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let svg = render_flamegraph_svg(&Profile::default());
        assert!(svg.contains("(no samples)"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}
