//! # szx-profile
//!
//! Zone-stack sampling profiler for the szx pipeline. A sampler thread
//! wakes at a configurable rate (default ~997 Hz — prime, so it cannot
//! phase-lock with millisecond-periodic work), snapshots every registered
//! thread's published zone stack (see `szx_telemetry::zones` for the
//! seqlock protocol), and accumulates the folded stacks into a
//! hash-counted [`Profile`]. Instrumentation is free: the existing
//! `trace_zone`/`Span` RAII guards are the only write sites, so anything
//! already visible to the flight recorder is visible to the profiler.
//!
//! Export three ways:
//!
//! * [`Profile::folded`] — collapsed-stack text (`a;b;c 42` per line),
//!   directly consumable by inferno / speedscope / `flamegraph.pl`;
//! * [`render_flamegraph_svg`] — an in-tree, self-contained, deterministic
//!   SVG flamegraph (no external tooling needed);
//! * [`Profile::publish`] — a self/total-time table merged into the global
//!   registry as `profile.*` entries, riding the existing Prometheus
//!   renderer and run manifests.
//!
//! ```
//! let profiler = szx_profile::Profiler::start(szx_profile::default_hz());
//! // ... instrumented work on any threads ...
//! let profile = profiler.stop();
//! print!("{}", profile.folded());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod flame;

pub use flame::render_flamegraph_svg;

use std::collections::BTreeMap;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use szx_telemetry::zones;

/// Default sampling rate (Hz). Prime, so the tick cannot phase-lock with
/// millisecond-granular frame or chunk boundaries and systematically miss
/// (or over-count) one phase.
pub const DEFAULT_HZ: u32 = 997;

/// Sampling rate: `SZX_PROFILE_HZ` when set to a positive integer,
/// [`DEFAULT_HZ`] otherwise. Clamped to 10 kHz — beyond that the sampler's
/// own lock traffic starts to show up in the profile it is taking.
pub fn default_hz() -> u32 {
    std::env::var("SZX_PROFILE_HZ")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&hz| hz > 0)
        .unwrap_or(DEFAULT_HZ)
        .min(10_000)
}

/// One zone's aggregate in the self/total table: `self_samples` counts
/// samples where the zone was the innermost frame, `total_samples` counts
/// samples where it appeared anywhere on the stack (once per sample, so a
/// recursive zone is not double-counted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Zone name (a `trace_zone`/`span` name, e.g. `compress.range_scan`).
    pub name: String,
    /// Samples with this zone innermost.
    pub self_samples: u64,
    /// Samples with this zone anywhere on the stack.
    pub total_samples: u64,
}

/// Accumulated sampling profile: folded stacks with counts plus sampler
/// health statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Folded stacks (rootmost frame first) → sample count. `BTreeMap` so
    /// every export iterates in one deterministic order.
    pub stacks: BTreeMap<Vec<String>, u64>,
    /// Total stack samples accumulated (sum of all counts; one sample per
    /// non-idle thread per tick).
    pub samples: u64,
    /// Sampler wakeups (each sweeps all registered threads).
    pub ticks: u64,
    /// Torn or in-progress slot reads retried or abandoned.
    pub torn_retries: u64,
    /// Maximum registered threads observed in one sweep.
    pub threads_seen: u64,
    /// Configured sampling rate.
    pub hz: u32,
    /// Wall time the sampler ran for.
    pub elapsed_secs: f64,
}

impl Profile {
    /// Wall seconds one tick represents (measured when the sampler ran,
    /// nominal `1/hz` for profiles parsed from folded text).
    pub fn tick_seconds(&self) -> f64 {
        if self.ticks > 0 && self.elapsed_secs > 0.0 {
            self.elapsed_secs / self.ticks as f64
        } else if self.hz > 0 {
            1.0 / self.hz as f64
        } else {
            1.0 / DEFAULT_HZ as f64
        }
    }

    /// Collapsed-stack text: one `frame;frame;frame count` line per folded
    /// stack, deterministically ordered, consumable by inferno/speedscope.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse collapsed-stack text (the [`Profile::folded`] format) back
    /// into a profile — the round-trip anchor for golden tests and for
    /// rendering a flamegraph from a saved `.folded` file. Health fields
    /// are reconstructed as far as the format allows (`samples` from the
    /// counts, everything else zero / nominal).
    pub fn from_folded(text: &str) -> Result<Profile, String> {
        let mut p = Profile {
            hz: DEFAULT_HZ,
            ..Profile::default()
        };
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stack, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no count field", lineno + 1))?;
            let count: u64 = count
                .parse()
                .map_err(|e| format!("line {}: bad count: {e}", lineno + 1))?;
            let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
            if frames.iter().any(String::is_empty) {
                return Err(format!("line {}: empty frame name", lineno + 1));
            }
            p.samples += count;
            *p.stacks.entry(frames).or_insert(0) += count;
        }
        Ok(p)
    }

    /// Self/total sample table per zone name, deterministically ordered.
    pub fn self_total(&self) -> BTreeMap<String, (u64, u64)> {
        let mut table: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for (stack, &count) in &self.stacks {
            if let Some(leaf) = stack.last() {
                table.entry(leaf.clone()).or_insert((0, 0)).0 += count;
            }
            let mut seen: Vec<&str> = Vec::with_capacity(stack.len());
            for frame in stack {
                // Count each name once per sample even when recursive.
                if !seen.contains(&frame.as_str()) {
                    seen.push(frame);
                    table.entry(frame.clone()).or_insert((0, 0)).1 += count;
                }
            }
        }
        table
    }

    /// Top `n` zones by self samples (ties broken by name for determinism).
    pub fn hotspots(&self, n: usize) -> Vec<Hotspot> {
        let mut all: Vec<Hotspot> = self
            .self_total()
            .into_iter()
            .map(|(name, (s, t))| Hotspot {
                name,
                self_samples: s,
                total_samples: t,
            })
            .collect();
        all.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then_with(|| a.name.cmp(&b.name))
        });
        all.truncate(n);
        all
    }

    /// Fraction of slot reads that came back torn (0 when nothing sampled).
    /// Above ~1% means the sampler is losing races to very short zones and
    /// the profile under-represents them; the CLI warns under `--stats`.
    pub fn torn_rate(&self) -> f64 {
        let attempts = self.samples + self.torn_retries;
        if attempts == 0 {
            0.0
        } else {
            self.torn_retries as f64 / attempts as f64
        }
    }

    /// Merge this profile into the global registry as `profile.*` entries:
    /// `profile.samples_total` / `profile.torn_retries` / `profile.ticks`
    /// counters, a `profile.threads_seen` gauge, and per-zone
    /// `profile.zone_self_seconds{zone=…}` / `profile.zone_total_seconds`
    /// labeled gauges — so the existing Prometheus exposition, `--stats`
    /// table, and run manifests all carry the profile without new plumbing.
    pub fn publish(&self) {
        let reg = szx_telemetry::global();
        reg.counter("profile.samples_total").add(self.samples);
        reg.counter("profile.torn_retries").add(self.torn_retries);
        reg.counter("profile.ticks").add(self.ticks);
        reg.gauge("profile.threads_seen")
            .set(self.threads_seen as f64);
        let tick = self.tick_seconds();
        for (name, (self_n, total_n)) in self.self_total() {
            reg.gauge_labeled("profile.zone_self_seconds", &[("zone", &name)])
                .set(self_n as f64 * tick);
            reg.gauge_labeled("profile.zone_total_seconds", &[("zone", &name)])
                .set(total_n as f64 * tick);
        }
    }
}

/// A running sampler. [`Profiler::start`] enables zone-stack publication
/// and spawns the sampler thread; [`Profiler::stop`] tears both down and
/// returns the accumulated [`Profile`].
pub struct Profiler {
    stop_tx: mpsc::Sender<()>,
    handle: JoinHandle<Profile>,
    hz: u32,
}

impl Profiler {
    /// Enable zone publication and start sampling at `hz`. Threads
    /// (including rayon workers) self-register with the profiler the first
    /// time they enter a zone, so no pool integration is needed.
    pub fn start(hz: u32) -> Profiler {
        let hz = hz.clamp(1, 10_000);
        zones::set_profiling_enabled(true);
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("szx-profile-sampler".into())
            .spawn(move || sampler_loop(hz, &stop_rx))
            .expect("spawn sampler thread");
        Profiler {
            stop_tx,
            handle,
            hz,
        }
    }

    /// Configured sampling rate.
    pub fn hz(&self) -> u32 {
        self.hz
    }

    /// Disable zone publication, stop the sampler, and return the profile.
    pub fn stop(self) -> Profile {
        zones::set_profiling_enabled(false);
        // A dropped receiver (sampler already exited) is fine; the join
        // below still collects its result.
        let _ = self.stop_tx.send(());
        self.handle
            .join()
            .expect("sampler thread never panics (all-safe seqlock reads)")
    }
}

/// Raw id-stacks during accumulation (resolution to names happens once at
/// stop, off the sampling tick).
fn sampler_loop(hz: u32, stop_rx: &mpsc::Receiver<()>) -> Profile {
    let period = Duration::from_secs_f64(1.0 / hz as f64);
    let started = Instant::now();
    let mut stacks: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
    let mut profile = Profile {
        hz,
        ..Profile::default()
    };
    // Ok(()) (stop requested) and Disconnected (Profiler dropped) both end
    // the loop; only the timeout tick samples.
    while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(period) {
        profile.ticks += 1;
        let sweep = zones::sample_stacks(|stack| {
            *stacks.entry(stack.to_vec()).or_insert(0) += 1;
        });
        profile.samples += sweep.stacks;
        profile.torn_retries += sweep.torn_retries;
        profile.threads_seen = profile.threads_seen.max(sweep.threads_seen);
    }
    profile.elapsed_secs = started.elapsed().as_secs_f64();
    for (ids, count) in stacks {
        let named: Vec<String> = ids
            .iter()
            // An unresolvable id would be a zone-slot protocol bug; keep
            // the sample but mark the frame so smoke tests catch it.
            .map(|&id| match zones::zone_name(id) {
                Some(name) => name.to_string(),
                None => format!("??{id}"),
            })
            .collect();
        *profile.stacks.entry(named).or_insert(0) += count;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let mut p = Profile {
            hz: 1000,
            ..Profile::default()
        };
        let mut add = |stack: &[&str], n: u64| {
            p.stacks
                .insert(stack.iter().map(|s| s.to_string()).collect(), n);
            p.samples += n;
        };
        add(&["compress.total"], 5);
        add(&["compress.total", "compress.range_scan"], 40);
        add(&["compress.total", "compress.encode_blocks"], 50);
        add(&["compress.total", "compress.encode_blocks", "io.write"], 5);
        p
    }

    #[test]
    fn folded_roundtrip_is_lossless() {
        let p = sample_profile();
        let text = p.folded();
        assert!(text.contains("compress.total;compress.range_scan 40\n"));
        let back = Profile::from_folded(&text).unwrap();
        assert_eq!(back.stacks, p.stacks);
        assert_eq!(back.samples, p.samples);
        // Second round-trip is byte-identical (deterministic ordering).
        assert_eq!(back.folded(), text);
    }

    #[test]
    fn from_folded_rejects_malformed_lines() {
        assert!(Profile::from_folded("no-count-here").is_err());
        assert!(Profile::from_folded("a;b notanumber").is_err());
        assert!(Profile::from_folded("a;;b 3").is_err());
        let empty = Profile::from_folded("\n  \n").unwrap();
        assert_eq!(empty.samples, 0);
    }

    #[test]
    fn self_total_attribution() {
        let p = sample_profile();
        let table = p.self_total();
        // encode_blocks: self excludes the io.write leaf samples, total
        // includes them.
        assert_eq!(table["compress.encode_blocks"], (50, 55));
        assert_eq!(table["compress.range_scan"], (40, 40));
        // The root: self only where it was the leaf, total everywhere.
        assert_eq!(table["compress.total"], (5, 100));
        assert_eq!(table["io.write"], (5, 5));
    }

    #[test]
    fn recursive_frames_count_once_per_sample_in_total() {
        let mut p = Profile::default();
        p.stacks.insert(vec!["a".into(), "b".into(), "a".into()], 7);
        p.samples = 7;
        let table = p.self_total();
        assert_eq!(table["a"], (7, 7), "recursion must not double-count");
        assert_eq!(table["b"], (0, 7));
    }

    #[test]
    fn hotspots_rank_by_self_samples() {
        let p = sample_profile();
        let top = p.hotspots(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "compress.encode_blocks");
        assert_eq!(top[0].self_samples, 50);
        assert_eq!(top[1].name, "compress.range_scan");
    }

    #[test]
    fn torn_rate_and_tick_seconds() {
        let mut p = sample_profile();
        assert_eq!(p.torn_rate(), 0.0);
        p.torn_retries = 100;
        assert!((p.torn_rate() - 0.5).abs() < 1e-12);
        assert!((p.tick_seconds() - 1e-3).abs() < 1e-9, "nominal 1/hz");
        p.ticks = 10;
        p.elapsed_secs = 0.05;
        assert!(
            (p.tick_seconds() - 5e-3).abs() < 1e-12,
            "measured beats nominal"
        );
    }

    #[test]
    fn sampler_captures_a_held_zone() {
        // End-to-end: start the sampler, hold a zone long enough for
        // several ticks, and the profile must attribute samples to it.
        let profiler = Profiler::start(2000);
        {
            let _z = szx_telemetry::trace_zone("test.profile.held", 0);
            std::thread::sleep(Duration::from_millis(40));
        }
        let profile = profiler.stop();
        assert!(profile.ticks > 0, "sampler ticked");
        let table = self_total_or_empty(&profile);
        let held = table.get("test.profile.held");
        assert!(
            held.map(|&(s, _)| s > 0).unwrap_or(false),
            "held zone must appear as self time: {:?}",
            profile.stacks
        );
        assert!(
            !profile.folded().contains("??"),
            "every frame resolves: {}",
            profile.folded()
        );
    }

    fn self_total_or_empty(p: &Profile) -> BTreeMap<String, (u64, u64)> {
        p.self_total()
    }

    #[test]
    fn default_hz_is_prime_and_clamped() {
        assert_eq!(DEFAULT_HZ, 997);
        let hz = default_hz();
        assert!(hz > 0 && hz <= 10_000);
    }
}
