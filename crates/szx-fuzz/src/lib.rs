//! # szx-fuzz
//!
//! Deterministic in-tree fuzzing + differential torture harness for the
//! szx-rs workspace. Zero external dependencies: a seeded xorshift
//! mutation engine and a structured case generator drive three targets —
//!
//! * **decode** ([`targets::FuzzTarget::DecodeArbitrary`]): arbitrary
//!   bytes through every decode entry point, asserting error-not-panic and
//!   six-path differential agreement (serial scalar, serial kernel,
//!   serial simd, parallel, random access, streaming);
//! * **round** ([`targets::FuzzTarget::RoundtripConfig`]): bytes decoded
//!   into a (config, synthetic field) pair, asserting bitwise encode-path
//!   stream identity, the header error bound, and decode agreement;
//! * **stream** ([`targets::FuzzTarget::StreamTorture`]): bytes treated as
//!   a framed container, torturing the frame index / header / TOC parsers.
//!
//! The same target functions back three harnesses: the in-tree engine
//! (`cargo run -p szx-fuzz -- …`, fully offline and reproducible from one
//! seed), the committed-corpus regression replay
//! (`tests/tests/fuzz_regressions.rs`), and the optional libFuzzer
//! wrappers under `fuzz/` for instrumented runs where cargo-fuzz is
//! available. See DESIGN.md §12 for the architecture and the corpus
//! lifecycle (find → minimize → commit → replay).

#![forbid(unsafe_code)]

pub mod corpus;
pub mod engine;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod rng;
pub mod targets;

pub use corpus::{fnv1a64, minimize};
pub use engine::{fuzz_target, CampaignStats, Finding, FuzzOptions};
pub use gen::{Spec, SpecType};
pub use oracle::{differential_decode, differential_decode_typed, Failure};
pub use rng::XorShift;
pub use targets::{run_target, run_target_guarded, FuzzTarget};
