//! The byte-level mutation engine.
//!
//! Classic coverage-guided fuzzers (AFL, libFuzzer) stack a handful of
//! cheap structural mutations per iteration; this engine reproduces that
//! catalogue deterministically on top of [`crate::rng::XorShift`]:
//!
//! * single-bit flips and interesting-byte overwrites,
//! * little-endian arithmetic on 1/2/4/8-byte windows,
//! * multi-byte window smashes (2–8 contiguous bytes),
//! * truncation, extension, chunk deletion/duplication,
//! * splicing a window from another corpus entry,
//! * header-focused variants of the above (the first
//!   [`HEADER_FOCUS`] bytes hold the SZx header + early sections, where
//!   most parser decisions live).
//!
//! Every mutation keeps the input within [`MAX_LEN`] so a runaway
//! extension loop cannot balloon the corpus.

use crate::rng::XorShift;

/// Hard cap on mutated input length (bytes).
pub const MAX_LEN: usize = 1 << 16;

/// Prefix that gets a disproportionate share of mutations: header plus the
/// first section bytes, where the stream parsers make most decisions.
const HEADER_FOCUS: usize = 64;

/// Byte values that historically shake out parser edge cases.
const INTERESTING: [u8; 9] = [0x00, 0x01, 0x7f, 0x80, 0xff, 0x10, 0x24, 0x5a, 0xa5];

/// Pick a mutation offset, biased towards the header region.
fn offset(rng: &mut XorShift, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    if rng.one_in(3) {
        rng.below(HEADER_FOCUS.min(len))
    } else {
        rng.below(len)
    }
}

/// Apply one randomly chosen mutation to `input`, possibly splicing from
/// `donor` (another corpus entry). Never leaves the input longer than
/// [`MAX_LEN`]; may leave it empty (empty inputs are legal fuzz cases).
fn mutate_once(input: &mut Vec<u8>, rng: &mut XorShift, donor: &[u8]) {
    let choice = rng.below(10);
    let len = input.len();
    match choice {
        // Bit flip.
        0 if len > 0 => {
            let i = offset(rng, len);
            input[i] ^= 1 << rng.below(8);
        }
        // Interesting byte.
        1 if len > 0 => {
            let i = offset(rng, len);
            input[i] = INTERESTING[rng.below(INTERESTING.len())];
        }
        // Random byte.
        2 if len > 0 => {
            let i = offset(rng, len);
            input[i] = rng.next_u32() as u8;
        }
        // LE arithmetic on a 1/2/4/8-byte window: +/- small delta.
        3 if len > 0 => {
            let width = [1usize, 2, 4, 8][rng.below(4)].min(len);
            let i = offset(rng, len - width + 1);
            let mut word = [0u8; 8];
            word[..width].copy_from_slice(&input[i..i + width]);
            let v = u64::from_le_bytes(word);
            let delta = (rng.below(16) as u64).wrapping_add(1);
            let v = if rng.one_in(2) {
                v.wrapping_add(delta)
            } else {
                v.wrapping_sub(delta)
            };
            input[i..i + width].copy_from_slice(&v.to_le_bytes()[..width]);
        }
        // Multi-byte window smash: 2-8 contiguous bytes.
        4 if len > 1 => {
            let width = (2 + rng.below(7)).min(len);
            let i = offset(rng, len - width + 1);
            if rng.one_in(2) {
                let fill = INTERESTING[rng.below(INTERESTING.len())];
                input[i..i + width].fill(fill);
            } else {
                let mut window = vec![0u8; width];
                rng.fill(&mut window);
                input[i..i + width].copy_from_slice(&window);
            }
        }
        // Truncate.
        5 if len > 0 => {
            input.truncate(rng.below(len));
        }
        // Extend with random or zero bytes.
        6 => {
            let extra = 1 + rng.below(64);
            let extra = extra.min(MAX_LEN.saturating_sub(len));
            let start = input.len();
            input.resize(start + extra, 0);
            if rng.one_in(2) {
                let end = input.len();
                rng.fill(&mut input[start..end]);
            }
        }
        // Delete a chunk.
        7 if len > 1 => {
            let width = 1 + rng.below(len / 2);
            let i = rng.below(len - width + 1);
            input.drain(i..i + width);
        }
        // Duplicate a chunk in place.
        8 if len > 0 => {
            let width = 1 + rng.below(len.min(32));
            let i = rng.below(len - width + 1);
            let chunk: Vec<u8> = input[i..i + width].to_vec();
            let at = rng.below(input.len() + 1);
            for (k, b) in chunk.into_iter().enumerate() {
                if input.len() >= MAX_LEN {
                    break;
                }
                input.insert(at + k, b);
            }
        }
        // Splice a window from the donor entry.
        _ if !donor.is_empty() => {
            let width = 1 + rng.below(donor.len().min(64));
            let from = rng.below(donor.len() - width + 1);
            let chunk = &donor[from..from + width];
            if input.is_empty() {
                input.extend_from_slice(chunk);
            } else {
                let i = rng.below(input.len());
                let end = (i + width).min(input.len());
                input[i..end].copy_from_slice(&chunk[..end - i]);
            }
            input.truncate(MAX_LEN);
        }
        // The guarded arms above fall through here for degenerate inputs:
        // regrow from the RNG so an empty input does not stay empty forever.
        _ => {
            let extra = 1 + rng.below(48);
            let start = input.len();
            input.resize((start + extra).min(MAX_LEN), 0);
            let end = input.len();
            rng.fill(&mut input[start..end]);
        }
    }
}

/// Apply a stacked batch of 1–8 mutations, AFL havoc style.
pub fn mutate(input: &mut Vec<u8>, rng: &mut XorShift, donor: &[u8]) {
    let stack = 1 + rng.below(8);
    for _ in 0..stack {
        mutate_once(input, rng, donor);
    }
    input.truncate(MAX_LEN);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let base: Vec<u8> = (0..200u8).collect();
        let donor: Vec<u8> = (0..50u8).rev().collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let mut ra = XorShift::new(123);
        let mut rb = XorShift::new(123);
        for _ in 0..100 {
            mutate(&mut a, &mut ra, &donor);
            mutate(&mut b, &mut rb, &donor);
        }
        assert_eq!(a, b);
        assert_ne!(a, base, "100 stacked rounds must change the input");
    }

    #[test]
    fn length_stays_bounded_and_recovers_from_empty() {
        let mut rng = XorShift::new(9);
        let mut input = Vec::new();
        let mut seen_nonempty = false;
        for _ in 0..500 {
            mutate(&mut input, &mut rng, &[1, 2, 3]);
            assert!(input.len() <= MAX_LEN);
            seen_nonempty |= !input.is_empty();
        }
        assert!(seen_nonempty);
    }
}
