//! Structured generation for the roundtrip target.
//!
//! cargo-fuzz and the in-tree engine both hand targets *bytes*; the
//! roundtrip target needs a *(config, dataset)* pair. [`Spec`] is the
//! bridge: a total, lenient decoder from arbitrary bytes into a valid
//! compression configuration plus a deterministic synthetic field — every
//! byte string, including the empty one, maps to some case, and mutating
//! the bytes walks the config/data space. `Spec::to_bytes` round-trips so
//! seed corpora can be authored from known-interesting cases.

use szx_core::{CommitStrategy, ErrorBound, SzxConfig, SzxFloat, MAX_BLOCK_SIZE};

use crate::rng::XorShift;

/// Upper bound on generated field length: big enough for multi-block
/// streams at every block size that matters, small enough that a fuzz
/// iteration stays in the microsecond range.
pub const MAX_SPEC_N: usize = 8192;

/// Number of distinct data shapes [`Spec::generate`] can produce.
const N_SHAPES: u8 = 8;

/// Element type selector carried by a [`Spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecType {
    F32,
    F64,
}

/// A fully decoded roundtrip case: compressor config + data recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spec {
    pub dtype: SpecType,
    pub strategy: CommitStrategy,
    pub block_size: usize,
    /// Absolute or relative error bound (always finite and >= 0).
    pub bound: ErrorBound,
    /// Number of elements to generate (1..=MAX_SPEC_N).
    pub n: usize,
    /// Which synthetic shape the data takes (waves, noise, plateaus, ...).
    pub shape: u8,
    /// Special-value injection flags: bit 0 NaN, bit 1 +inf, bit 2 -inf,
    /// bit 3 denormals, bit 4 huge dynamic range.
    pub inject: u8,
    /// RNG seed for the data generator.
    pub seed: u64,
}

/// Fixed serialized length of a spec (shorter inputs parse with defaults).
pub const SPEC_LEN: usize = 18;

impl Spec {
    /// Decode a spec from arbitrary bytes. Total: every input, including
    /// the empty one, yields a valid spec (missing bytes default to zero,
    /// extra bytes are ignored).
    pub fn from_bytes(bytes: &[u8]) -> Spec {
        let b = |i: usize| bytes.get(i).copied().unwrap_or(0);
        let dtype = if b(0) & 1 == 0 {
            SpecType::F32
        } else {
            SpecType::F64
        };
        let strategy = match b(1) % 3 {
            0 => CommitStrategy::ByteAligned,
            1 => CommitStrategy::BitPack,
            _ => CommitStrategy::BytePlusResidual,
        };
        let raw_bs = u16::from_le_bytes([b(2), b(3)]) as usize;
        let block_size = raw_bs % MAX_BLOCK_SIZE + 1;
        let bound_byte = b(4);
        let exp = i32::from(bound_byte & 0x0f) % 10;
        let magnitude = if exp == 9 { 0.0 } else { 10f64.powi(-exp) };
        let bound = if bound_byte & 0x80 != 0 {
            ErrorBound::Relative(magnitude)
        } else {
            ErrorBound::Absolute(magnitude)
        };
        let raw_n = u32::from_le_bytes([b(5), b(6), b(7), 0]) as usize;
        let n = raw_n % MAX_SPEC_N + 1;
        let shape = b(8) % N_SHAPES;
        let inject = b(9);
        let seed = u64::from_le_bytes([b(10), b(11), b(12), b(13), b(14), b(15), b(16), b(17)]);
        Spec {
            dtype,
            strategy,
            block_size,
            bound,
            n,
            shape,
            inject,
            seed,
        }
    }

    /// Serialize so that `Spec::from_bytes(spec.to_bytes()) == spec`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; SPEC_LEN];
        out[0] = match self.dtype {
            SpecType::F32 => 0,
            SpecType::F64 => 1,
        };
        out[1] = match self.strategy {
            CommitStrategy::ByteAligned => 0,
            CommitStrategy::BitPack => 1,
            CommitStrategy::BytePlusResidual => 2,
        };
        let raw_bs = (self.block_size - 1) as u16;
        out[2..4].copy_from_slice(&raw_bs.to_le_bytes());
        let (rel, magnitude) = match self.bound {
            ErrorBound::Absolute(e) => (0u8, e),
            ErrorBound::Relative(e) => (0x80, e),
        };
        let exp = if magnitude == 0.0 {
            9
        } else {
            (-magnitude.log10()).round() as i32
        };
        out[4] = rel | (exp.clamp(0, 9) as u8);
        let raw_n = (self.n - 1) as u32;
        out[5..8].copy_from_slice(&raw_n.to_le_bytes()[..3]);
        out[8] = self.shape % N_SHAPES;
        out[9] = self.inject;
        out[10..18].copy_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// The compressor configuration this spec describes.
    pub fn config(&self) -> SzxConfig {
        SzxConfig {
            block_size: self.block_size,
            error_bound: self.bound,
            strategy: self.strategy,
            kernel: szx_core::KernelSelect::Scalar,
        }
    }

    /// Generate the dataset deterministically for element type `F`.
    pub fn generate<F: SzxFloat>(&self) -> Vec<F> {
        let mut rng = XorShift::new(self.seed ^ 0xDA7A_5EED);
        let mut data: Vec<F> = (0..self.n)
            .map(|i| F::from_f64(self.sample(i, &mut rng)))
            .collect();
        self.inject_specials(&mut data, &mut rng);
        data
    }

    /// One value of the base shape at index `i`.
    fn sample(&self, i: usize, rng: &mut XorShift) -> f64 {
        let x = i as f64;
        fn noise(rng: &mut XorShift) -> f64 {
            rng.next_u64() as f64 / u64::MAX as f64
        }
        match self.shape {
            // Smooth wave + small noise: mostly non-constant blocks.
            0 => (x * 0.01).sin() * 5.0 + noise(rng) * 0.01,
            // Wide uniform noise.
            1 => (noise(rng) - 0.5) * 2e3,
            // Mostly constant with rare jumps.
            2 => {
                if rng.one_in(50) {
                    noise(rng) * 100.0
                } else {
                    42.5
                }
            }
            // Tiny magnitudes near typical bounds.
            3 => (noise(rng) - 0.5) * 1e-5,
            // Mixed exponents: drives required-length diversity.
            4 => {
                let e = (rng.below(16) as i32) - 8;
                (noise(rng) - 0.5) * 10f64.powi(e)
            }
            // Smooth low-variation field: mostly constant blocks.
            5 => 1000.0 + (x * 0.001).cos(),
            // Exactly constant.
            6 => -7.25,
            // Alternating sign ramp: exercises the XOR leading-byte coder.
            _ => {
                let sign = if i.is_multiple_of(2) { 1.0 } else { -1.0 };
                sign * (1.0 + x * 0.125)
            }
        }
    }

    /// Sprinkle special values per the `inject` flags (~1 in 40 elements
    /// per enabled class, so multi-block inputs mix special and ordinary
    /// blocks).
    fn inject_specials<F: SzxFloat>(&self, data: &mut [F], rng: &mut XorShift) {
        if self.inject == 0 {
            return;
        }
        for slot in data.iter_mut() {
            if !rng.one_in(40) {
                continue;
            }
            let class = rng.below(5) as u8;
            let enabled = self.inject & (1 << class) != 0;
            if !enabled {
                continue;
            }
            *slot = match class {
                0 => F::from_f64(f64::NAN),
                1 => F::from_f64(f64::INFINITY),
                2 => F::from_f64(f64::NEG_INFINITY),
                // Denormal for the narrower type too: 1e-40 is subnormal in
                // f32 and tiny-but-normal in f64; both stress normalization.
                3 => F::from_f64(1e-40),
                _ => F::from_f64(if rng.one_in(2) { 1e30 } else { -1e30 }),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_is_total() {
        for input in [
            &[][..],
            &[0xff][..],
            &[0xff; 4][..],
            &[0x00; 18][..],
            &[0xff; 64][..],
        ] {
            let spec = Spec::from_bytes(input);
            assert!(spec.block_size >= 1 && spec.block_size <= MAX_BLOCK_SIZE);
            assert!(spec.n >= 1 && spec.n <= MAX_SPEC_N);
            assert!(spec.config().validate().is_ok(), "{spec:?}");
        }
    }

    #[test]
    fn to_bytes_roundtrips() {
        let mut rng = XorShift::new(5);
        for _ in 0..200 {
            let mut raw = vec![0u8; SPEC_LEN];
            rng.fill(&mut raw);
            let spec = Spec::from_bytes(&raw);
            let again = Spec::from_bytes(&spec.to_bytes());
            assert_eq!(spec, again);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = Spec::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 0x1f, 1, 2, 3, 4, 5, 6, 7, 8]);
        let a: Vec<f64> = spec.generate();
        let b: Vec<f64> = spec.generate();
        assert_eq!(a.len(), spec.n);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
