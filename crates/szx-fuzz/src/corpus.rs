//! Corpus lifecycle: load committed inputs, write findings, keep the
//! manifest fresh, and shrink failing inputs before they are committed.
//!
//! The corpus lives in-tree (`tests/corpus/`) and is replayed by
//! `tests/tests/fuzz_regressions.rs` on every test run, so a finding fixed
//! once stays fixed. File names are load-bearing: the prefix selects the
//! replay target (`decode_` / `stream_` / `round_`), and `MANIFEST.txt`
//! pins name + length + FNV-1a digest of every entry so CI can detect a
//! stale or hand-edited corpus with one `git diff --exit-code`.

use std::fs;
use std::io;
use std::path::Path;

/// FNV-1a 64-bit hash — the workspace's standing zero-dep digest (the run
/// manifests use the same function for dataset digests).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The manifest file name inside a corpus directory.
pub const MANIFEST_NAME: &str = "MANIFEST.txt";

/// Load every corpus entry (sorted by name for determinism), skipping the
/// manifest itself. Returns `(file_name, bytes)` pairs.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == MANIFEST_NAME || name.starts_with('.') {
            continue;
        }
        entries.push((name, fs::read(entry.path())?));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(entries)
}

/// Render the manifest for a set of corpus entries: one line per file,
/// `name<TAB>length<TAB>fnv1a64-hex`, sorted by name.
pub fn manifest_string(entries: &[(String, Vec<u8>)]) -> String {
    let mut out = String::from("# corpus manifest: name\tbytes\tfnv1a64\n");
    for (name, bytes) in entries {
        out.push_str(&format!(
            "{name}\t{}\t{:016x}\n",
            bytes.len(),
            fnv1a64(bytes)
        ));
    }
    out
}

/// Rewrite `MANIFEST.txt` from the directory contents. Returns the number
/// of entries listed.
pub fn write_manifest(dir: &Path) -> io::Result<usize> {
    let entries = load_dir(dir)?;
    fs::write(dir.join(MANIFEST_NAME), manifest_string(&entries))?;
    Ok(entries.len())
}

/// Deterministic file name for a minimized finding, e.g.
/// `decode_finding_3fa9c1d2e4b5.bin` — the prefix routes it back to the
/// target that found it when the regression suite replays the directory.
pub fn finding_name(prefix: &str, input: &[u8]) -> String {
    format!(
        "{prefix}_finding_{:012x}.bin",
        fnv1a64(input) & 0xffff_ffff_ffff
    )
}

/// Greedy delta-debugging: shrink `input` while `still_fails` holds,
/// spending at most `budget` predicate calls. Three passes repeated to a
/// fixed point: tail truncation, chunk deletion at shrinking granularity,
/// and byte zeroing. Fully deterministic.
pub fn minimize(
    input: &[u8],
    mut budget: usize,
    mut still_fails: impl FnMut(&[u8]) -> bool,
) -> Vec<u8> {
    let mut cur = input.to_vec();
    let mut check = |cand: &[u8], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        still_fails(cand)
    };

    loop {
        let before = cur.clone();

        // Pass 1: cut the tail in half while the failure survives.
        while cur.len() > 1 {
            let cand = &cur[..cur.len() / 2];
            if check(cand, &mut budget) {
                cur = cand.to_vec();
            } else {
                break;
            }
        }

        // Pass 2: delete chunks, halving the chunk size down to one byte.
        let mut size = (cur.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.len() && cur.len() > 1 {
                let end = (i + size).min(cur.len());
                let mut cand = Vec::with_capacity(cur.len() - (end - i));
                cand.extend_from_slice(&cur[..i]);
                cand.extend_from_slice(&cur[end..]);
                if check(&cand, &mut budget) {
                    cur = cand;
                } else {
                    i = end;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 3: zero out bytes (smaller constants read better in a
        // committed regression input).
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand[i] = 0;
            if check(&cand, &mut budget) {
                cur = cand;
            }
        }

        if cur == before || budget == 0 {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn minimize_shrinks_to_the_essential_byte() {
        // Failure: input contains the byte 0x42 anywhere.
        let input: Vec<u8> = (0..200u8).collect();
        let min = minimize(&input, 10_000, |cand| cand.contains(&0x42));
        assert_eq!(min, vec![0x42]);
    }

    #[test]
    fn minimize_preserves_multi_byte_predicates() {
        let mut input = vec![0u8; 300];
        input[120] = 7;
        input[250] = 9;
        let min = minimize(&input, 10_000, |c| c.contains(&7) && c.contains(&9));
        assert_eq!(min, vec![7, 9]);
    }

    #[test]
    fn manifest_is_deterministic() {
        let entries = vec![
            ("b.bin".to_string(), vec![1, 2, 3]),
            ("a.bin".to_string(), vec![]),
        ];
        let m = manifest_string(&entries);
        assert!(m.contains("a.bin\t0\t"));
        assert!(m.contains("b.bin\t3\t"));
    }
}
