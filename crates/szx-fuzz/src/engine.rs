//! The deterministic fuzzing loop.
//!
//! No fork server, no coverage instrumentation — the engine runs in-process
//! (targets are panic-guarded) and approximates coverage feedback with
//! *outcome novelty*: each execution folds its decode outcomes into a
//! 64-bit signature, and inputs that produce a signature never seen before
//! join the live corpus. That is enough guidance to walk mutated archives
//! through distinct parser rejection points and decode shapes, while
//! keeping the whole campaign reproducible from one seed.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::corpus::minimize;
use crate::mutate::mutate;
use crate::oracle::Failure;
use crate::rng::XorShift;
use crate::targets::{run_target_guarded, FuzzTarget};

/// Campaign options.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// RNG seed; the whole campaign is a pure function of seed + corpus.
    pub seed: u64,
    /// Iteration budget.
    pub iters: u64,
    /// Optional wall-clock cap. Iterations stop early when it is hit, so
    /// only fixed-iteration runs are bit-reproducible end to end.
    pub time_budget: Option<Duration>,
    /// Stop after this many findings (each is minimized, which costs
    /// thousands of extra executions).
    pub max_findings: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            iters: 1000,
            time_budget: None,
            max_findings: 8,
        }
    }
}

/// One confirmed, minimized finding.
#[derive(Debug)]
pub struct Finding {
    pub target: FuzzTarget,
    pub failure: Failure,
    /// The minimized reproducer.
    pub input: Vec<u8>,
    /// Iteration at which the unminimized input was found (0 = seed replay).
    pub iteration: u64,
}

/// Campaign statistics.
#[derive(Debug, Default)]
pub struct CampaignStats {
    pub iterations: u64,
    pub novel_outcomes: u64,
    pub live_corpus: usize,
    pub elapsed: Duration,
    pub hit_time_budget: bool,
}

/// Upper bound on the live in-memory corpus.
const MAX_LIVE_CORPUS: usize = 256;
/// Predicate-call budget for minimizing one finding.
const MINIMIZE_BUDGET: usize = 4000;

/// Run one fuzzing campaign over `target`, starting from `seeds`.
pub fn fuzz_target(
    target: FuzzTarget,
    seeds: &[Vec<u8>],
    opts: &FuzzOptions,
) -> (CampaignStats, Vec<Finding>) {
    let started = Instant::now();
    let mut rng = XorShift::new(opts.seed ^ 0x5A5A ^ (target.name().len() as u64) << 32);
    let mut stats = CampaignStats::default();
    let mut findings = Vec::new();
    let mut seen = HashSet::new();
    let mut corpus: Vec<Vec<u8>> = Vec::new();

    // Replay the seeds first: they establish the novelty baseline, and a
    // failing seed is itself a finding (iteration 0).
    for seed_input in seeds {
        match run_target_guarded(target, seed_input) {
            Ok(features) => {
                if seen.insert(features) {
                    stats.novel_outcomes += 1;
                }
                corpus.push(seed_input.clone());
            }
            Err(failure) => {
                record_finding(target, seed_input, failure, 0, &mut findings);
            }
        }
    }
    if corpus.is_empty() {
        corpus.push(Vec::new());
    }

    for iteration in 1..=opts.iters {
        if let Some(budget) = opts.time_budget {
            if started.elapsed() >= budget {
                stats.hit_time_budget = true;
                break;
            }
        }
        if findings.len() >= opts.max_findings {
            break;
        }
        stats.iterations = iteration;

        let mut input = corpus[rng.below(corpus.len())].clone();
        let donor_idx = rng.below(corpus.len());
        // Clone the donor out so `input` can be mutated against it even
        // when both picks land on the same entry.
        let donor = corpus[donor_idx].clone();
        mutate(&mut input, &mut rng, &donor);

        match run_target_guarded(target, &input) {
            Ok(features) => {
                if seen.insert(features) {
                    stats.novel_outcomes += 1;
                    if corpus.len() >= MAX_LIVE_CORPUS {
                        let evict = rng.below(corpus.len());
                        corpus.swap_remove(evict);
                    }
                    corpus.push(input);
                }
            }
            Err(failure) => {
                record_finding(target, &input, failure, iteration, &mut findings);
            }
        }
    }

    stats.live_corpus = corpus.len();
    stats.elapsed = started.elapsed();
    (stats, findings)
}

/// Minimize a failing input (preserving the failure kind) and record it.
fn record_finding(
    target: FuzzTarget,
    input: &[u8],
    failure: Failure,
    iteration: u64,
    findings: &mut Vec<Finding>,
) {
    let kind = failure.kind.clone();
    let minimized = minimize(
        input,
        MINIMIZE_BUDGET,
        |cand| matches!(run_target_guarded(target, cand), Err(f) if f.kind == kind),
    );
    // Deduplicate by (kind, minimized bytes): mutation storms tend to
    // rediscover the same crash thousands of times.
    if findings
        .iter()
        .any(|f: &Finding| f.failure.kind == kind && f.input == minimized)
    {
        return;
    }
    findings.push(Finding {
        target,
        failure,
        input: minimized,
        iteration,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use szx_core::SzxConfig;

    fn seeds() -> Vec<Vec<u8>> {
        let data: Vec<f32> = (0..600).map(|i| (i as f32 * 0.03).sin()).collect();
        vec![
            szx_core::compress(&data, &SzxConfig::absolute(1e-3)).unwrap(),
            Vec::new(),
        ]
    }

    #[test]
    fn campaign_is_deterministic() {
        let opts = FuzzOptions {
            seed: 77,
            iters: 60,
            time_budget: None,
            max_findings: 4,
        };
        let s = seeds();
        let (a, fa) = fuzz_target(FuzzTarget::DecodeArbitrary, &s, &opts);
        let (b, fb) = fuzz_target(FuzzTarget::DecodeArbitrary, &s, &opts);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.novel_outcomes, b.novel_outcomes);
        assert_eq!(fa.len(), fb.len());
        for (x, y) in fa.iter().zip(&fb) {
            assert_eq!(x.input, y.input);
            assert_eq!(x.failure.kind, y.failure.kind);
        }
    }

    #[test]
    fn hardened_decoder_survives_a_short_campaign() {
        let opts = FuzzOptions {
            seed: 3,
            iters: 120,
            time_budget: Some(Duration::from_secs(60)),
            max_findings: 4,
        };
        let (stats, findings) = fuzz_target(FuzzTarget::DecodeArbitrary, &seeds(), &opts);
        assert!(stats.novel_outcomes > 1, "novelty feedback never fired");
        assert!(
            findings.is_empty(),
            "decoder regression found: {}",
            findings[0].failure
        );
    }
}
