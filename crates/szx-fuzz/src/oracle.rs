//! The differential decode oracle.
//!
//! Every fuzz input that looks like (or mutated away from) a compressed
//! stream is pushed through **all six decode paths** the workspace ships:
//!
//! 1. serial scalar (`decompress_with(…, Scalar)`) — the reference,
//! 2. serial branch-free kernel (`decompress_with(…, Kernel)`),
//! 3. serial explicit SIMD (`decompress_with(…, Simd)` — resolves to the
//!    portable kernel when the CPU lacks the ISA, so the path is always
//!    exercised and always held to the contract),
//! 4. parallel (`parallel::decompress_with`, scalar and kernel),
//! 5. random access (`RandomAccess::decode_range` over the whole stream,
//!    scalar and kernel),
//! 6. streaming (`FrameReader::frame` on the input wrapped as a
//!    single-frame container, scalar and kernel).
//!
//! The contract checked on *every* input, hostile or well-formed:
//!
//! * no path may panic — errors only (`catch_unwind` turns any panic into
//!   a [`Failure`] naming the path);
//! * all paths agree on decodability;
//! * paths that decode must reconstruct **bit-identical** outputs;
//! * the scalar and kernel serial decoders, and the streaming reader
//!   against its serial twin, must return **identical error strings**
//!   (they share one code path by design — a drifting message means the
//!   paths stopped sharing validation logic).

use std::panic::{catch_unwind, AssertUnwindSafe};

use szx_core::{KernelSelect, RandomAccess, SzxFloat};

use crate::corpus::fnv1a64;

/// A confirmed fuzzing failure: a panic, a differential divergence, or a
/// broken compression contract. `kind` is stable across equivalent inputs
/// (minimization shrinks while preserving it); `detail` carries context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    pub kind: String,
    pub detail: String,
}

impl Failure {
    pub fn new(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        Failure {
            kind: kind.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// Outcome of one decode path: reconstructed bit words, or an error string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    Bits(Vec<u64>),
    Error(String),
}

impl Outcome {
    fn is_ok(&self) -> bool {
        matches!(self, Outcome::Bits(_))
    }

    /// Compact novelty signature of this outcome.
    fn feature(&self) -> u64 {
        match self {
            Outcome::Bits(words) => {
                let mut h = fnv1a64(&(words.len() as u64).to_le_bytes());
                for w in words.iter().take(64).chain(words.last()) {
                    h ^= fnv1a64(&w.to_le_bytes());
                }
                h
            }
            Outcome::Error(msg) => fnv1a64(msg.as_bytes()) | 1,
        }
    }
}

/// Render a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one decode path, converting a panic into a [`Failure`] that names
/// the path — the single most important assertion in the harness.
fn run_path<F: SzxFloat>(
    path: &'static str,
    f: impl FnOnce() -> szx_core::Result<Vec<F>>,
) -> Result<Outcome, Failure> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(values)) => Ok(Outcome::Bits(values.iter().map(|v| v.to_word()).collect())),
        Ok(Err(e)) => Ok(Outcome::Error(e.to_string())),
        Err(payload) => Err(Failure::new(
            format!("panic:{path}"),
            panic_message(payload),
        )),
    }
}

/// Wrap raw stream bytes as a single-frame streaming container, so the
/// `FrameReader` path can be held to the same oracle as the in-memory
/// decoders on arbitrary archive bytes.
pub fn wrap_as_frame(bytes: &[u8]) -> Vec<u8> {
    let mut container = Vec::with_capacity(bytes.len() + 12);
    container.extend_from_slice(b"SZXS");
    container.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    container.extend_from_slice(bytes);
    container
}

/// Report of a full differential run for one element type.
#[derive(Debug)]
pub struct DecodeReport {
    /// Novelty signature folded over every path outcome.
    pub features: u64,
    /// Whether the reference path decoded the input.
    pub decoded_ok: bool,
    /// Reference (serial scalar) outcome, for callers that chain checks.
    pub reference: Outcome,
}

/// Run all six decode paths for element type `F` and check the
/// differential contract. `Err` means a *harness finding* (panic or
/// divergence) — an input that merely fails to decode everywhere is `Ok`.
pub fn differential_decode_typed<F: SzxFloat>(bytes: &[u8]) -> Result<DecodeReport, Failure> {
    let reference = run_path("serial-scalar", || {
        szx_core::decompress_with::<F>(bytes, KernelSelect::Scalar)
    })?;

    let mut features = reference.feature();
    let mut check =
        |path: &'static str, outcome: Outcome, same_message: bool| -> Result<(), Failure> {
            features = features.rotate_left(7).wrapping_add(outcome.feature());
            if outcome.is_ok() != reference.is_ok() {
                return Err(Failure::new(
                    format!("divergence:decodability:{path}"),
                    format!(
                        "serial-scalar {} but {path} {}",
                        if reference.is_ok() {
                            "decodes"
                        } else {
                            "errors"
                        },
                        if outcome.is_ok() { "decodes" } else { "errors" },
                    ),
                ));
            }
            match (&reference, &outcome) {
                (Outcome::Bits(a), Outcome::Bits(b)) if a != b => {
                    let at = a
                        .iter()
                        .zip(b)
                        .position(|(x, y)| x != y)
                        .map(|i| i.to_string())
                        .unwrap_or_else(|| format!("len {} vs {}", a.len(), b.len()));
                    return Err(Failure::new(
                        format!("divergence:bits:{path}"),
                        format!("first differing element: {at}"),
                    ));
                }
                (Outcome::Error(a), Outcome::Error(b)) if same_message && a != b => {
                    return Err(Failure::new(
                        format!("divergence:errmsg:{path}"),
                        format!("serial-scalar: {a:?} vs {path}: {b:?}"),
                    ));
                }
                _ => {}
            }
            Ok(())
        };

    let kernel = run_path("serial-kernel", || {
        szx_core::decompress_with::<F>(bytes, KernelSelect::Kernel)
    })?;
    check("serial-kernel", kernel, true)?;

    // The SIMD decoder shares the serial index + validation layer, so its
    // errors must match the reference verbatim, like the kernel's.
    let simd = run_path("serial-simd", || {
        szx_core::decompress_with::<F>(bytes, KernelSelect::Simd)
    })?;
    check("serial-simd", simd, true)?;

    for (path, sel) in [
        ("parallel-scalar", KernelSelect::Scalar),
        ("parallel-kernel", KernelSelect::Kernel),
    ] {
        // Parallel decode may surface the error of whichever chunk failed,
        // so only decodability and bits are compared, not messages.
        let out = run_path(path, || {
            szx_core::parallel::decompress_with::<F>(bytes, sel)
        })?;
        check(path, out, false)?;
    }

    for (path, sel) in [
        ("random-access-scalar", KernelSelect::Scalar),
        ("random-access-kernel", KernelSelect::Kernel),
    ] {
        let out = run_path(path, || {
            let ra = RandomAccess::<F>::new(bytes)?.with_kernel(sel);
            ra.decode_range(0, ra.len())
        })?;
        check(path, out, false)?;
    }

    let container = wrap_as_frame(bytes);
    for (path, sel) in [
        ("streaming-scalar", KernelSelect::Scalar),
        ("streaming-kernel", KernelSelect::Kernel),
    ] {
        let out = run_path(path, || {
            let reader = szx_core::FrameReader::new(&container)?.with_kernel(sel);
            reader.frame::<F>(0)
        })?;
        // The streaming reader routes through the same index + block
        // dispatch as the serial decoder; its errors must match verbatim.
        check(path, out, true)?;
    }

    Ok(DecodeReport {
        features,
        decoded_ok: reference.is_ok(),
        reference,
    })
}

/// Run the differential oracle for **both** element types (a stream's
/// dtype byte is itself attacker-controlled, so each input is tortured as
/// f32 and as f64) plus the panic-freedom check on `inspect`.
pub fn differential_decode(bytes: &[u8]) -> Result<u64, Failure> {
    let inspected = catch_unwind(AssertUnwindSafe(|| {
        szx_core::inspect(bytes).map(|h| (h.dtype, h.n, h.n_nonconstant))
    }));
    let features = match inspected {
        Ok(Ok(tuple)) => fnv1a64(format!("{tuple:?}").as_bytes()),
        Ok(Err(e)) => fnv1a64(e.to_string().as_bytes()),
        Err(payload) => {
            return Err(Failure::new("panic:inspect", panic_message(payload)));
        }
    };
    let r32 = differential_decode_typed::<f32>(bytes)?;
    let r64 = differential_decode_typed::<f64>(bytes)?;
    Ok(features
        .rotate_left(17)
        .wrapping_add(r32.features)
        .rotate_left(17)
        .wrapping_add(r64.features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use szx_core::SzxConfig;

    fn archive() -> Vec<u8> {
        let data: Vec<f32> = (0..700).map(|i| (i as f32 * 0.02).sin() * 4.0).collect();
        szx_core::compress(&data, &SzxConfig::absolute(1e-4)).unwrap()
    }

    #[test]
    fn valid_archive_decodes_on_every_path() {
        let bytes = archive();
        let report = differential_decode_typed::<f32>(&bytes).unwrap();
        assert!(report.decoded_ok);
        assert!(differential_decode(&bytes).is_ok());
    }

    #[test]
    fn garbage_errors_agree_on_every_path() {
        let report = differential_decode_typed::<f32>(b"not a stream at all").unwrap();
        assert!(!report.decoded_ok);
        assert!(differential_decode(&[]).is_ok());
    }

    #[test]
    fn truncations_stay_in_contract() {
        let bytes = archive();
        for cut in (0..bytes.len()).step_by(37) {
            differential_decode(&bytes[..cut]).unwrap();
        }
    }
}
