//! The three fuzz targets. Each takes arbitrary bytes (so the same
//! functions back the in-tree engine, the corpus replay suite, and the
//! optional cargo-fuzz wrappers under `fuzz/`) and returns either a
//! novelty signature or a [`Failure`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use szx_core::{KernelSelect, SzxFloat};

use crate::corpus::fnv1a64;
use crate::gen::{Spec, SpecType};
use crate::oracle::{differential_decode, differential_decode_typed, Failure, Outcome};

/// The fuzz targets the harness ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// Mutated/truncated/bit-flipped archive bytes → every decode entry
    /// point; error-not-panic + six-path differential agreement.
    DecodeArbitrary,
    /// Bytes decoded as a [`Spec`] (config + synthetic field) → compress on
    /// every encode path, assert bitwise stream identity, the header error
    /// bound, and full decode-path agreement.
    RoundtripConfig,
    /// Bytes treated as a framed streaming container: header/TOC/frame
    /// index torture for `FrameReader`, plus per-frame differential decode.
    StreamTorture,
}

impl FuzzTarget {
    pub const ALL: [FuzzTarget; 3] = [
        FuzzTarget::DecodeArbitrary,
        FuzzTarget::RoundtripConfig,
        FuzzTarget::StreamTorture,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FuzzTarget::DecodeArbitrary => "decode",
            FuzzTarget::RoundtripConfig => "round",
            FuzzTarget::StreamTorture => "stream",
        }
    }

    pub fn from_name(name: &str) -> Option<FuzzTarget> {
        match name {
            "decode" => Some(FuzzTarget::DecodeArbitrary),
            "round" | "roundtrip" => Some(FuzzTarget::RoundtripConfig),
            "stream" => Some(FuzzTarget::StreamTorture),
            _ => None,
        }
    }

    /// Route a corpus file to its replay target by name prefix.
    pub fn for_corpus_file(file_name: &str) -> Option<FuzzTarget> {
        if file_name.starts_with("decode_") {
            Some(FuzzTarget::DecodeArbitrary)
        } else if file_name.starts_with("round_") {
            Some(FuzzTarget::RoundtripConfig)
        } else if file_name.starts_with("stream_") {
            Some(FuzzTarget::StreamTorture)
        } else {
            None
        }
    }
}

/// Run one target on one input. `Ok` carries the novelty signature used by
/// the engine's corpus scheduling; `Err` is a finding.
pub fn run_target(target: FuzzTarget, input: &[u8]) -> Result<u64, Failure> {
    match target {
        FuzzTarget::DecodeArbitrary => differential_decode(input),
        FuzzTarget::RoundtripConfig => roundtrip_config(input),
        FuzzTarget::StreamTorture => stream_torture(input),
    }
}

/// Like [`run_target`], but also catches panics that escape the target
/// itself (e.g. from an encode path, which the decode oracle's per-path
/// guards do not cover). This is the entry the engine and replay use.
pub fn run_target_guarded(target: FuzzTarget, input: &[u8]) -> Result<u64, Failure> {
    match catch_unwind(AssertUnwindSafe(|| run_target(target, input))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(Failure::new(format!("panic:{}", target.name()), msg))
        }
    }
}

/// Target 2: roundtrip with arbitrary config.
fn roundtrip_config(input: &[u8]) -> Result<u64, Failure> {
    let spec = Spec::from_bytes(input);
    match spec.dtype {
        SpecType::F32 => roundtrip_typed::<f32>(&spec),
        SpecType::F64 => roundtrip_typed::<f64>(&spec),
    }
}

fn roundtrip_typed<F: SzxFloat>(spec: &Spec) -> Result<u64, Failure> {
    let data: Vec<F> = spec.generate();
    let cfg = spec.config();

    // Encode-path identity: scalar, kernel, simd, and parallel compressors
    // must emit byte-identical archives — or reject the input with
    // identical errors. (Rejection is legitimate: e.g. a relative bound
    // over data containing ±inf resolves to an unusable infinite absolute
    // bound.)
    let scalar = szx_core::compress(&data, &cfg);
    let kernel = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Kernel));
    let simd = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Simd));
    let par = szx_core::parallel::compress(&data, &cfg.with_kernel(KernelSelect::Kernel));
    let archive = match scalar {
        Err(e) => {
            let expected = e.to_string();
            for (path, r) in [("kernel", &kernel), ("simd", &simd), ("parallel", &par)] {
                match r {
                    Err(other) if other.to_string() == expected => {}
                    Err(other) => {
                        return Err(Failure::new(
                            "roundtrip:reject-divergence",
                            format!("scalar: {expected:?} vs {path}: {other:?} ({spec:?})"),
                        ));
                    }
                    Ok(_) => {
                        return Err(Failure::new(
                            "roundtrip:reject-divergence",
                            format!(
                                "scalar rejects ({expected:?}) but {path} compresses ({spec:?})"
                            ),
                        ));
                    }
                }
            }
            // All encode paths agree the input is uncompressible as
            // configured; that agreement is the property.
            return Ok(fnv1a64(expected.as_bytes()));
        }
        Ok(bytes) => bytes,
    };
    match kernel {
        Ok(kernel) if archive == kernel => {}
        _ => {
            return Err(Failure::new(
                "roundtrip:stream-identity:kernel",
                format!("{spec:?}"),
            ));
        }
    }
    match simd {
        Ok(simd) if archive == simd => {}
        _ => {
            return Err(Failure::new(
                "roundtrip:stream-identity:simd",
                format!("{spec:?}"),
            ));
        }
    }
    match par {
        Ok(par) if archive == par => {}
        _ => {
            return Err(Failure::new(
                "roundtrip:stream-identity:parallel",
                format!("{spec:?}"),
            ));
        }
    }

    // A single-frame streaming writer must embed exactly the serial
    // archive (frames are independent SZx streams by contract).
    let mut writer = szx_core::FrameWriter::new(cfg)
        .map_err(|e| Failure::new("roundtrip:compress-error", format!("writer: {e}")))?;
    writer
        .push(&data)
        .map_err(|e| Failure::new("roundtrip:compress-error", format!("push: {e}")))?;
    let container = writer.into_bytes();
    let reader = szx_core::FrameReader::new(&container)
        .map_err(|e| Failure::new("roundtrip:stream-identity:frame", e.to_string()))?;
    if reader.frame_bytes(0) != Some(archive.as_slice()) {
        return Err(Failure::new(
            "roundtrip:stream-identity:frame",
            format!("{spec:?}"),
        ));
    }

    // Header sanity: the stream must carry a finite, non-negative absolute
    // bound regardless of how the relative bound resolved.
    let header =
        szx_core::inspect(&archive).map_err(|e| Failure::new("roundtrip:header", e.to_string()))?;
    if !header.eb.is_finite() || header.eb < 0.0 {
        return Err(Failure::new(
            "roundtrip:header",
            format!("recorded bound {} for {spec:?}", header.eb),
        ));
    }

    // Full six-path differential decode on the fresh archive; it must
    // decode everywhere.
    let report = differential_decode_typed::<F>(&archive)?;
    let words = match report.reference {
        Outcome::Bits(words) => words,
        Outcome::Error(e) => {
            return Err(Failure::new(
                "roundtrip:decode-error",
                format!("{spec:?}: {e}"),
            ));
        }
    };
    if words.len() != data.len() {
        return Err(Failure::new(
            "roundtrip:length",
            format!("{} in, {} out ({spec:?})", data.len(), words.len()),
        ));
    }

    // The error-bound contract, element by element: finite values within
    // the header's absolute bound, non-finite values bit-exact.
    for (i, (x, w)) in data.iter().zip(&words).enumerate() {
        let y = F::from_word(*w);
        if x.is_nan() || x.to_f64().is_infinite() {
            if x.to_word() != *w {
                return Err(Failure::new(
                    "roundtrip:special-not-bitexact",
                    format!("element {i} ({spec:?})"),
                ));
            }
        } else {
            // NaN-propagating on purpose: a NaN/inf reconstruction of a
            // finite input yields a non-finite error, which must count as
            // a bound violation rather than slip past a `>` comparison.
            let err = (x.to_f64() - y.to_f64()).abs();
            if !err.is_finite() || err > header.eb {
                return Err(Failure::new(
                    "roundtrip:bound-exceeded",
                    format!(
                        "element {i}: |{} - {}| > {} ({spec:?})",
                        x.to_f64(),
                        y.to_f64(),
                        header.eb
                    ),
                ));
            }
        }
    }

    // Buffer-reuse decode paths: a right-sized buffer must reproduce the
    // reference bits, a wrong-sized one must error (never write OOB).
    for sel in [
        KernelSelect::Scalar,
        KernelSelect::Kernel,
        KernelSelect::Simd,
    ] {
        let mut out = vec![F::ZERO; data.len()];
        szx_core::decompress_into_with(&archive, &mut out, sel)
            .map_err(|e| Failure::new("roundtrip:decode-error", format!("into: {e}")))?;
        if out.iter().zip(&words).any(|(v, w)| v.to_word() != *w) {
            return Err(Failure::new(
                "divergence:bits:decompress-into",
                format!("{spec:?}"),
            ));
        }
        let mut short = vec![F::ZERO; data.len().saturating_sub(1)];
        if szx_core::decompress_into_with(&archive, &mut short, sel).is_ok() {
            return Err(Failure::new(
                "roundtrip:short-buffer-accepted",
                format!("{spec:?}"),
            ));
        }
    }

    let mut h = fnv1a64(&archive);
    h ^= report.features;
    Ok(h)
}

/// Cap on frames examined per container input (mutations can forge huge
/// frame counts out of tiny containers).
const MAX_FRAMES: usize = 64;
/// Cap on frames pushed through the full six-path oracle.
const MAX_DEEP_FRAMES: usize = 8;

/// Target 3: header/TOC/frame-index torture for the streaming reader.
fn stream_torture(input: &[u8]) -> Result<u64, Failure> {
    // The raw stream header parser must never panic on these bytes either.
    let mut features = match catch_unwind(AssertUnwindSafe(|| szx_core::inspect(input))) {
        Ok(Ok(h)) => fnv1a64(format!("{h:?}").as_bytes()),
        Ok(Err(e)) => fnv1a64(e.to_string().as_bytes()),
        Err(_) => return Err(Failure::new("panic:inspect", "inspect(container bytes)")),
    };

    let parse = catch_unwind(AssertUnwindSafe(|| szx_core::FrameReader::new(input)));
    let reader = match parse {
        Ok(Ok(reader)) => reader,
        Ok(Err(e)) => {
            return Ok(features
                .rotate_left(9)
                .wrapping_add(fnv1a64(e.to_string().as_bytes())));
        }
        Err(_) => return Err(Failure::new("panic:frame-index", "FrameReader::new")),
    };

    let scalar = match catch_unwind(AssertUnwindSafe(|| szx_core::FrameReader::new(input))) {
        Ok(Ok(r)) => r.with_kernel(KernelSelect::Scalar),
        _ => return Err(Failure::new("panic:frame-index", "FrameReader::new (2nd)")),
    };
    let kernel = reader.with_kernel(KernelSelect::Kernel);

    let n = scalar.num_frames().min(MAX_FRAMES);
    features = features.rotate_left(3).wrapping_add(n as u64);
    for i in 0..n {
        // Scalar/kernel frame decode parity, both element types.
        features ^= frame_parity::<f32>(&scalar, &kernel, i)?;
        features ^= frame_parity::<f64>(&scalar, &kernel, i)?;
        // The first few frames additionally run the complete six-path
        // differential oracle over their raw stream bytes.
        if i < MAX_DEEP_FRAMES {
            if let Some(frame) = scalar.frame_bytes(i) {
                features = features
                    .rotate_left(5)
                    .wrapping_add(differential_decode(frame)?);
            }
        }
    }
    Ok(features)
}

/// Decode frame `i` with the scalar and kernel readers; enforce identical
/// decodability, bits, and error messages (shared code path by design).
fn frame_parity<F: SzxFloat>(
    scalar: &szx_core::FrameReader<'_>,
    kernel: &szx_core::FrameReader<'_>,
    i: usize,
) -> Result<u64, Failure> {
    let run = |reader: &szx_core::FrameReader<'_>, path: &'static str| match catch_unwind(
        AssertUnwindSafe(|| reader.frame::<F>(i)),
    ) {
        Ok(Ok(v)) => Ok(Outcome::Bits(v.iter().map(|x| x.to_word()).collect())),
        Ok(Err(e)) => Ok(Outcome::Error(e.to_string())),
        Err(_) => Err(Failure::new(
            format!("panic:frame-{path}"),
            format!("frame {i}"),
        )),
    };
    let s = run(scalar, "scalar")?;
    let k = run(kernel, "kernel")?;
    if s != k {
        return Err(Failure::new(
            "divergence:frame:kernel",
            format!("frame {i} ({})", std::any::type_name::<F>()),
        ));
    }
    Ok(match s {
        Outcome::Bits(w) => fnv1a64(&(w.len() as u64).to_le_bytes()),
        Outcome::Error(e) => fnv1a64(e.as_bytes()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use szx_core::SzxConfig;

    #[test]
    fn decode_target_accepts_valid_and_garbage() {
        let data: Vec<f32> = (0..500).map(|i| i as f32 * 0.5).collect();
        let bytes = szx_core::compress(&data, &SzxConfig::relative(1e-3)).unwrap();
        run_target_guarded(FuzzTarget::DecodeArbitrary, &bytes).unwrap();
        run_target_guarded(FuzzTarget::DecodeArbitrary, b"garbage").unwrap();
        run_target_guarded(FuzzTarget::DecodeArbitrary, &[]).unwrap();
    }

    #[test]
    fn roundtrip_target_is_total_over_spec_bytes() {
        // A spread of spec bytes, including degenerate ones.
        run_target_guarded(FuzzTarget::RoundtripConfig, &[]).unwrap();
        run_target_guarded(FuzzTarget::RoundtripConfig, &[0xff; 18]).unwrap();
        let spec = Spec::from_bytes(&[1, 1, 16, 0, 3, 200, 1, 0, 4, 0x1f]);
        run_target_guarded(FuzzTarget::RoundtripConfig, &spec.to_bytes()).unwrap();
    }

    #[test]
    fn stream_target_handles_containers_and_noise() {
        let mut w = szx_core::FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
        w.push(&(0..300).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        w.push(&(0..130).map(|i| (i as f32).sqrt()).collect::<Vec<_>>())
            .unwrap();
        let container = w.into_bytes();
        run_target_guarded(FuzzTarget::StreamTorture, &container).unwrap();
        run_target_guarded(FuzzTarget::StreamTorture, b"SZXS\x01\x02").unwrap();
        run_target_guarded(FuzzTarget::StreamTorture, &[]).unwrap();
    }

    #[test]
    fn corpus_prefix_routing() {
        assert_eq!(
            FuzzTarget::for_corpus_file("decode_cesm.szx"),
            Some(FuzzTarget::DecodeArbitrary)
        );
        assert_eq!(
            FuzzTarget::for_corpus_file("stream_nyx.szxs"),
            Some(FuzzTarget::StreamTorture)
        );
        assert_eq!(
            FuzzTarget::for_corpus_file("round_3.spec"),
            Some(FuzzTarget::RoundtripConfig)
        );
        assert_eq!(FuzzTarget::for_corpus_file("README.md"), None);
    }
}
