//! Seeded, dependency-free pseudo-random numbers for the fuzzing engine.
//!
//! xorshift64* (Vigna 2016): one 64-bit word of state, full 2^64−1 period,
//! and good enough avalanche behaviour for mutation scheduling. The engine
//! needs *determinism* above statistical quality — the same seed must
//! reproduce the same campaign byte for byte, on every platform — so the
//! generator is written out here instead of pulling in `rand`.

/// A 64-bit xorshift* generator.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seed the generator. A zero seed would lock xorshift at zero, so it
    /// is mapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 pseudo-random bits (top half of the 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `0..n`. Returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            // Multiply-shift range reduction; the modulo bias of `% n` is
            // irrelevant for fuzzing but this is just as cheap.
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }

    /// True once in `n` draws on average.
    pub fn one_in(&mut self, n: usize) -> bool {
        self.below(n.max(1)) == 0
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            let k = chunk.len();
            chunk.copy_from_slice(&w[..k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nondegenerate() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = XorShift::new(7);
        for n in [1usize, 2, 3, 17, 4096] {
            for _ in 0..64 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}
