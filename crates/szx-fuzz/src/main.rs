//! `szx-fuzz` — deterministic fuzzing / differential torture CLI.
//!
//! Fully offline and reproducible: campaigns are pure functions of the
//! `--seed` value and the corpus directory contents.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use szx_fuzz::corpus;
use szx_fuzz::engine::{fuzz_target, Finding, FuzzOptions};
use szx_fuzz::targets::{run_target_guarded, FuzzTarget};

const USAGE: &str = "\
szx-fuzz — deterministic fuzzing + differential torture harness for szx-rs

USAGE:
  szx-fuzz seed     <corpus-dir>
      Regenerate the seed corpus (six dataset generators x configs,
      framed streams, roundtrip specs, hostile headers) + MANIFEST.txt.
  szx-fuzz run      <decode|round|stream|all> [--corpus <dir>] [--seed <n>]
                    [--iters <n>] [--time-secs <s>] [--max-findings <k>]
                    [--save-dir <dir>]
      Fuzz one target (or all three). Findings are minimized; with
      --save-dir they are written as corpus files ready to commit.
  szx-fuzz smoke    [--corpus <dir>] [--seed <n>] [--iters <n>]
                    [--time-secs <s>]
      Bounded differential smoke: replay the corpus, then a short
      campaign per target. Exit 1 on any finding. CI entry point.
  szx-fuzz replay   <corpus-dir>
      Replay every corpus file through its target; exit 1 on failures.
  szx-fuzz manifest <corpus-dir>
      Rewrite MANIFEST.txt from the directory contents.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("seed") => cmd_seed(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("manifest") => cmd_manifest(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(clean) if clean => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects an integer, got {v:?}")),
    }
}

fn corpus_dir(args: &[String]) -> PathBuf {
    PathBuf::from(flag_value(args, "--corpus").unwrap_or("tests/corpus"))
}

/// Silence the default panic printer: every caught panic would otherwise
/// spray a backtrace line mid-campaign (minimization alone replays a
/// failing input thousands of times).
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn hex_preview(bytes: &[u8]) -> String {
    let shown: String = bytes
        .iter()
        .take(48)
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ");
    if bytes.len() > 48 {
        format!("{shown} … ({} bytes)", bytes.len())
    } else {
        format!("{shown} ({} bytes)", bytes.len())
    }
}

fn report_findings(findings: &[Finding], save_dir: Option<&Path>) -> Result<(), String> {
    for f in findings {
        eprintln!(
            "FINDING [{}] at iteration {}: {}\n  input: {}",
            f.target.name(),
            f.iteration,
            f.failure,
            hex_preview(&f.input)
        );
        if let Some(dir) = save_dir {
            let name = corpus::finding_name(f.target.name(), &f.input);
            let path = dir.join(&name);
            std::fs::write(&path, &f.input).map_err(|e| format!("write {name}: {e}"))?;
            eprintln!("  saved: {}", path.display());
        }
    }
    if let Some(dir) = save_dir {
        if !findings.is_empty() {
            corpus::write_manifest(dir).map_err(|e| format!("manifest: {e}"))?;
        }
    }
    Ok(())
}

/// Load the corpus and bucket entries per target by file-name prefix.
fn seeds_for(dir: &Path, target: FuzzTarget) -> Result<Vec<Vec<u8>>, String> {
    let entries = corpus::load_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    Ok(entries
        .into_iter()
        .filter(|(name, _)| FuzzTarget::for_corpus_file(name) == Some(target))
        .map(|(_, bytes)| bytes)
        .collect())
}

fn campaign(
    target: FuzzTarget,
    dir: &Path,
    opts: &FuzzOptions,
    save_dir: Option<&Path>,
) -> Result<bool, String> {
    let seeds = seeds_for(dir, target)?;
    let (stats, findings) = fuzz_target(target, &seeds, opts);
    println!(
        "[{}] {} iterations, {} novel outcomes, live corpus {}, {:.2}s{}{}",
        target.name(),
        stats.iterations,
        stats.novel_outcomes,
        stats.live_corpus,
        stats.elapsed.as_secs_f64(),
        if stats.hit_time_budget {
            " (time budget hit)"
        } else {
            ""
        },
        if findings.is_empty() {
            ", clean".to_string()
        } else {
            format!(", {} FINDINGS", findings.len())
        },
    );
    report_findings(&findings, save_dir)?;
    Ok(findings.is_empty())
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let which = args.first().ok_or("run: missing target name")?;
    let targets: Vec<FuzzTarget> = if which == "all" {
        FuzzTarget::ALL.to_vec()
    } else {
        vec![FuzzTarget::from_name(which)
            .ok_or_else(|| format!("unknown target {which:?} (decode|round|stream|all)"))?]
    };
    let dir = corpus_dir(args);
    let save_dir = flag_value(args, "--save-dir").map(PathBuf::from);
    let opts = FuzzOptions {
        seed: parse_u64(args, "--seed", 1)?,
        iters: parse_u64(args, "--iters", 20_000)?,
        time_budget: match flag_value(args, "--time-secs") {
            Some(v) => Some(Duration::from_secs(
                v.parse().map_err(|_| "--time-secs expects seconds")?,
            )),
            None => None,
        },
        max_findings: parse_u64(args, "--max-findings", 8)? as usize,
    };
    quiet_panics();
    let mut clean = true;
    for target in targets {
        clean &= campaign(target, &dir, &opts, save_dir.as_deref())?;
    }
    Ok(clean)
}

fn cmd_smoke(args: &[String]) -> Result<bool, String> {
    let dir = corpus_dir(args);
    let iters = parse_u64(args, "--iters", 400)?;
    let time_secs = parse_u64(args, "--time-secs", 45)?;
    let opts = FuzzOptions {
        seed: parse_u64(args, "--seed", 0x00C0_FFEE)?,
        iters,
        time_budget: Some(Duration::from_secs(time_secs)),
        max_findings: 4,
    };
    quiet_panics();
    // The corpus replay is part of the smoke: committed regression inputs
    // must stay clean before mutation even starts.
    let mut clean = replay_dir(&dir)?;
    for target in FuzzTarget::ALL {
        clean &= campaign(target, &dir, &opts, None)?;
    }
    println!(
        "smoke: {} (seed {}, {} iters/target, {}s cap)",
        if clean { "clean" } else { "FINDINGS" },
        opts.seed,
        iters,
        time_secs
    );
    Ok(clean)
}

fn replay_dir(dir: &Path) -> Result<bool, String> {
    let entries = corpus::load_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if entries.is_empty() {
        return Err(format!("{}: empty corpus", dir.display()));
    }
    let mut clean = true;
    let mut replayed = 0usize;
    for (name, bytes) in &entries {
        let Some(target) = FuzzTarget::for_corpus_file(name) else {
            eprintln!("REPLAY {name}: no target claims this prefix");
            clean = false;
            continue;
        };
        replayed += 1;
        if let Err(failure) = run_target_guarded(target, bytes) {
            eprintln!("REPLAY {name}: {failure}");
            clean = false;
        }
    }
    println!(
        "replay: {replayed}/{} corpus entries, {}",
        entries.len(),
        if clean { "clean" } else { "FAILURES" }
    );
    Ok(clean)
}

fn cmd_replay(args: &[String]) -> Result<bool, String> {
    // Positional dir or `--corpus <dir>` (matching run/smoke); defaults to
    // tests/corpus.
    let dir = match args.first().filter(|a| !a.starts_with("--")) {
        Some(d) => PathBuf::from(d),
        None => corpus_dir(args),
    };
    quiet_panics();
    replay_dir(&dir)
}

fn cmd_manifest(args: &[String]) -> Result<bool, String> {
    let dir = args.first().ok_or("manifest: missing corpus dir")?;
    let n = corpus::write_manifest(Path::new(dir)).map_err(|e| e.to_string())?;
    println!("manifest: {n} entries");
    Ok(true)
}

// ---------------------------------------------------------------------------
// Seed-corpus generation
// ---------------------------------------------------------------------------

fn cmd_seed(args: &[String]) -> Result<bool, String> {
    let dir = PathBuf::from(args.first().ok_or("seed: missing corpus dir")?);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let mut written = 0usize;
    let mut write = |name: &str, bytes: &[u8]| -> Result<(), String> {
        std::fs::write(dir.join(name), bytes).map_err(|e| format!("{name}: {e}"))?;
        written += 1;
        Ok(())
    };

    use szx_core::{CommitStrategy, ErrorBound, KernelSelect, SzxConfig};
    use szx_fuzz::gen::{Spec, SpecType};

    let strategies = [
        CommitStrategy::ByteAligned,
        CommitStrategy::BitPack,
        CommitStrategy::BytePlusResidual,
    ];
    let block_sizes = [64usize, 17, 128, 1, 4096, 200];

    // One archive + one framed stream per Table-2 application, rotating
    // block sizes, strategies, and bound modes so the seed corpus starts
    // on every major format path.
    for (k, app) in szx_data::Application::ALL.iter().enumerate() {
        let short = app.short_name().to_lowercase();
        let values = app.fuzz_seed_values(1024);
        let bound = if k % 2 == 0 {
            ErrorBound::Absolute(1e-3)
        } else {
            ErrorBound::Relative(1e-4)
        };
        let cfg = SzxConfig {
            block_size: block_sizes[k % block_sizes.len()],
            error_bound: bound,
            strategy: strategies[k % strategies.len()],
            kernel: KernelSelect::Auto,
        };
        let archive = szx_core::compress(&values, &cfg).map_err(|e| e.to_string())?;
        write(&format!("decode_{short}.szx"), &archive)?;

        let mut w = szx_core::FrameWriter::new(SzxConfig {
            block_size: 128,
            error_bound: ErrorBound::Absolute(1e-3),
            strategy: CommitStrategy::ByteAligned,
            kernel: KernelSelect::Auto,
        })
        .map_err(|e| e.to_string())?;
        for chunk in values.chunks(300) {
            w.push(chunk).map_err(|e| e.to_string())?;
        }
        write(&format!("stream_{short}.szxs"), &w.into_bytes())?;
    }

    // f64 archives for two applications (the dtype byte must start on both
    // settings so mutation can cross-pollute).
    for app in [szx_data::Application::CesmAtm, szx_data::Application::Nyx] {
        let short = app.short_name().to_lowercase();
        let values: Vec<f64> = app
            .fuzz_seed_values(768)
            .into_iter()
            .map(f64::from)
            .collect();
        let archive =
            szx_core::compress(&values, &SzxConfig::absolute(1e-5)).map_err(|e| e.to_string())?;
        write(&format!("decode_{short}_f64.szx"), &archive)?;
    }

    // Roundtrip specs: hand-picked corners of the config space.
    let specs = [
        Spec {
            dtype: SpecType::F32,
            strategy: CommitStrategy::ByteAligned,
            block_size: 128,
            bound: ErrorBound::Absolute(1e-3),
            n: 5000,
            shape: 0,
            inject: 0,
            seed: 11,
        },
        Spec {
            dtype: SpecType::F64,
            strategy: CommitStrategy::ByteAligned,
            block_size: 17,
            bound: ErrorBound::Relative(1e-4),
            n: 700,
            shape: 4,
            inject: 0,
            seed: 12,
        },
        Spec {
            dtype: SpecType::F32,
            strategy: CommitStrategy::BitPack,
            block_size: 1,
            bound: ErrorBound::Absolute(1e-6),
            n: 300,
            shape: 1,
            inject: 0,
            seed: 13,
        },
        Spec {
            dtype: SpecType::F64,
            strategy: CommitStrategy::BytePlusResidual,
            block_size: 4096,
            bound: ErrorBound::Relative(1e-2),
            n: 8000,
            shape: 5,
            inject: 0,
            seed: 14,
        },
        // Lossless arm (eb = 0).
        Spec {
            dtype: SpecType::F32,
            strategy: CommitStrategy::ByteAligned,
            block_size: 128,
            bound: ErrorBound::Absolute(0.0),
            n: 2000,
            shape: 1,
            inject: 0,
            seed: 15,
        },
        // Special-value storms: NaN/Inf/denormal/huge-range blocks.
        Spec {
            dtype: SpecType::F32,
            strategy: CommitStrategy::ByteAligned,
            block_size: 64,
            bound: ErrorBound::Absolute(1e-4),
            n: 3000,
            shape: 0,
            inject: 0x1f,
            seed: 16,
        },
        Spec {
            dtype: SpecType::F64,
            strategy: CommitStrategy::ByteAligned,
            block_size: 128,
            bound: ErrorBound::Relative(1e-5),
            n: 2500,
            shape: 2,
            inject: 0x0b,
            seed: 17,
        },
        // Constant field, tiny blocks.
        Spec {
            dtype: SpecType::F32,
            strategy: CommitStrategy::BitPack,
            block_size: 3,
            bound: ErrorBound::Absolute(1e-2),
            n: 900,
            shape: 6,
            inject: 0,
            seed: 18,
        },
    ];
    for (k, spec) in specs.iter().enumerate() {
        write(&format!("round_{k}.spec"), &spec.to_bytes())?;
    }

    // Hostile parser seeds: committed Err-path regression anchors.
    write("decode_zz_empty.bin", &[])?;
    write(
        "decode_zz_badmagic.bin",
        b"NOPE\x01\x00\x02\x00AAAABBBBCCCCDDDD",
    )?;
    {
        let values = szx_data::Application::Hurricane.fuzz_seed_values(512);
        let archive =
            szx_core::compress(&values, &SzxConfig::absolute(1e-3)).map_err(|e| e.to_string())?;
        write("decode_zz_trunc.bin", &archive[..20.min(archive.len())])?;
    }
    {
        // Container whose single frame claims more bytes than exist.
        let mut bad = b"SZXS".to_vec();
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        bad.extend_from_slice(&[0x11; 16]);
        write("stream_zz_badlen.bin", &bad)?;
    }

    let listed = corpus::write_manifest(&dir).map_err(|e| e.to_string())?;
    println!(
        "seeded {written} corpus entries into {} ({listed} in manifest)",
        dir.display()
    );
    Ok(true)
}
