//! Raw binary field I/O in the SDRBench convention: little-endian f32,
//! no header (dimensions are carried out of band).

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Write a field's values as raw little-endian f32.
pub fn write_f32_raw(path: &Path, data: &[f32]) -> io::Result<()> {
    let mut file = File::create(path)?;
    let mut buf = Vec::with_capacity(data.len() * 4);
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    file.write_all(&buf)
}

/// Read raw little-endian f32 values. Errors if the file length is not a
/// multiple of 4.
pub fn read_f32_raw(path: &Path) -> io::Result<Vec<f32>> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file length {} is not a multiple of 4", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Write a field's values as raw little-endian f64.
pub fn write_f64_raw(path: &Path, data: &[f64]) -> io::Result<()> {
    let mut file = File::create(path)?;
    let mut buf = Vec::with_capacity(data.len() * 8);
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    file.write_all(&buf)
}

/// Read raw little-endian f64 values. Errors if the file length is not a
/// multiple of 8.
pub fn read_f64_raw(path: &Path) -> io::Result<Vec<f64>> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file length {} is not a multiple of 8", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join("szx-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.f32");
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.1).sin()).collect();
        write_f32_raw(&path, &data).unwrap();
        let back = read_f32_raw(&path).unwrap();
        assert_eq!(data, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn f64_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join("szx-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.f64");
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.01).cos()).collect();
        write_f64_raw(&path, &data).unwrap();
        let back = read_f64_raw(&path).unwrap();
        assert_eq!(data, back);
        // A 500-element f64 file is not a multiple-of-8 problem, but it IS
        // misaligned for the f32 reader only when the length %4 != 0; a
        // 9-byte file fails both.
        std::fs::write(&path, [0u8; 9]).unwrap();
        assert!(read_f64_raw(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_file_is_an_error() {
        let dir = std::env::temp_dir().join("szx-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.f32");
        std::fs::write(&path, [0u8; 7]).unwrap();
        assert!(read_f32_raw(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
