//! Field and dataset containers shared by all application generators.

/// A single named scalar field on a regular grid (row-major, x fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name, matching the paper's naming where a figure references a
    /// specific field (e.g. `CLDHGH`, `pressure`, `baryon-density`).
    pub name: String,
    /// Grid dimensions `[nx, ny, nz]`; lower-dimensional fields use 1s.
    pub dims: [usize; 3],
    /// The values, `nx·ny·nz` of them, x fastest.
    pub data: Vec<f32>,
}

impl Field {
    pub fn new(name: impl Into<String>, dims: [usize; 3], data: Vec<f32>) -> Self {
        let field = Field {
            name: name.into(),
            dims,
            data,
        };
        assert_eq!(
            field.len(),
            field.data.len(),
            "dims/data mismatch for {}",
            field.name
        );
        field
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw size in bytes (single precision, as in all paper datasets).
    pub fn raw_bytes(&self) -> usize {
        self.len() * 4
    }

    /// Extract the 2-D slice at `z` (for 3-D fields) as `(width, height,
    /// values)`. For 2-D fields pass `z = 0`.
    pub fn slice_z(&self, z: usize) -> (usize, usize, Vec<f32>) {
        let [nx, ny, nz] = self.dims;
        assert!(z < nz, "slice {z} out of {nz}");
        let plane = nx * ny;
        (nx, ny, self.data[z * plane..(z + 1) * plane].to_vec())
    }

    /// Global value range (max − min), NaN-ignoring.
    pub fn value_range(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            let v = v as f64;
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        if hi > lo {
            hi - lo
        } else {
            0.0
        }
    }
}

/// A generated application dataset: a bag of fields.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Application short name (e.g. "Miranda").
    pub name: String,
    pub fields: Vec<Field>,
}

impl Dataset {
    /// Total raw bytes across fields.
    pub fn raw_bytes(&self) -> usize {
        self.fields.iter().map(Field::raw_bytes).sum()
    }

    /// Look a field up by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_accounting() {
        let f = Field::new("t", [4, 3, 2], vec![0.0; 24]);
        assert_eq!(f.len(), 24);
        assert_eq!(f.raw_bytes(), 96);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "dims/data mismatch")]
    fn dims_mismatch_panics() {
        Field::new("bad", [2, 2, 2], vec![0.0; 7]);
    }

    #[test]
    fn slice_extraction() {
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let f = Field::new("t", [4, 3, 2], data);
        let (w, h, s) = f.slice_z(1);
        assert_eq!((w, h), (4, 3));
        assert_eq!(s[0], 12.0);
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn value_range_ignores_nan() {
        let f = Field::new("t", [3, 1, 1], vec![1.0, f32::NAN, 4.0]);
        assert_eq!(f.value_range(), 3.0);
    }

    #[test]
    fn dataset_lookup() {
        let ds = Dataset {
            name: "X".into(),
            fields: vec![Field::new("a", [2, 1, 1], vec![0.0; 2])],
        };
        assert!(ds.field("a").is_some());
        assert!(ds.field("b").is_none());
        assert_eq!(ds.raw_bytes(), 8);
    }
}
