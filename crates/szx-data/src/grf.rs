//! Smooth random-field synthesis primitives.
//!
//! The application generators build their fields from three ingredients:
//!
//! 1. white noise (seeded, reproducible);
//! 2. separable iterated box blurs — three passes approximate a Gaussian
//!    filter, giving a tunable spatial correlation length in O(N) per pass;
//! 3. multi-octave sums of blurred noise, which produce the power-law-like
//!    spectra of turbulence and climate fields.
//!
//! These controls directly shape the statistic SZx cares about — the CDF of
//! per-block value ranges (paper Figure 2) — so each application profile can
//! be tuned to land in the paper's compressibility regime.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded white noise in `[-1, 1)`.
pub fn white_noise(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// One box-blur pass of radius `r` along `axis` of a `[nx, ny, nz]` grid
/// (x fastest). Edges are handled by clamping the window to the line; the
/// radius is capped at a third of the line so degenerate whole-line
/// averaging (and its edge artifacts) cannot dominate small grids.
pub fn box_blur_axis(data: &mut [f32], dims: [usize; 3], axis: usize, r: usize) {
    if r == 0 {
        return;
    }
    let [nx, ny, nz] = dims;
    assert_eq!(data.len(), nx * ny * nz);
    let (len, stride, lines) = match axis {
        0 => (nx, 1, ny * nz),
        1 => (ny, nx, nx * nz),
        2 => (nz, nx * ny, nx * ny),
        _ => panic!("axis {axis} out of range"),
    };
    if len <= 1 {
        return;
    }
    let r = r.min((len / 3).max(1));
    let mut line = vec![0.0f32; len];
    for l in 0..lines {
        // Base offset of line `l` for this axis.
        let base = match axis {
            0 => l * nx,
            1 => {
                let z = l / nx;
                let x = l % nx;
                z * nx * ny + x
            }
            _ => l,
        };
        for i in 0..len {
            line[i] = data[base + i * stride];
        }
        // Running-sum blur with clamped window.
        let mut sum: f64 = line[..(r + 1).min(len)].iter().map(|&v| v as f64).sum();
        let mut count = (r + 1).min(len);
        for i in 0..len {
            data[base + i * stride] = (sum / count as f64) as f32;
            // Slide window: add i+r+1, remove i-r.
            let add = i + r + 1;
            if add < len {
                sum += line[add] as f64;
                count += 1;
            }
            if i >= r {
                sum -= line[i - r] as f64;
                count -= 1;
            }
        }
    }
}

/// Three-pass separable box blur along every non-trivial axis — a good
/// Gaussian approximation with correlation length ~`r`.
pub fn smooth(data: &mut [f32], dims: [usize; 3], r: usize) {
    for _ in 0..3 {
        for axis in 0..3 {
            if dims[axis] > 1 {
                box_blur_axis(data, dims, axis, r);
            }
        }
    }
}

/// Rescale to zero mean, unit peak amplitude (max |v| = 1). No-op on
/// all-zero data.
pub fn normalize(data: &mut [f32]) {
    let n = data.len();
    if n == 0 {
        return;
    }
    let mean = data.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut peak = 0.0f64;
    for v in data.iter_mut() {
        *v = (*v as f64 - mean) as f32;
        let a = v.abs() as f64;
        if a > peak {
            peak = a;
        }
    }
    if peak > 0.0 {
        let inv = (1.0 / peak) as f32;
        for v in data.iter_mut() {
            *v *= inv;
        }
    }
}

/// Multi-octave smooth field: `Σ amplitude · normalize(blur(noise, radius))`.
/// Octaves are `(radius, amplitude)` pairs, typically geometric in both.
pub fn fractal_field(dims: [usize; 3], octaves: &[(usize, f32)], seed: u64) -> Vec<f32> {
    let n = dims[0] * dims[1] * dims[2];
    let mut out = vec![0.0f32; n];
    for (k, &(radius, amplitude)) in octaves.iter().enumerate() {
        let mut layer = white_noise(n, seed.wrapping_add(k as u64 * 0x9e37_79b9));
        smooth(&mut layer, dims, radius);
        normalize(&mut layer);
        for (o, l) in out.iter_mut().zip(&layer) {
            *o += amplitude * l;
        }
    }
    out
}

/// Sparse spike field: `density · n` random impulses of random magnitude in
/// `[0, 1]`, blurred by `radius`, then everything below `floor` clamped to
/// zero. Mimics physically-sparse fields (cloud water, snow mixing ratios)
/// whose large empty regions give SZx its extreme compression ratios.
pub fn spike_field(
    dims: [usize; 3],
    density: f64,
    radius: usize,
    floor: f32,
    seed: u64,
) -> Vec<f32> {
    let n = dims[0] * dims[1] * dims[2];
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = vec![0.0f32; n];
    let spikes = ((n as f64 * density) as usize).max(1);
    for _ in 0..spikes {
        let idx = rng.gen_range(0..n);
        out[idx] = rng.gen_range(0.0f32..1.0);
    }
    smooth(&mut out, dims, radius);
    // Blur dilutes peaks; renormalize to [0, ~1] before flooring.
    let peak = out.iter().fold(0.0f32, |a, &v| a.max(v));
    if peak > 0.0 {
        let inv = 1.0 / peak;
        for v in out.iter_mut() {
            *v = (*v * inv - floor).max(0.0);
        }
    }
    out
}

/// Intermittent fine structure: a blurred-noise octave whose local amplitude
/// is modulated by `m^power`, where `m ∈ [0, 1]` is an independent smooth
/// field. High powers concentrate the fine-scale energy in a small fraction
/// of the volume — the intermittency of real turbulence — which is what
/// spreads a dataset's constant/non-constant transition across several
/// decades of error bound instead of switching all at once.
pub fn intermittent_field(
    dims: [usize; 3],
    radius: usize,
    amplitude: f32,
    mod_radius: usize,
    power: i32,
    seed: u64,
) -> Vec<f32> {
    let n = dims[0] * dims[1] * dims[2];
    let mut carrier = white_noise(n, seed);
    smooth(&mut carrier, dims, radius);
    normalize(&mut carrier);
    let mut modulation = white_noise(n, seed.wrapping_add(0x5bd1_e995));
    smooth(&mut modulation, dims, mod_radius);
    normalize(&mut modulation);
    // Map the (approximately Gaussian) modulation through a logistic CDF so
    // `u` is ~uniform on [0, 1]. Then `u^power` has the analytically
    // convenient property P(u^p · A ≥ e) = 1 − (e/A)^(1/p): the active
    // fraction decays geometrically per decade of error bound, matching the
    // gradual constant-block falloff of real turbulence data.
    let std = {
        let var = modulation
            .iter()
            .map(|&m| (m as f64) * (m as f64))
            .sum::<f64>()
            / n.max(1) as f64;
        (var.sqrt() as f32).max(1e-12)
    };
    let k = 1.702 / std;
    for (c, m) in carrier.iter_mut().zip(&modulation) {
        let u = 1.0 / (1.0 + (-k * m).exp());
        *c *= amplitude * u.powi(power);
    }
    carrier
}

/// Add a smooth profile along one axis, parameterized by the *fractional*
/// position `t = i/len ∈ [0,1)`: `amplitude · (cos(π t + φ) + 0.3 cos(2π t))`.
///
/// This is the stratification that carries most of a scientific field's
/// global value range (pressure and temperature vary with altitude, climate
/// fields with latitude) while contributing almost nothing to the variation
/// *within* a fast-axis block — the anisotropy that makes real datasets so
/// compressible under SZx. Being a function of the fractional coordinate,
/// it is exactly scale-invariant.
pub fn add_axis_profile(
    data: &mut [f32],
    dims: [usize; 3],
    axis: usize,
    amplitude: f32,
    phase: f32,
) {
    let [nx, ny, nz] = dims;
    let len = dims[axis].max(1);
    let inv = 1.0 / len as f32;
    let profile = |i: usize| {
        let t = i as f32 * inv;
        amplitude
            * ((core::f32::consts::PI * t + phase).cos() + 0.3 * (core::f32::consts::TAU * t).cos())
    };
    // Precompute per-axis values once.
    let table: Vec<f32> = (0..len).map(profile).collect();
    let mut i = 0;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = match axis {
                    0 => x,
                    1 => y,
                    _ => z,
                };
                data[i] += table[idx];
                i += 1;
            }
        }
    }
}

/// Map a zero-centered field through `exp(scale·v)` — produces the heavy
/// right tail of cosmological density fields.
pub fn exponentiate(data: &mut [f32], scale: f32) {
    for v in data.iter_mut() {
        *v = (*v * scale).exp();
    }
}

/// Add a smooth large-scale trend (a low-frequency cosine sheet) so fields
/// have the global structure visible in the paper's Figure 1 slices.
///
/// The wavelength is fixed at 512 *samples* rather than scaling with the
/// grid, so the per-block variation the trend contributes — and therefore
/// the field's compressibility — is identical at every [`crate::registry::Scale`].
pub fn add_trend(data: &mut [f32], dims: [usize; 3], amplitude: f32, phase: f32) {
    let [nx, ny, nz] = dims;
    const PERIOD: f32 = 512.0;
    let fx = core::f32::consts::TAU / PERIOD;
    let fy = core::f32::consts::TAU / PERIOD;
    let fz = core::f32::consts::TAU / PERIOD;
    let mut i = 0;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let t = (x as f32 * fx + phase).cos()
                    + (y as f32 * fy + 0.7 * phase).sin()
                    + if nz > 1 { (z as f32 * fz).cos() } else { 0.0 };
                data[i] += amplitude * t;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_noise_is_reproducible_and_bounded() {
        let a = white_noise(1000, 42);
        let b = white_noise(1000, 42);
        let c = white_noise(1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn blur_preserves_mean_approximately() {
        let dims = [64, 32, 1];
        let mut data = white_noise(64 * 32, 7);
        let before: f64 = data.iter().map(|&v| v as f64).sum();
        box_blur_axis(&mut data, dims, 0, 4);
        box_blur_axis(&mut data, dims, 1, 4);
        let after: f64 = data.iter().map(|&v| v as f64).sum();
        // Clamped edges shift mass slightly; the mean must stay close.
        assert!(
            (before - after).abs() < 0.05 * data.len() as f64,
            "mean drift: {before} -> {after}"
        );
    }

    #[test]
    fn blur_reduces_local_variation() {
        let dims = [4096, 1, 1];
        let mut data = white_noise(4096, 9);
        let rough: f64 = data.windows(2).map(|w| (w[1] - w[0]).abs() as f64).sum();
        smooth(&mut data, dims, 8);
        let smooth_var: f64 = data.windows(2).map(|w| (w[1] - w[0]).abs() as f64).sum();
        assert!(smooth_var < rough / 10.0, "{smooth_var} vs {rough}");
    }

    #[test]
    fn blur_constant_is_identity() {
        let dims = [32, 32, 1];
        let mut data = vec![3.5f32; 32 * 32];
        smooth(&mut data, dims, 5);
        for &v in &data {
            assert!((v - 3.5).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_zero_radius_is_identity() {
        let mut data = white_noise(100, 1);
        let orig = data.clone();
        box_blur_axis(&mut data, [100, 1, 1], 0, 0);
        assert_eq!(data, orig);
    }

    #[test]
    fn blur_3d_axes_all_work() {
        let dims = [8, 8, 8];
        let mut data = white_noise(512, 3);
        for axis in 0..3 {
            box_blur_axis(&mut data, dims, axis, 2);
        }
        assert!(data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn normalize_centers_and_scales() {
        let mut data = vec![1.0f32, 2.0, 3.0];
        normalize(&mut data);
        let mean: f32 = data.iter().sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-6);
        assert!((data.iter().fold(0.0f32, |a, &v| a.max(v.abs())) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fractal_field_shape() {
        let f = fractal_field([64, 64, 1], &[(16, 1.0), (4, 0.25)], 5);
        assert_eq!(f.len(), 4096);
        assert!(f.iter().all(|v| v.is_finite()));
        let peak = f.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(peak > 0.1 && peak <= 1.3, "peak {peak}");
    }

    #[test]
    fn spike_field_is_sparse_and_nonnegative() {
        let f = spike_field([128, 128, 1], 0.002, 2, 0.02, 11);
        assert!(f.iter().all(|&v| v >= 0.0));
        let zeros = f.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros > f.len() / 2,
            "expected mostly zeros, got {zeros}/{}",
            f.len()
        );
        assert!(f.iter().any(|&v| v > 0.1), "expected some peaks");
    }

    #[test]
    fn trend_adds_global_structure() {
        let dims = [128, 64, 1];
        let mut data = vec![0.0f32; 128 * 64];
        add_trend(&mut data, dims, 1.0, 0.3);
        let range = data.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v))
            - data.iter().fold(f32::INFINITY, |a, &v| a.min(v));
        assert!(range > 0.5, "range {range}");
    }
}
