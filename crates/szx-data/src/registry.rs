//! The six applications of the paper's Table 2 and how to generate their
//! synthetic stand-ins.

use crate::apps;
use crate::fields::Dataset;

/// The applications evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// CESM-ATM: 77 2-D atmosphere fields, 1800×3600.
    CesmAtm,
    /// Hurricane ISABEL: 13 3-D fields, 100×500×500.
    Hurricane,
    /// Miranda large-eddy simulation: 7 3-D fields, 256×384×384.
    Miranda,
    /// Nyx cosmology: 6 3-D fields, 512×512×512.
    Nyx,
    /// QMCPack electronic structure: 2 fields, 288×115×69×69.
    QmcPack,
    /// SCALE-LetKF weather: 12 3-D fields, 98×1200×1200.
    ScaleLetkf,
}

impl Application {
    /// All six, in the paper's table order.
    pub const ALL: [Application; 6] = [
        Application::CesmAtm,
        Application::Hurricane,
        Application::Miranda,
        Application::Nyx,
        Application::QmcPack,
        Application::ScaleLetkf,
    ];

    /// Short name as used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            Application::CesmAtm => "CESM",
            Application::Hurricane => "Hurricane",
            Application::Miranda => "Miranda",
            Application::Nyx => "NYX",
            Application::QmcPack => "QMCPACK",
            Application::ScaleLetkf => "SCALE",
        }
    }

    /// Table 2 metadata: (field count, full dims `[nx, ny, nz]`, description).
    pub fn spec(self) -> (usize, [usize; 3], &'static str) {
        match self {
            Application::CesmAtm => (
                77,
                [3600, 1800, 1],
                "Atmosphere simulation of Community Earth System Model",
            ),
            Application::Hurricane => (13, [500, 500, 100], "simulation of Hurricane ISABEL"),
            Application::Miranda => (
                7,
                [384, 384, 256],
                "large-eddy simulation of multi-component flows with turbulent mixing",
            ),
            Application::Nyx => (
                6,
                [512, 512, 512],
                "adaptive mesh, massively parallel cosmological simulation",
            ),
            Application::QmcPack => (
                2,
                [69, 69, 115 * 288],
                "simulation for electronic structure of atoms, molecules and solids",
            ),
            Application::ScaleLetkf => (
                12,
                [1200, 1200, 98],
                "SCALE-RM weather simulation based on LETKF filter",
            ),
        }
    }

    /// Generate the synthetic dataset at the given scale with all fields.
    pub fn generate(self, scale: Scale, seed: u64) -> Dataset {
        self.generate_limited(scale, seed, usize::MAX)
    }

    /// Generate at most `max_fields` fields (cheaper sweeps).
    pub fn generate_limited(self, scale: Scale, seed: u64, max_fields: usize) -> Dataset {
        let mut ds = match self {
            Application::CesmAtm => apps::cesm::generate(scale, seed, max_fields),
            Application::Hurricane => apps::hurricane::generate(scale, seed, max_fields),
            Application::Miranda => apps::miranda::generate(scale, seed, max_fields),
            Application::Nyx => apps::nyx::generate(scale, seed, max_fields),
            Application::QmcPack => apps::qmcpack::generate(scale, seed, max_fields),
            Application::ScaleLetkf => apps::scale_letkf::generate(scale, seed, max_fields),
        };
        ds.name = self.short_name().to_string();
        ds
    }

    /// A small deterministic value sample for fuzz-corpus seeding: the
    /// first `n` values of the application's first tiny-scale field (fixed
    /// seed 1), padded by cycling when the field is shorter than `n`. The
    /// fuzzing harness (`crates/szx-fuzz`) compresses these into its seed
    /// corpus so mutation starts from each application's real value
    /// statistics instead of white noise.
    pub fn fuzz_seed_values(self, n: usize) -> Vec<f32> {
        let ds = self.generate_limited(Scale::Tiny, 1, 1);
        let data: &[f32] = match ds.fields.first() {
            Some(field) if !field.data.is_empty() => &field.data,
            _ => &[0.0],
        };
        (0..n).map(|i| data[i % data.len()]).collect()
    }
}

/// Spatial scale of the generated grids. The full Table 2 dimensions are
/// divided by the factor along every axis (min 8 samples per axis), keeping
/// the local smoothness statistics — and hence compressibility — intact
/// while making everything laptop-runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Divide each axis by 16 (unit tests).
    Tiny,
    /// Divide each axis by 8 (quick experiments; the default).
    Small,
    /// Divide each axis by 4 (throughput benchmarks).
    Medium,
    /// Divide each axis by 2.
    Large,
    /// The paper's full dimensions.
    Full,
}

impl Scale {
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 8,
            Scale::Medium => 4,
            Scale::Large => 2,
            Scale::Full => 1,
        }
    }

    /// Apply to a dimension triple.
    pub fn apply(self, dims: [usize; 3]) -> [usize; 3] {
        let f = self.factor();
        let shrink = |d: usize| if d == 1 { 1 } else { (d / f).max(8) };
        [shrink(dims[0]), shrink(dims[1]), shrink(dims[2])]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_2() {
        assert_eq!(Application::CesmAtm.spec().0, 77);
        assert_eq!(Application::Hurricane.spec().0, 13);
        assert_eq!(Application::Miranda.spec().0, 7);
        assert_eq!(Application::Nyx.spec().0, 6);
        assert_eq!(Application::QmcPack.spec().0, 2);
        assert_eq!(Application::ScaleLetkf.spec().0, 12);
        assert_eq!(Application::Nyx.spec().1, [512, 512, 512]);
    }

    #[test]
    fn scale_shrinks_dims() {
        assert_eq!(Scale::Small.apply([512, 512, 512]), [64, 64, 64]);
        assert_eq!(Scale::Full.apply([512, 512, 512]), [512, 512, 512]);
        assert_eq!(
            Scale::Tiny.apply([100, 1, 1]),
            [8, 1, 1],
            "floor and keep 1s"
        );
    }

    #[test]
    fn every_app_generates_with_right_field_counts() {
        for app in Application::ALL {
            let ds = app.generate(Scale::Tiny, 1);
            assert_eq!(ds.fields.len(), app.spec().0, "{}", app.short_name());
            assert_eq!(ds.name, app.short_name());
            for f in &ds.fields {
                assert!(!f.data.is_empty(), "{} / {}", ds.name, f.name);
                assert!(
                    f.data.iter().all(|v| v.is_finite()),
                    "{} / {} has non-finite values",
                    ds.name,
                    f.name
                );
            }
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Application::Miranda.generate(Scale::Tiny, 7);
        let b = Application::Miranda.generate(Scale::Tiny, 7);
        let c = Application::Miranda.generate(Scale::Tiny, 8);
        assert_eq!(a.fields[0].data, b.fields[0].data);
        assert_ne!(a.fields[0].data, c.fields[0].data);
    }

    #[test]
    fn limited_generation_truncates() {
        let ds = Application::CesmAtm.generate_limited(Scale::Tiny, 1, 5);
        assert_eq!(ds.fields.len(), 5);
    }

    #[test]
    fn figure_reference_fields_exist() {
        // Fields that paper figures cite by name must exist.
        let checks: [(Application, &[&str]); 6] = [
            (Application::CesmAtm, &["CLDHGH", "PHIS"]),
            (Application::Hurricane, &["CLOUD", "QSNOW", "U"]),
            (
                Application::Miranda,
                &[
                    "density",
                    "diffusivity",
                    "pressure",
                    "velocity-x",
                    "velocity-y",
                    "velocity-z",
                    "viscocity",
                ],
            ),
            (Application::Nyx, &["baryon-density", "temperature"]),
            (Application::QmcPack, &["inspline"]),
            (Application::ScaleLetkf, &["V"]),
        ];
        for (app, names) in checks {
            let ds = app.generate(Scale::Tiny, 3);
            for name in names {
                assert!(
                    ds.field(name).is_some(),
                    "{} missing {name}",
                    app.short_name()
                );
            }
        }
    }
}
