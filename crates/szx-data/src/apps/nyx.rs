//! Nyx cosmology: 6 three-dimensional fields (512³).
//!
//! Density fields are log-normal with heavy tails (dark-matter halos),
//! temperature follows density weakly, velocities are large-scale coherent
//! flows. The paper's Figure 2b shows Nyx is markedly *less* smooth than
//! Miranda/QMCPack; the heavy density tails also give SZ its huge CRs there.

use super::{add_intermittency, rescale, stratified_field};
use crate::fields::{Dataset, Field};
use crate::grf;
use crate::registry::{Application, Scale};

const NAMES: [&str; 6] = [
    "baryon-density",
    "dark-matter-density",
    "temperature",
    "velocity-x",
    "velocity-y",
    "velocity-z",
];

pub fn generate(scale: Scale, seed: u64, max_fields: usize) -> Dataset {
    let (count, full_dims, _) = Application::Nyx.spec();
    let dims = scale.apply(full_dims);
    let mut fields = Vec::with_capacity(count.min(max_fields));

    for (i, name) in NAMES.iter().enumerate().take(count.min(max_fields)) {
        let fseed = seed.wrapping_mul(547).wrapping_add(i as u64);
        let data = match *name {
            "baryon-density" => {
                // Log-normal with a very heavy tail: halos are thousands of
                // times the mean, so at coarse bounds the entire void/filament
                // volume collapses into constant blocks.
                let mut f = grf::fractal_field(dims, &[(12, 1.0), (3, 0.12)], fseed);
                grf::exponentiate(&mut f, 7.0);
                f
            }
            "dark-matter-density" => {
                let mut f = grf::fractal_field(dims, &[(10, 1.0), (2, 0.15)], fseed);
                grf::exponentiate(&mut f, 8.5);
                f
            }
            "temperature" => {
                // Follows large-scale structure, smoother, ~1e3..1e5 K.
                let mut f = stratified_field(dims, 2, 0.6, &[(20, 0.06)], fseed);
                add_intermittency(&mut f, dims, 4, 0.6, 14, 9, fseed ^ 0xa5);
                grf::exponentiate(&mut f, 1.4);
                for v in f.iter_mut() {
                    *v *= 1.0e4;
                }
                f
            }
            _ => {
                // Bulk flows: large-scale coherent, moderate small-scale power
                // (Nyx is distinctly rougher than Miranda, per Figure 2b).
                // The low modulation power keeps a sizable fraction of the
                // volume turbulently active, so the Miranda-vs-Nyx contrast
                // is decisive rather than a knife-edge of the realization.
                let mut f = stratified_field(dims, 2, 0.8, &[(40, 0.02)], fseed);
                add_intermittency(&mut f, dims, 4, 0.9, 14, 6, fseed ^ 0xa5);
                rescale(&mut f, -2.6e7, 2.6e7); // cm/s, as in the real data
                f
            }
        };
        fields.push(Field::new(*name, dims, data));
    }

    Dataset {
        name: "NYX".into(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_has_heavy_tail() {
        let ds = generate(Scale::Tiny, 5, 1);
        let f = &ds.fields[0];
        let mean = f.data.iter().map(|&v| v as f64).sum::<f64>() / f.len() as f64;
        let max = f.data.iter().fold(0.0f32, |a, &v| a.max(v)) as f64;
        assert!(max / mean > 5.0, "max/mean = {}", max / mean);
        assert!(f.data.iter().all(|&v| v > 0.0), "densities are positive");
    }

    #[test]
    fn six_fields_with_velocities() {
        let ds = generate(Scale::Tiny, 5, usize::MAX);
        assert_eq!(ds.fields.len(), 6);
        let v = ds.field("velocity-x").unwrap();
        assert!(v.value_range() > 1e7);
    }

    #[test]
    fn temperature_positive_and_bounded() {
        let ds = generate(Scale::Tiny, 5, 3);
        let t = ds.field("temperature").unwrap();
        assert!(t.data.iter().all(|&v| v > 0.0 && v < 1e7));
    }
}
