//! Miranda: 7 three-dimensional fields (256×384×384) from a large-eddy
//! simulation of turbulent mixing.
//!
//! The paper's smoothest dataset (Figure 2a: >80% of 8-element blocks span
//! <1% of the global range). The mixing-layer structure is strongly
//! stratified: the global range lives along z while individual x-lines are
//! nearly uniform, with only weak turbulent fine structure. This is where
//! SZx's constant blocks shine.

use super::{add_intermittency, rescale, stratified_field};
use crate::fields::{Dataset, Field};
use crate::registry::{Application, Scale};

/// The seven Miranda fields, paper spelling included ("viscocity").
const NAMES: [&str; 7] = [
    "density",
    "diffusivity",
    "pressure",
    "velocity-x",
    "velocity-y",
    "velocity-z",
    "viscocity",
];

pub fn generate(scale: Scale, seed: u64, max_fields: usize) -> Dataset {
    let (count, full_dims, _) = Application::Miranda.spec();
    let dims = scale.apply(full_dims);
    let mut fields = Vec::with_capacity(count.min(max_fields));

    for (i, name) in NAMES.iter().enumerate().take(count.min(max_fields)) {
        let fseed = seed.wrapping_mul(733).wrapping_add(i as u64);
        let data = match *name {
            // Scalars: stratified mixing layer, very weak fine structure.
            "density" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(16, 0.001)], fseed);
                add_intermittency(&mut f, dims, 4, 0.8, 18, 15, fseed ^ 0xa5);
                rescale(&mut f, 0.98, 3.1);
                f
            }
            "pressure" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(20, 0.0008)], fseed);
                add_intermittency(&mut f, dims, 5, 0.7, 20, 15, fseed ^ 0xa5);
                rescale(&mut f, 0.2, 14.0);
                f
            }
            "diffusivity" | "viscocity" => {
                let mut f = stratified_field(dims, 2, 0.8, &[(14, 0.001)], fseed);
                add_intermittency(&mut f, dims, 4, 0.8, 16, 15, fseed ^ 0xa5);
                rescale(&mut f, 0.0, 1.6e-2);
                f
            }
            // Velocities: more turbulent fine-scale energy than the scalars.
            _ => {
                let mut f = stratified_field(dims, 2, 0.5, &[(12, 0.002)], fseed);
                add_intermittency(&mut f, dims, 3, 1.0, 14, 12, fseed ^ 0xa5);
                rescale(&mut f, -1.4, 1.4);
                f
            }
        };
        fields.push(Field::new(*name, dims, data));
    }

    Dataset {
        name: "Miranda".into(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_fields() {
        let ds = generate(Scale::Tiny, 3, usize::MAX);
        assert_eq!(ds.fields.len(), 7);
        for name in NAMES {
            assert!(ds.field(name).is_some(), "{name}");
        }
    }

    #[test]
    fn miranda_is_very_smooth() {
        // The Figure-2 premise: most 8-element blocks span a tiny fraction
        // of the global range.
        let ds = generate(Scale::Tiny, 3, 1);
        let f = &ds.fields[0];
        let ranges = block_relative_ranges(&f.data, 8);
        let small = ranges.iter().filter(|&&r| r <= 0.01).count();
        assert!(
            small as f64 / ranges.len() as f64 > 0.6,
            "only {small}/{} blocks are smooth",
            ranges.len()
        );
    }

    // Local copy of the block relative-range computation to avoid a
    // dev-dependency cycle with szx-metrics.
    fn block_relative_ranges(data: &[f32], bs: usize) -> Vec<f64> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in data {
            let v = v as f64;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let g = if hi > lo { hi - lo } else { 1.0 };
        data.chunks(bs)
            .map(|b| {
                let (mut l, mut h) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in b {
                    let v = v as f64;
                    l = l.min(v);
                    h = h.max(v);
                }
                (h - l) / g
            })
            .collect()
    }
}
