//! Per-application synthetic generators. Each module builds fields whose
//! *local smoothness statistics* (block value-range CDFs, sparsity, dynamic
//! range) land in the regime the paper reports for that application, which
//! is what determines SZx/SZ/ZFP behaviour. See DESIGN.md §4 for the
//! substitution rationale.

pub mod cesm;
pub mod hurricane;
pub mod miranda;
pub mod nyx;
pub mod qmcpack;
pub mod scale_letkf;

use crate::grf;

/// Scale a zero-centered unit field to `[lo, hi]`.
pub(crate) fn rescale(data: &mut [f32], lo: f32, hi: f32) {
    let (mut dlo, mut dhi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in data.iter() {
        if v < dlo {
            dlo = v;
        }
        if v > dhi {
            dhi = v;
        }
    }
    let span = if dhi > dlo { dhi - dlo } else { 1.0 };
    let k = (hi - lo) / span;
    for v in data.iter_mut() {
        *v = lo + (*v - dlo) * k;
    }
}

/// Plateau a fraction field: values below `lo_cut` clamp to 0, above
/// `hi_cut` to 1, with a smooth ramp between — mimics cloud-fraction-like
/// fields dominated by fully-clear/fully-cloudy regions (these produce the
/// paper's extreme CESM compression ratios).
pub(crate) fn plateau(data: &mut [f32], lo_cut: f32, hi_cut: f32) {
    let w = hi_cut - lo_cut;
    for v in data.iter_mut() {
        *v = ((*v - lo_cut) / w).clamp(0.0, 1.0);
    }
}

/// A smooth base field with a superimposed trend, the workhorse profile.
pub(crate) fn smooth_field(
    dims: [usize; 3],
    octaves: &[(usize, f32)],
    trend: f32,
    seed: u64,
) -> Vec<f32> {
    let mut f = grf::fractal_field(dims, octaves, seed);
    if trend != 0.0 {
        grf::add_trend(&mut f, dims, trend, (seed % 17) as f32 * 0.37);
    }
    f
}

/// The dominant profile of real scientific fields: a large-amplitude
/// stratification along one slow axis (altitude, latitude) plus
/// low-amplitude isotropic octaves. The stratification carries the global
/// range; the octaves set the within-block variation — i.e., this function's
/// parameters directly dial the Figure-2 smoothness CDF.
pub(crate) fn stratified_field(
    dims: [usize; 3],
    strat_axis: usize,
    strat_amp: f32,
    octaves: &[(usize, f32)],
    seed: u64,
) -> Vec<f32> {
    let mut f = grf::fractal_field(dims, octaves, seed);
    if strat_amp != 0.0 {
        grf::add_axis_profile(
            &mut f,
            dims,
            strat_axis,
            strat_amp,
            (seed % 13) as f32 * 0.23,
        );
    }
    f
}

/// Add intermittent fine structure on top of a base field:
/// `(fine radius, peak amplitude, modulation radius, modulation power)`.
pub(crate) fn add_intermittency(
    data: &mut [f32],
    dims: [usize; 3],
    radius: usize,
    amplitude: f32,
    mod_radius: usize,
    power: i32,
    seed: u64,
) {
    let fine = grf::intermittent_field(dims, radius, amplitude, mod_radius, power, seed);
    for (d, f) in data.iter_mut().zip(&fine) {
        *d += f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescale_hits_endpoints() {
        let mut d = vec![-1.0f32, 0.0, 1.0];
        rescale(&mut d, 10.0, 20.0);
        assert_eq!(d[0], 10.0);
        assert_eq!(d[2], 20.0);
        assert!((d[1] - 15.0).abs() < 1e-6);
    }

    #[test]
    fn rescale_constant_input() {
        let mut d = vec![5.0f32; 4];
        rescale(&mut d, 0.0, 1.0);
        assert!(d.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn plateau_saturates() {
        let mut d = vec![-0.5f32, 0.0, 0.5, 1.0];
        plateau(&mut d, 0.0, 0.5);
        assert_eq!(d, vec![0.0, 0.0, 1.0, 1.0]);
    }
}
