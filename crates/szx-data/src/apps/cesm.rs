//! CESM-ATM: 77 two-dimensional atmosphere fields (1800×3600).
//!
//! The real dataset mixes very different personalities — plateaued cloud
//! fractions (huge constant regions ⇒ the paper's CR≈124 outliers), sparse
//! precipitation rates, and smooth state fields (surface geopotential,
//! temperature, pressure). The generator cycles through those profiles.

use super::{plateau, rescale, smooth_field, stratified_field};
use crate::fields::{Dataset, Field};
use crate::grf;
use crate::registry::{Application, Scale};

/// Real CESM-ATM variable names for the first fields (the rest are synthetic
/// names); `CLDHGH` and `PHIS` are referenced by paper figures.
/// Ordered so each name lands on the matching profile of the `i % 5` cycle
/// below (fractions, precipitation, state, geopotential/pressure, fluxes).
const NAMES: [&str; 30] = [
    "CLDHGH", "PRECC", "TS", "PHIS", "FLDS", //
    "CLDLOW", "PRECL", "TREFHT", "PSL", "FLNS", //
    "CLDMED", "PRECSC", "QREFHT", "PS", "FLNT", //
    "CLDTOT", "PRECSL", "RELHUM", "U10", "FSDS", //
    "ICEFRAC", "SNOWHLND", "TMQ", "TAUX", "FSNS", //
    "SNOWHICE", "SHFLX", "LHFLX", "TAUY", "FSNT",
];

pub fn generate(scale: Scale, seed: u64, max_fields: usize) -> Dataset {
    let (count, full_dims, _) = Application::CesmAtm.spec();
    let dims = scale.apply(full_dims);
    let n_fields = count.min(max_fields);
    let mut fields = Vec::with_capacity(n_fields);

    for i in 0..n_fields {
        let fseed = seed.wrapping_mul(1000).wrapping_add(i as u64);
        let name = NAMES
            .get(i)
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("FLD{i:03}"));
        // Cycle profiles the way the real variable list does: ~1/3 cloud- or
        // ice-fraction-like, ~1/5 sparse precipitation, the rest smooth state.
        let data = match i % 5 {
            // Plateaued fraction field: mostly 0/1 plateaus.
            0 => {
                let mut f = smooth_field(dims, &[(24, 1.0), (6, 0.3)], 0.0, fseed);
                plateau(&mut f, -0.15, 0.15);
                f
            }
            // Sparse precipitation-like field, tiny magnitudes. Density is
            // low enough that most 128-element blocks are entirely zero —
            // the plateau-dominated extreme of Table 3's CESM CR spread.
            1 => {
                let mut f = grf::spike_field(dims, 0.002, 2, 0.3, fseed);
                for v in f.iter_mut() {
                    *v *= 3.2e-7;
                }
                f
            }
            // Smooth surface state dominated by the latitudinal gradient
            // (temperature-like); axis 1 is latitude.
            2 => {
                let mut f = stratified_field(dims, 1, 1.0, &[(24, 0.03), (6, 0.003)], fseed);
                rescale(&mut f, 220.0, 310.0);
                f
            }
            // Geopotential-like: very smooth, large magnitude.
            3 => {
                let mut f = stratified_field(dims, 1, 1.0, &[(20, 0.05), (5, 0.005)], fseed);
                rescale(&mut f, -350.0, 5.6e4);
                f
            }
            // Flux-like: smooth with moderate small-scale activity.
            _ => {
                let mut f = stratified_field(dims, 1, 0.8, &[(16, 0.1), (4, 0.01)], fseed);
                rescale(&mut f, -80.0, 420.0);
                f
            }
        };
        fields.push(Field::new(name, dims, data));
    }

    Dataset {
        name: "CESM".into(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cldhgh_is_plateaued() {
        let ds = generate(Scale::Tiny, 1, 3);
        let f = ds.field("CLDHGH").unwrap();
        let zeros = f.data.iter().filter(|&&v| v == 0.0).count();
        let ones = f.data.iter().filter(|&&v| v == 1.0).count();
        assert!(
            zeros + ones > f.data.len() / 3,
            "cloud fraction should be plateau-dominated: {zeros}+{ones} of {}",
            f.data.len()
        );
        assert!(f.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fields_are_2d() {
        let ds = generate(Scale::Tiny, 1, 2);
        for f in &ds.fields {
            assert_eq!(f.dims[2], 1);
        }
    }

    #[test]
    fn phis_has_large_range() {
        let ds = generate(Scale::Tiny, 1, 4);
        let f = ds.field("PHIS").unwrap();
        assert!(f.value_range() > 1e4);
    }
}
