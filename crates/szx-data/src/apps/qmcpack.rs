//! QMCPack: einspline orbital coefficients (288 orbitals × 115×69×69).
//!
//! Orbitals are spatially *localized* oscillatory functions: a compact
//! envelope holds all the signal while the bulk of each orbital's volume is
//! a near-zero exponential tail. That localization — not low frequency — is
//! why Figure 2c shows QMCPack rivaling Miranda in block smoothness: most
//! blocks sit in the tail and span almost none of the global range. We
//! flatten the orbital index into the z axis, matching the raw SDRBench
//! file layout.

use crate::fields::{Dataset, Field};
use crate::grf;
use crate::registry::{Application, Scale};

/// Fixed oscillation wavelength in samples, scale-invariant per DESIGN.md.
const WAVELENGTH: f32 = 48.0;

fn orbital_field(grid: [usize; 3], orbitals: usize, seed: u64) -> Vec<f32> {
    let [nx, ny, nz_per] = grid;
    let per_orbital = nx * ny * nz_per;
    let mut out = Vec::with_capacity(per_orbital * orbitals);
    let k = core::f32::consts::TAU / WAVELENGTH;
    for orb in 0..orbitals {
        let oseed = seed.wrapping_add(orb as u64 * 131);
        // Low-amplitude smooth background so the tail is not exactly zero.
        let noise = grf::fractal_field([nx, ny, nz_per], &[(12, 0.0008)], oseed);
        // Orbital center wanders per orbital; envelope covers ~a tenth of
        // the domain in each axis.
        let h = |s: u64| (s.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f32 / 16777216.0;
        let (cx, cy, cz) = (
            (0.25 + 0.5 * h(oseed)) * nx as f32,
            (0.25 + 0.5 * h(oseed + 1)) * ny as f32,
            (0.25 + 0.5 * h(oseed + 2)) * nz_per as f32,
        );
        let inv2 = {
            let sigma = 0.12 * (nx.min(ny) as f32).max(4.0);
            1.0 / (2.0 * sigma * sigma)
        };
        let mut i = 0;
        for z in 0..nz_per {
            for y in 0..ny {
                for x in 0..nx {
                    let dx = x as f32 - cx;
                    let dy = y as f32 - cy;
                    let dz = z as f32 - cz;
                    let envelope = (-(dx * dx + dy * dy + dz * dz) * inv2).exp();
                    let wave = (x as f32 * k).sin()
                        * (y as f32 * k * 0.83).cos()
                        * (z as f32 * k * 1.21).sin();
                    // Mid-amplitude shell: the orbital's slower decay ring,
                    // resolved at coarse bounds but constant at fine ones.
                    let shell = envelope.sqrt()
                        * 0.04
                        * (x as f32 * k * 0.47).cos()
                        * (y as f32 * k * 0.53).sin();
                    out.push(envelope * wave + shell + noise[i]);
                    i += 1;
                }
            }
        }
    }
    out
}

pub fn generate(scale: Scale, seed: u64, max_fields: usize) -> Dataset {
    let (count, _, _) = Application::QmcPack.spec();
    // Per-orbital grid 115×69×69, orbital count 288 (the paper's first
    // variant); scale shrinks both the grid and the orbital count.
    let grid = scale.apply([69, 69, 115]);
    let orbitals = (288 / scale.factor()).max(4);
    let mut fields = Vec::new();
    for (i, name) in ["inspline", "inspline-p"]
        .iter()
        .enumerate()
        .take(count.min(max_fields))
    {
        let fseed = seed.wrapping_mul(389).wrapping_add(i as u64);
        let data = orbital_field(grid, orbitals, fseed);
        let dims = [grid[0], grid[1], grid[2] * orbitals];
        fields.push(Field::new(*name, dims, data));
    }
    Dataset {
        name: "QMCPACK".into(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_fields_orbital_layout() {
        let ds = generate(Scale::Tiny, 9, usize::MAX);
        assert_eq!(ds.fields.len(), 2);
        let f = ds.field("inspline").unwrap();
        assert_eq!(f.len(), f.data.len());
        assert!(f.dims[2] > f.dims[0], "orbitals stack along z");
    }

    #[test]
    fn orbitals_are_localized() {
        let ds = generate(Scale::Small, 9, 1);
        let f = &ds.fields[0];
        let peak = f.data.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(peak > 0.05, "peak {peak}");
        // Most of the volume is tail: |v| below 5% of peak.
        let tail = f.data.iter().filter(|&&v| v.abs() < 0.05 * peak).count();
        assert!(
            tail as f64 / f.len() as f64 > 0.7,
            "tail fraction {}",
            tail as f64 / f.len() as f64
        );
    }

    #[test]
    fn orbitals_oscillate_in_the_core() {
        let ds = generate(Scale::Small, 9, 1);
        let f = &ds.fields[0];
        let pos = f.data.iter().filter(|&&v| v > 1e-4).count();
        let neg = f.data.iter().filter(|&&v| v < -1e-4).count();
        assert!(pos > 0 && neg > 0, "{pos} / {neg}");
    }
}
