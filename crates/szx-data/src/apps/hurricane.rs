//! Hurricane ISABEL: 13 three-dimensional fields (100×500×500).
//!
//! Mix of sparse hydrometeor mixing ratios (CLOUD, QSNOW, QRAIN, …) — large
//! zero regions around a compact storm — and continuous dynamic fields
//! (wind components, temperature, pressure) with a strong vortex.

use super::{rescale, stratified_field};
use crate::fields::{Dataset, Field};
use crate::grf;
use crate::registry::{Application, Scale};

/// Add a swirling vortex (tangential velocity peaking at radius `r0`) to a
/// velocity component. `component` 0 = x-like, 1 = y-like.
fn add_vortex(data: &mut [f32], dims: [usize; 3], amplitude: f32, component: usize) {
    let [nx, ny, nz] = dims;
    let (cx, cy) = (nx as f32 * 0.55, ny as f32 * 0.45);
    let r0 = nx.min(ny) as f32 * 0.18;
    let mut i = 0;
    for _z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let r = (dx * dx + dy * dy).sqrt().max(1.0);
                // Rankine-like profile: solid-body core, 1/r decay outside.
                let v = if r < r0 { r / r0 } else { r0 / r };
                let tangential = if component == 0 { -dy / r } else { dx / r };
                data[i] += amplitude * v * tangential;
                i += 1;
            }
        }
    }
}

pub fn generate(scale: Scale, seed: u64, max_fields: usize) -> Dataset {
    let (count, full_dims, _) = Application::Hurricane.spec();
    let dims = scale.apply(full_dims);
    let names = [
        "CLOUD", "QSNOW", "QRAIN", "QICE", "QGRAUP", "QCLOUD", // sparse hydrometeors
        "U", "V", "W", // winds
        "TC", "P", "QVAPOR", "PRECIP",
    ];
    let mut fields = Vec::with_capacity(count.min(max_fields));

    for (i, name) in names.iter().enumerate().take(count.min(max_fields)) {
        let fseed = seed.wrapping_mul(977).wrapping_add(i as u64);
        let data = match *name {
            // Hydrometeors: compact storm-centered sparse structures.
            "CLOUD" | "QSNOW" | "QRAIN" | "QICE" | "QGRAUP" | "QCLOUD" => {
                let mut f = grf::spike_field(dims, 0.002, 2, 0.35, fseed);
                // Low-level humidity texture keeps even the "empty" regions
                // from being exactly constant at coarse bounds (the paper's
                // Hurricane max CR at REL 1e-2 is ~21, not the ~124 cap).
                let bg = grf::intermittent_field(dims, 4, 0.12, 14, 8, fseed ^ 0x77);
                for (v, b) in f.iter_mut().zip(&bg) {
                    *v = (*v + b.abs()) * 2.3e-3; // kg/kg mixing-ratio magnitudes
                }
                f
            }
            "U" | "V" => {
                let mut f = stratified_field(dims, 2, 0.6, &[(16, 0.08), (4, 0.01)], fseed);
                rescale(&mut f, -30.0, 30.0);
                add_vortex(&mut f, dims, 25.0, usize::from(*name == "V"));
                f
            }
            "W" => {
                // Vertical velocity is genuinely small-scale: the roughest
                // Hurricane field, as in the real data.
                let mut f = stratified_field(dims, 2, 0.3, &[(10, 0.3), (3, 0.05)], fseed);
                rescale(&mut f, -4.0, 4.0);
                f
            }
            "TC" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(16, 0.02), (4, 0.003)], fseed);
                rescale(&mut f, -70.0, 30.0);
                f
            }
            "P" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(20, 0.01)], fseed);
                rescale(&mut f, -4000.0, 3000.0);
                f
            }
            "QVAPOR" => {
                let mut f = stratified_field(dims, 2, 0.9, &[(16, 0.06)], fseed);
                rescale(&mut f, 0.0, 0.02);
                f
            }
            _ => {
                let mut f = grf::spike_field(dims, 0.0015, 2, 0.3, fseed);
                let bg = grf::intermittent_field(dims, 4, 0.12, 14, 8, fseed ^ 0x77);
                for (v, b) in f.iter_mut().zip(&bg) {
                    *v = (*v + b.abs()) * 8.0e-3;
                }
                f
            }
        };
        fields.push(Field::new(*name, dims, data));
    }

    Dataset {
        name: "Hurricane".into(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrometeors_are_sparse() {
        // With the low-level humidity texture nothing is exactly zero, but
        // the bulk of the volume stays near-zero relative to the peaks.
        let ds = generate(Scale::Tiny, 2, 2);
        let f = ds.field("QSNOW").unwrap();
        let peak = f.data.iter().fold(0.0f32, |a, &v| a.max(v));
        let near_zero = f.data.iter().filter(|&&v| v < 0.05 * peak).count();
        assert!(near_zero > f.data.len() / 2, "{near_zero}/{}", f.data.len());
        assert!(f.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn winds_have_vortex_scale_magnitudes() {
        let ds = generate(Scale::Tiny, 2, 8);
        let u = ds.field("U").unwrap();
        let range = u.value_range();
        assert!(range > 30.0 && range < 200.0, "range {range}");
    }

    #[test]
    fn fields_are_3d() {
        let ds = generate(Scale::Tiny, 2, 13);
        assert_eq!(ds.fields.len(), 13);
        for f in &ds.fields {
            assert!(f.dims[2] > 1, "{}", f.name);
        }
    }
}
