//! SCALE-LetKF: 12 three-dimensional weather fields (98×1200×1200).
//!
//! Regional weather model output: smooth synoptic-scale dynamics (U, V, W,
//! T, P) plus sparse moisture species (QC, QR, QI, QS, QG) concentrated in
//! frontal bands.

use super::{rescale, stratified_field};
use crate::fields::{Dataset, Field};
use crate::grf;
use crate::registry::{Application, Scale};

const NAMES: [&str; 12] = [
    "U", "V", "W", "T", "P", "QV", "QC", "QR", "QI", "QS", "QG", "RH",
];

pub fn generate(scale: Scale, seed: u64, max_fields: usize) -> Dataset {
    let (count, full_dims, _) = Application::ScaleLetkf.spec();
    let dims = scale.apply(full_dims);
    let mut fields = Vec::with_capacity(count.min(max_fields));

    for (i, name) in NAMES.iter().enumerate().take(count.min(max_fields)) {
        let fseed = seed.wrapping_mul(271).wrapping_add(i as u64);
        let data = match *name {
            "U" | "V" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(24, 0.05), (6, 0.005)], fseed);
                rescale(&mut f, -28.0, 28.0);
                f
            }
            "W" => {
                // Vertical velocity: small-scale convective structure.
                let mut f = stratified_field(dims, 2, 0.2, &[(8, 0.3), (2, 0.04)], fseed);
                rescale(&mut f, -2.5, 2.5);
                f
            }
            "T" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(20, 0.02), (5, 0.002)], fseed);
                rescale(&mut f, 210.0, 305.0);
                f
            }
            "P" => {
                let mut f = stratified_field(dims, 2, 1.0, &[(24, 0.008)], fseed);
                rescale(&mut f, 1.2e4, 1.02e5);
                f
            }
            "QV" | "RH" => {
                let mut f = stratified_field(dims, 2, 0.9, &[(20, 0.06)], fseed);
                let (lo, hi) = if *name == "QV" {
                    (0.0, 0.018)
                } else {
                    (2.0, 100.0)
                };
                rescale(&mut f, lo, hi);
                f
            }
            // Moisture species: frontal-band sparse structures.
            _ => {
                let mut f = grf::spike_field(dims, 0.002, 2, 0.35, fseed);
                let bg = grf::fractal_field(dims, &[(12, 0.008)], fseed ^ 0x77);
                for (v, b) in f.iter_mut().zip(&bg) {
                    *v = (*v + b.abs()) * 1.6e-3;
                }
                f
            }
        };
        fields.push(Field::new(*name, dims, data));
    }

    Dataset {
        name: "SCALE".into(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_fields() {
        let ds = generate(Scale::Tiny, 4, usize::MAX);
        assert_eq!(ds.fields.len(), 12);
        assert!(ds.field("V").is_some());
    }

    #[test]
    fn moisture_is_sparse_dynamics_are_not() {
        let ds = generate(Scale::Tiny, 4, usize::MAX);
        let qc = ds.field("QC").unwrap();
        let peak = qc.data.iter().fold(0.0f32, |a, &v| a.max(v));
        let near_zero = qc.data.iter().filter(|&&v| v < 0.05 * peak).count();
        assert!(
            near_zero > qc.data.len() / 2,
            "QC must be concentration-sparse"
        );
        let t = ds.field("T").unwrap();
        let tmin = t.data.iter().fold(f32::INFINITY, |a, &v| a.min(v));
        assert!(tmin > 100.0, "temperature has no empty regions");
    }

    #[test]
    fn pressure_magnitude() {
        let ds = generate(Scale::Tiny, 4, 5);
        let p = ds.field("P").unwrap();
        assert!(p.value_range() > 5e4);
    }
}
