//! # szx-data
//!
//! Synthetic scientific-dataset generators standing in for the six SDRBench
//! applications the SZx paper evaluates on (Table 2): CESM-ATM, Hurricane
//! ISABEL, Miranda, Nyx, QMCPack, and SCALE-LetKF.
//!
//! The generators are built from seeded noise, separable smoothing, and a
//! small library of structural elements (plateaus, spikes, vortices,
//! log-normal tails). Each application profile is tuned so the statistics
//! that drive error-bounded compressors — block value-range CDFs, sparsity,
//! dynamic range — land in the regime the paper reports for that
//! application. See DESIGN.md §4 for the substitution rationale.
//!
//! ```
//! use szx_data::{Application, Scale};
//!
//! let miranda = Application::Miranda.generate(Scale::Tiny, 42);
//! assert_eq!(miranda.fields.len(), 7);
//! let pressure = miranda.field("pressure").unwrap();
//! assert!(pressure.data.iter().all(|v| v.is_finite()));
//! ```

#![forbid(unsafe_code)]

pub mod apps;
pub mod fields;
pub mod grf;
pub mod io;
pub mod registry;

pub use fields::{Dataset, Field};
pub use registry::{Application, Scale};
