//! Statistical characterization of the synthetic applications: the
//! generator profiles must keep the qualitative contrasts the paper's
//! evaluation relies on (Figure 2 smoothness ordering, sparsity, dynamic
//! range), at more than one scale and seed.

use szx_data::{Application, Scale};

/// Fraction of `bs`-element blocks whose value range is ≤ `frac` of the
/// global range (one point of the Figure-2 CDF).
fn cdf_at(data: &[f32], bs: usize, frac: f64) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        let v = v as f64;
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let g = if hi > lo { hi - lo } else { 1.0 };
    let mut small = 0usize;
    let mut total = 0usize;
    for b in data.chunks(bs) {
        let (mut l, mut h) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in b {
            let v = v as f64;
            l = l.min(v);
            h = h.max(v);
        }
        total += 1;
        if (h - l) / g <= frac {
            small += 1;
        }
    }
    small as f64 / total as f64
}

#[test]
fn figure2_contrast_holds_across_seeds() {
    // Statistically stable at Small scale; Tiny grids are too few blocks
    // for tight CDF comparisons.
    for seed in [1u64, 99] {
        let miranda = Application::Miranda.generate_limited(Scale::Small, seed, 1);
        let hurricane = Application::Hurricane.generate(Scale::Small, seed);
        let m = cdf_at(&miranda.fields[0].data, 8, 0.01);
        let w = cdf_at(&hurricane.field("W").unwrap().data, 8, 0.01);
        assert!(
            m > w + 0.1,
            "seed {seed}: Miranda {m:.2} must clearly dominate Hurricane W {w:.2}"
        );
        assert!(m > 0.55, "seed {seed}: Miranda smoothness {m:.2}");
    }
}

#[test]
fn cesm_has_extreme_and_ordinary_fields() {
    // Table 3's CESM row spans min CR ~4 to max CR ~124: the field mix
    // must contain both plateau-dominated and busy fields.
    let ds = Application::CesmAtm.generate_limited(Scale::Tiny, 7, 20);
    let mut cdfs: Vec<(String, f64)> = ds
        .fields
        .iter()
        .map(|f| (f.name.clone(), cdf_at(&f.data, 128, 0.001)))
        .collect();
    cdfs.sort_by(|a, b| a.1.total_cmp(&b.1));
    assert!(
        cdfs.last().unwrap().1 > 0.35,
        "some field is mostly-constant: {cdfs:?}"
    );
    assert!(
        cdfs.first().unwrap().1 < 0.3,
        "some field is busy: {cdfs:?}"
    );
}

#[test]
fn dynamic_ranges_are_physical() {
    let hurricane = Application::Hurricane.generate(Scale::Tiny, 5);
    // Mixing ratios are tiny and non-negative; temperature spans ~100 K.
    let qs = hurricane.field("QSNOW").unwrap();
    assert!(qs.data.iter().all(|&v| (0.0..0.1).contains(&v)));
    let tc = hurricane.field("TC").unwrap();
    let range = tc.value_range();
    assert!((50.0..200.0).contains(&range), "TC range {range}");

    let nyx = Application::Nyx.generate_limited(Scale::Tiny, 5, 6);
    let v = nyx.field("velocity-z").unwrap().value_range();
    assert!(v > 1e7, "cosmological velocities in cm/s: {v}");
}

#[test]
fn scales_change_size_not_character() {
    let tiny = Application::ScaleLetkf.generate_limited(Scale::Tiny, 3, 4);
    let small = Application::ScaleLetkf.generate_limited(Scale::Small, 3, 4);
    let ft = tiny.field("T").unwrap();
    let fs = small.field("T").unwrap();
    assert!(fs.len() >= 4 * ft.len(), "small is several times tiny");
    // Comparable smoothness at both scales (scale-invariant generators).
    let ct = cdf_at(&ft.data, 8, 0.01);
    let cs = cdf_at(&fs.data, 8, 0.01);
    assert!((ct - cs).abs() < 0.35, "tiny {ct:.2} vs small {cs:.2}");
}

#[test]
fn all_apps_have_finite_reasonable_fields_with_max_fields_cap() {
    for app in Application::ALL {
        let ds = app.generate_limited(Scale::Tiny, 11, 3);
        assert!(ds.fields.len() <= 3);
        for f in &ds.fields {
            assert!(
                f.data.iter().all(|v| v.is_finite()),
                "{}/{}",
                ds.name,
                f.name
            );
            assert!(
                f.value_range() > 0.0,
                "{}/{} is degenerate",
                ds.name,
                f.name
            );
        }
    }
}
