//! CLI stream-hygiene regression tests: stdout must stay byte-clean for
//! pipelines. The live `--progress` line, `--stats` tables, and the
//! profiler's status notes all belong on stderr; stdout carries exactly
//! the one summary line (or the one JSON line under `--stats --json`).

use std::path::Path;
use std::process::Command;

fn szx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_szx"))
}

/// A small raw f32 field with enough structure to cross several frames.
fn write_field(path: &Path, n: usize) {
    let mut bytes = Vec::with_capacity(n * 4);
    for i in 0..n {
        let v = (i as f32 * 0.01).sin() * 100.0;
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn stream_progress_keeps_stdout_byte_clean() {
    let dir = std::env::temp_dir().join(format!("szx-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.f32");
    let output = dir.join("out.szxs");
    write_field(&input, 64 * 1024);

    let out = szx()
        .args([
            "stream",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--abs",
            "1e-3",
            "--frame",
            "4096",
            "--progress",
        ])
        .output()
        .expect("run szx stream");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    // stdout is exactly the one summary line: no carriage returns, no
    // partial progress frames, valid UTF-8, one trailing newline.
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    assert!(
        !stdout.contains('\r'),
        "progress line leaked into stdout: {stdout:?}"
    );
    assert!(
        !stdout.contains("GB/s"),
        "progress rendering leaked into stdout: {stdout:?}"
    );
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "exactly one summary line: {stdout:?}");
    assert!(
        lines[0].contains("frames") && lines[0].contains("CR"),
        "summary line shape: {stdout:?}"
    );

    // The progress narration itself went to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("GB/s"),
        "expected live progress on stderr: {stderr:?}"
    );
    assert!(
        !stderr.contains("inf") && !stderr.contains("NaN"),
        "progress math must stay finite: {stderr:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_flags_write_folded_and_svg_off_stdout() {
    let dir = std::env::temp_dir().join(format!("szx-cli-prof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.f32");
    write_field(&input, 256 * 1024);
    let output = dir.join("out.szx");
    let folded = dir.join("p.folded");
    let svg = dir.join("p.svg");

    let out = szx()
        .env("SZX_PROFILE_HZ", "8000")
        .args([
            "compress",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--abs",
            "1e-3",
            "--profile",
            folded.to_str().unwrap(),
            "--profile-svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .expect("run szx compress --profile");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    // Profiler narration stays on stderr; stdout is the summary only.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 1, "{stdout:?}");
    assert!(!stdout.contains("profile:"), "{stdout:?}");

    // Both artifacts exist; the folded file parses in the collapsed-stack
    // format and the SVG is well-formed enough to end with </svg>.
    let folded_text = std::fs::read_to_string(&folded).unwrap();
    for line in folded_text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("frame list + count");
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        assert!(!stack.is_empty());
        assert!(
            !stack.contains("??"),
            "unresolved frame id in {line:?} — zone-slot protocol bug"
        );
    }
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg "));
    assert!(svg_text.trim_end().ends_with("</svg>"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_svg_without_profile_is_an_error() {
    let out = szx()
        .args([
            "compress",
            "a",
            "b",
            "--abs",
            "1e-3",
            "--profile-svg",
            "x.svg",
        ])
        .output()
        .expect("run szx");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--profile-svg requires"), "{stderr:?}");
}
