//! `szx` — command-line compressor/decompressor/assessor, mirroring the
//! upstream SZx executable's workflow on raw little-endian f32/f64 files.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use szx_core::{CommitStrategy, ErrorBound, SzxConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("assess") => cmd_assess(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("archive") => cmd_archive(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("extract") => cmd_extract(&args[1..]),
        _ => {
            eprint!("{}", USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
szx — ultrafast error-bounded lossy compression (SZx, HPDC '22)

USAGE:
  szx compress   <in.f32> <out.szx> --abs <e> | --rel <r>
                 [--f64] [--block <n>] [--parallel] [--strategy a|b|c]
                 [--kernel auto|scalar|kernel|simd] [--stats [--json]]
                 [--trace <out.trace.json>] [--metrics <out.prom>]
                 [--events <out.jsonl>] [--manifest <run.json>]
                 [--profile <out.folded> [--profile-svg <out.svg>]]
  szx decompress <in.szx> <out.f32> [--parallel]
                 [--kernel auto|scalar|kernel|simd] [--stats [--json]]
                 [--trace <out.trace.json>] [--metrics <out.prom>]
                 [--events <out.jsonl>] [--manifest <run.json>]
                 [--profile <out.folded> [--profile-svg <out.svg>]]
  szx stream     <in.f32> <out.szxs> --abs <e> | --rel <r>
                 [--f64] [--frame <elems>] [--progress] [--stats [--json]]
                 [--metrics <out.prom>] [--events <out.jsonl>]
                 [--manifest <run.json>]
                 [--profile <out.folded> [--profile-svg <out.svg>]]
  szx assess     <orig.f32|orig.f64> <in.szx> [--stats [--json]]
                 [--profile <out.folded> [--profile-svg <out.svg>]]
  szx info       <in.szx> [--stats]
  szx gen        <cesm|hurricane|miranda|nyx|qmcpack|scale> <out-dir>
                 [--scale tiny|small|medium|large|full]
  szx archive    <out.szxa> <field1.f32> [field2.f32 ...] --abs <e> | --rel <r>
  szx list       <in.szxa>
  szx extract    <in.szxa> <field-name> <out.f32>

  --stats collects per-stage wall times, block classification counters, and
  the required-length histogram (szx-telemetry); the report goes to stderr
  as a table, or to stdout as one JSON line with --json. Setting
  SZX_TELEMETRY=1 enables collection without the flag.

  --trace records a per-thread event timeline (stage zones, one lane per
  rayon worker) and writes Chrome trace_event JSON loadable in
  about:tracing or https://ui.perfetto.dev. SZX_TRACE=1 enables recording
  without the flag (the CLI still needs --trace to know where to write).

  assess reads the original as raw little-endian f32 or f64, matching the
  element type recorded in the compressed stream's header.

  --metrics writes the final registry snapshot as a Prometheus text
  exposition (format 0.0.4); --events streams per-frame JSON-lines events;
  --manifest writes a versioned run manifest (config, dataset digest,
  metrics, quality) the bench observatory can ingest. Any of the three
  implies telemetry collection and starts the resource accountant (peak
  RSS, CPU time, per-phase attribution via /proc/self).

  stream compresses the input one frame at a time through the streaming
  container (SZXS); --progress renders a live line with EWMA GB/s, the
  running ratio, and an ETA (on stderr, so piped stdout stays clean).

  --profile runs the zone-stack sampling profiler (~997 Hz; SZX_PROFILE_HZ
  overrides) across the command and writes collapsed stacks
  (inferno/speedscope format); --profile-svg additionally renders an
  in-tree SVG flamegraph. Self/total time per zone also lands in the
  registry as profile.* entries, riding --stats/--metrics/--manifest.
";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn read_f32s(path: &Path) -> Result<Vec<f32>, String> {
    szx_data::io::read_f32_raw(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Honor `--stats` (and the `SZX_TELEMETRY` env var, which
/// `szx_telemetry::enabled` reads on its own). Returns whether a report
/// should be emitted at the end of the command.
fn stats_requested(args: &[String]) -> bool {
    if has_flag(args, "--stats") {
        szx_telemetry::set_enabled(true);
    }
    szx_telemetry::enabled()
}

/// Emit the telemetry report: a human table on stderr, or — with `--json` —
/// exactly one JSON object line on stdout (JSON-lines framing, so pipelines
/// can append and `jq` can parse).
fn emit_stats(json: bool, extra: Vec<(&str, szx_telemetry::Value)>) {
    let mut report = szx_telemetry::global().snapshot();
    for (k, v) in extra {
        report.push_extra(k, v);
    }
    if json {
        println!("{}", szx_telemetry::render_jsonl(&report));
    } else {
        eprint!("{}", szx_telemetry::render_table(&report));
    }
    // Trace-buffer overflow is otherwise invisible in --stats-only runs.
    if let Some(dropped) = report.counter("trace.dropped_events") {
        if dropped > 0 {
            eprintln!(
                "warning: {dropped} trace events dropped — timeline is incomplete \
                 (raise SZX_TRACE_CAPACITY)"
            );
        }
    }
    // Sampler health: a high torn-read rate means very short zones kept
    // beating the seqlock and the profile under-represents them.
    if let (Some(samples), Some(torn)) = (
        report.counter("profile.samples_total"),
        report.counter("profile.torn_retries"),
    ) {
        let attempts = samples + torn;
        if torn > 0 && attempts > 0 && torn as f64 / attempts as f64 > 0.01 {
            eprintln!(
                "warning: {torn} of {attempts} profile stack reads were torn (>1%) — \
                 lower SZX_PROFILE_HZ or expect short zones to be under-sampled"
            );
        }
    }
}

/// A running `--profile` session: sampler started before the timed work,
/// output paths remembered for [`profile_finish`].
struct ProfileRun {
    folded: PathBuf,
    svg: Option<PathBuf>,
    profiler: szx_profile::Profiler,
}

/// Honor `--profile <out.folded>` (and `--profile-svg <out.svg>`): starts
/// the sampler thread and enables zone-stack publication so every thread —
/// including rayon workers, which self-register on first zone entry — is
/// sampled for the rest of the command.
fn profile_begin(args: &[String]) -> Result<Option<ProfileRun>, String> {
    let Some(folded) = flag_value(args, "--profile").map(PathBuf::from) else {
        if has_flag(args, "--profile-svg") {
            return Err("--profile-svg requires --profile <out.folded>".into());
        }
        return Ok(None);
    };
    let svg = flag_value(args, "--profile-svg").map(PathBuf::from);
    let profiler = szx_profile::Profiler::start(szx_profile::default_hz());
    Ok(Some(ProfileRun {
        folded,
        svg,
        profiler,
    }))
}

/// Stop the sampler, write the folded stacks (and the SVG flamegraph when
/// asked), and publish `profile.*` registry entries. Must run before
/// [`Obs::finish`] / [`emit_stats`] so the metrics snapshot those take
/// includes the profile.
fn profile_finish(run: Option<ProfileRun>) -> Result<(), String> {
    let Some(run) = run else { return Ok(()) };
    let hz = run.profiler.hz();
    let profile = run.profiler.stop();
    profile.publish();
    std::fs::write(&run.folded, profile.folded())
        .map_err(|e| format!("{}: {e}", run.folded.display()))?;
    eprintln!(
        "profile: {} samples over {} stacks at {} Hz -> {}",
        profile.samples,
        profile.stacks.len(),
        hz,
        run.folded.display()
    );
    if let Some(svg) = &run.svg {
        std::fs::write(svg, szx_profile::render_flamegraph_svg(&profile))
            .map_err(|e| format!("{}: {e}", svg.display()))?;
        eprintln!("flamegraph: {}", svg.display());
    }
    Ok(())
}

/// Observability outputs requested on the command line (tentpole flags).
/// `begin` turns collection on and starts the resource accountant when any
/// export is requested; `finish` stops the accountant, writes the
/// Prometheus exposition and the manifest, and closes the event sink.
struct Obs {
    metrics: Option<PathBuf>,
    events: Option<PathBuf>,
    manifest: Option<PathBuf>,
    accountant: Option<szx_telemetry::ResourceAccountant>,
}

fn obs_begin(args: &[String]) -> Result<Obs, String> {
    let metrics = flag_value(args, "--metrics").map(PathBuf::from);
    let events = flag_value(args, "--events").map(PathBuf::from);
    let manifest = flag_value(args, "--manifest").map(PathBuf::from);
    let any = metrics.is_some() || events.is_some() || manifest.is_some();
    if any {
        szx_telemetry::set_enabled(true);
    }
    if let Some(path) = &events {
        let f = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        szx_telemetry::install_event_sink(Box::new(std::io::BufWriter::new(f)));
        szx_telemetry::emit_event(
            "run.start",
            &[("argv", szx_telemetry::Value::Str(args.join(" ")))],
        );
    }
    let accountant =
        any.then(|| szx_telemetry::ResourceAccountant::start(std::time::Duration::from_millis(50)));
    Ok(Obs {
        metrics,
        events,
        manifest,
        accountant,
    })
}

impl Obs {
    fn any(&self) -> bool {
        self.metrics.is_some() || self.events.is_some() || self.manifest.is_some()
    }

    /// Stop sampling, flush every requested artifact. `manifest` carries the
    /// command-specific sections (config, dataset, quality); the final
    /// metrics snapshot is attached here so it includes the accountant's
    /// last (exact-peak) sample.
    fn finish(mut self, manifest: Option<szx_telemetry::Manifest>) -> Result<(), String> {
        if let Some(acc) = self.accountant.take() {
            acc.stop();
        }
        if self.events.is_some() {
            if szx_telemetry::event_sink_installed() {
                szx_telemetry::emit_event("run.complete", &[]);
            }
            drop(szx_telemetry::take_event_sink()); // flush + close
        }
        if !self.any() {
            return Ok(());
        }
        let snapshot = szx_telemetry::global().snapshot();
        if let Some(path) = &self.metrics {
            std::fs::write(path, szx_telemetry::render_prometheus(&snapshot))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("metrics: {}", path.display());
        }
        if let Some(path) = &self.manifest {
            let mut m = manifest.ok_or("internal: manifest requested but not built")?;
            m.set_metrics(&snapshot);
            let mut text = m.render();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("manifest: {}", path.display());
        }
        Ok(())
    }
}

/// Quality section of a compress-style manifest, from measured distortion.
/// Measuring it costs one extra decompression — documented behavior of
/// `--manifest` on the compress/stream paths.
fn quality_entries(
    d: &szx_metrics::DistortionStats,
    raw_bytes: usize,
    stream_bytes: usize,
) -> Vec<(&'static str, szx_telemetry::Value)> {
    use szx_telemetry::Value;
    vec![
        (
            "ratio",
            Value::F64(raw_bytes as f64 / stream_bytes.max(1) as f64),
        ),
        ("psnr_db", Value::F64(d.psnr)),
        ("max_abs_err", Value::F64(d.max_abs_error)),
        ("nrmse", Value::F64(d.nrmse)),
    ]
}

/// `\"label\": value` pairs summarizing one timed codec pass.
fn pass_extras(
    mode: &str,
    raw_bytes: usize,
    stream_bytes: usize,
    elapsed: std::time::Duration,
) -> Vec<(&'static str, szx_telemetry::Value)> {
    use szx_telemetry::Value;
    let secs = elapsed.as_secs_f64();
    vec![
        ("mode", Value::Str(mode.to_string())),
        ("raw_bytes", Value::U64(raw_bytes as u64)),
        ("stream_bytes", Value::U64(stream_bytes as u64)),
        (
            "compression_ratio",
            Value::F64(raw_bytes as f64 / stream_bytes as f64),
        ),
        ("elapsed_ms", Value::F64(secs * 1e3)),
        (
            "throughput_gbps",
            Value::F64(raw_bytes as f64 / 1e9 / secs.max(1e-12)),
        ),
    ]
}

/// Honor `--trace <path>` (and the `SZX_TRACE` env var): returns where the
/// Chrome trace should be written, enabling event recording as a side
/// effect so the whole command lands in the capture.
fn trace_requested(args: &[String]) -> Option<PathBuf> {
    let path = flag_value(args, "--trace").map(PathBuf::from);
    if path.is_some() {
        szx_telemetry::set_trace_enabled(true);
    }
    path
}

/// Drain the flight recorder and write Chrome `trace_event` JSON.
fn write_trace(path: &Path) -> Result<(), String> {
    let capture = szx_telemetry::take_trace();
    let events = capture.events.len();
    let json = szx_telemetry::render_chrome_trace(&capture);
    std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!(
        "trace: {} events -> {} (open in about:tracing or ui.perfetto.dev){}",
        events,
        path.display(),
        if capture.dropped > 0 {
            format!(
                "; {} events dropped (raise SZX_TRACE_CAPACITY)",
                capture.dropped
            )
        } else {
            String::new()
        }
    );
    Ok(())
}

/// First two non-flag tokens, skipping the values of value-taking flags.
fn io_pair(args: &[String]) -> Result<(PathBuf, PathBuf), String> {
    let mut cleaned = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            if matches!(
                a.as_str(),
                "--abs"
                    | "--rel"
                    | "--block"
                    | "--strategy"
                    | "--scale"
                    | "--kernel"
                    | "--trace"
                    | "--metrics"
                    | "--events"
                    | "--manifest"
                    | "--frame"
                    | "--profile"
                    | "--profile-svg"
            ) {
                skip = true;
            }
            continue;
        }
        cleaned.push(a.clone());
    }
    if cleaned.len() < 2 {
        return Err("need input and output paths".into());
    }
    Ok((PathBuf::from(&cleaned[0]), PathBuf::from(&cleaned[1])))
}

/// Hot-loop selection shared by compress and decompress: `scalar` is the
/// reference oracle, `kernel` the branch-free portable path, `simd` the
/// explicit AVX2/NEON path (falls back to `kernel` when the CPU lacks the
/// ISA or `SZX_DISABLE_SIMD` is set); outputs are identical in all cases.
fn parse_kernel(args: &[String]) -> Result<szx_core::KernelSelect, String> {
    match flag_value(args, "--kernel").as_deref() {
        Some("auto") | None => Ok(szx_core::KernelSelect::Auto),
        Some("scalar") => Ok(szx_core::KernelSelect::Scalar),
        Some("kernel") => Ok(szx_core::KernelSelect::Kernel),
        Some("simd") => Ok(szx_core::KernelSelect::Simd),
        Some(other) => Err(format!("unknown kernel selection {other}")),
    }
}

/// Full `SzxConfig` from the compression flags shared by `compress` and
/// `stream` (`--abs`/`--rel`, `--block`, `--strategy`, `--kernel`).
fn parse_config(args: &[String]) -> Result<SzxConfig, String> {
    let bound = if let Some(e) = flag_value(args, "--abs") {
        ErrorBound::Absolute(e.parse().map_err(|_| "bad --abs value".to_string())?)
    } else if let Some(r) = flag_value(args, "--rel") {
        ErrorBound::Relative(r.parse().map_err(|_| "bad --rel value".to_string())?)
    } else {
        return Err("need --abs <e> or --rel <r>".into());
    };
    let block: usize = flag_value(args, "--block")
        .map(|b| b.parse().map_err(|_| "bad --block value".to_string()))
        .transpose()?
        .unwrap_or(szx_core::DEFAULT_BLOCK_SIZE);
    let strategy = match flag_value(args, "--strategy").as_deref() {
        Some("a") => CommitStrategy::BitPack,
        Some("b") => CommitStrategy::BytePlusResidual,
        Some("c") | None => CommitStrategy::ByteAligned,
        Some(other) => return Err(format!("unknown strategy {other}")),
    };
    Ok(SzxConfig {
        block_size: block,
        error_bound: bound,
        strategy,
        kernel: parse_kernel(args)?,
    })
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let (input, output) = io_pair(args)?;
    let cfg = parse_config(args)?;
    let stats = stats_requested(args);
    let trace = trace_requested(args);
    let obs = obs_begin(args)?;
    let prof = profile_begin(args)?;
    let json = has_flag(args, "--json");
    let parallel = has_flag(args, "--parallel");
    let want_quality = obs.manifest.is_some();

    let bytes = std::fs::read(&input).map_err(|e| format!("{}: {e}", input.display()))?;
    let start = std::time::Instant::now();
    let (compressed, elapsed, quality) = if has_flag(args, "--f64") {
        if bytes.len() % 8 != 0 {
            return Err("input length is not a multiple of 8".into());
        }
        let data: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let c = run_compress(&data, &cfg, parallel)?;
        let elapsed = start.elapsed();
        let q = if want_quality {
            Some(szx_metrics::distortion_f64(
                &data,
                &decompress_quiet::<f64>(&c)?,
            ))
        } else {
            None
        };
        (c, elapsed, q)
    } else {
        if bytes.len() % 4 != 0 {
            return Err("input length is not a multiple of 4 (use --f64 for doubles?)".into());
        }
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let c = run_compress(&data, &cfg, parallel)?;
        let elapsed = start.elapsed();
        let q = if want_quality {
            Some(szx_metrics::distortion(
                &data,
                &decompress_quiet::<f32>(&c)?,
            ))
        } else {
            None
        };
        (c, elapsed, q)
    };
    let cr = bytes.len() as f64 / compressed.len() as f64;
    std::fs::write(&output, &compressed).map_err(|e| format!("{}: {e}", output.display()))?;
    let summary = format!(
        "{} -> {} ({} -> {} bytes, CR {:.2})",
        input.display(),
        output.display(),
        bytes.len(),
        compressed.len(),
        cr
    );
    // With --json, stdout carries exactly the JSON report line.
    if stats && json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    let mode = if parallel { "parallel" } else { "serial" };
    let manifest = obs.manifest.is_some().then(|| {
        let dtype = if has_flag(args, "--f64") {
            "f64"
        } else {
            "f32"
        };
        let mut m = run_manifest("compress", &cfg, mode, dtype, &input, &bytes);
        let mut q = quality_entries(
            quality.as_ref().expect("quality measured when --manifest"),
            bytes.len(),
            compressed.len(),
        );
        q.push((
            "compress_gbps",
            szx_telemetry::Value::F64(bytes.len() as f64 / 1e9 / elapsed.as_secs_f64().max(1e-12)),
        ));
        m.set_quality(&q);
        m
    });
    profile_finish(prof)?;
    obs.finish(manifest)?;
    if stats {
        emit_stats(
            json,
            pass_extras(mode, bytes.len(), compressed.len(), elapsed),
        );
    }
    if let Some(path) = trace {
        write_trace(&path)?;
    }
    Ok(())
}

/// Decompress without polluting the live registry — used for the quality
/// measurement a `--manifest` compress run performs on its own output.
fn decompress_quiet<F: szx_core::SzxFloat>(stream: &[u8]) -> Result<Vec<F>, String> {
    let was = szx_telemetry::enabled();
    szx_telemetry::set_enabled(false);
    let r = szx_core::decompress(stream).map_err(|e| e.to_string());
    szx_telemetry::set_enabled(was);
    r
}

/// Shared manifest skeleton: command, full config, parallelism, dataset
/// identity (path, bytes, FNV-1a digest of the raw input file).
fn run_manifest(
    command: &str,
    cfg: &SzxConfig,
    mode: &str,
    dtype: &str,
    input: &Path,
    input_bytes: &[u8],
) -> szx_telemetry::Manifest {
    use szx_telemetry::Value;
    let (bound_mode, bound) = match cfg.error_bound {
        ErrorBound::Absolute(e) => ("abs", e),
        ErrorBound::Relative(r) => ("rel", r),
    };
    let threads = if mode == "parallel" {
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1)
    } else {
        1
    };
    let mut m = szx_telemetry::Manifest::new(command);
    m.set_config(&[
        ("bound_mode", Value::Str(bound_mode.into())),
        ("bound", Value::F64(bound)),
        ("block_size", Value::U64(cfg.block_size as u64)),
        ("strategy", Value::Str(format!("{:?}", cfg.strategy))),
        ("kernel", Value::Str(format!("{:?}", cfg.kernel))),
        ("mode", Value::Str(mode.into())),
        ("threads", Value::U64(threads)),
        ("dtype", Value::Str(dtype.into())),
    ]);
    m.set_dataset(
        &input.to_string_lossy(),
        input_bytes.len() as u64,
        szx_telemetry::fnv1a64(input_bytes),
    );
    m
}

fn run_compress<F: szx_core::SzxFloat>(
    data: &[F],
    cfg: &SzxConfig,
    parallel: bool,
) -> Result<Vec<u8>, String> {
    let r = if parallel {
        szx_core::parallel::compress(data, cfg)
    } else {
        szx_core::compress(data, cfg)
    };
    r.map_err(|e| e.to_string())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let (input, output) = io_pair(args)?;
    let bytes = std::fs::read(&input).map_err(|e| format!("{}: {e}", input.display()))?;
    let header = szx_core::inspect(&bytes).map_err(|e| e.to_string())?;
    let parallel = has_flag(args, "--parallel");
    let kernel = parse_kernel(args)?;
    let stats = stats_requested(args);
    let trace = trace_requested(args);
    let obs = obs_begin(args)?;
    let prof = profile_begin(args)?;
    let json = has_flag(args, "--json");
    let start = std::time::Instant::now();
    let out: Vec<u8> = if header.dtype == 0 {
        let data: Vec<f32> = if parallel {
            szx_core::parallel::decompress_with(&bytes, kernel)
        } else {
            szx_core::decompress_with(&bytes, kernel)
        }
        .map_err(|e| e.to_string())?;
        data.iter().flat_map(|v| v.to_le_bytes()).collect()
    } else {
        let data: Vec<f64> = if parallel {
            szx_core::parallel::decompress_with(&bytes, kernel)
        } else {
            szx_core::decompress_with(&bytes, kernel)
        }
        .map_err(|e| e.to_string())?;
        data.iter().flat_map(|v| v.to_le_bytes()).collect()
    };
    let elapsed = start.elapsed();
    std::fs::write(&output, &out).map_err(|e| format!("{}: {e}", output.display()))?;
    let summary = format!(
        "{} -> {} ({} values)",
        input.display(),
        output.display(),
        header.n
    );
    if stats && json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    let mode = if parallel { "parallel" } else { "serial" };
    // The kernel and simd decoders cover only the ByteAligned strategy;
    // report the path the blocks actually took (resolve() folds in runtime
    // ISA detection and the SZX_DISABLE_SIMD override).
    let decode_path = if header.strategy == CommitStrategy::ByteAligned {
        kernel.resolve().name()
    } else {
        "scalar"
    };
    let manifest = obs.manifest.is_some().then(|| {
        use szx_telemetry::Value;
        let cfg = SzxConfig {
            block_size: header.block_size,
            error_bound: ErrorBound::Absolute(header.eb),
            strategy: header.strategy,
            kernel,
        };
        let dtype = if header.dtype == 0 { "f32" } else { "f64" };
        let mut m = run_manifest("decompress", &cfg, mode, dtype, &input, &bytes);
        m.set_quality(&[
            (
                "ratio",
                Value::F64(out.len() as f64 / bytes.len().max(1) as f64),
            ),
            (
                "decompress_gbps",
                Value::F64(out.len() as f64 / 1e9 / elapsed.as_secs_f64().max(1e-12)),
            ),
            ("decode_path", Value::Str(decode_path.into())),
        ]);
        m
    });
    profile_finish(prof)?;
    obs.finish(manifest)?;
    if stats {
        let mut extras = pass_extras(mode, out.len(), bytes.len(), elapsed);
        extras.push((
            "decode_path",
            szx_telemetry::Value::Str(decode_path.to_string()),
        ));
        emit_stats(json, extras);
    }
    if let Some(path) = trace {
        write_trace(&path)?;
    }
    Ok(())
}

/// Decode every frame of a streaming container without touching the live
/// registry or the event sink — the quality measurement a `--manifest`
/// stream run performs on its own output.
fn decode_frames_quiet<F: szx_core::SzxFloat>(container: &[u8]) -> Result<Vec<F>, String> {
    let was = szx_telemetry::enabled();
    szx_telemetry::set_enabled(false);
    let r = (|| {
        let reader = szx_core::streaming::FrameReader::new(container).map_err(|e| e.to_string())?;
        let mut all = Vec::with_capacity(reader.num_frames());
        for f in reader.iter::<F>() {
            all.extend(f.map_err(|e| e.to_string())?);
        }
        Ok(all)
    })();
    szx_telemetry::set_enabled(was);
    r
}

/// Chunk `data` into frames and push each through a [`FrameWriter`],
/// narrating a `\r`-refreshed progress line when asked. Returns the
/// finished container plus the writer's cumulative stats.
fn stream_compress<F: szx_core::SzxFloat>(
    data: &[F],
    cfg: &SzxConfig,
    frame_elems: usize,
    progress: bool,
    total_raw_bytes: u64,
) -> Result<(Vec<u8>, szx_core::streaming::FrameStats), String> {
    let mut w = szx_core::streaming::FrameWriter::new(*cfg).map_err(|e| e.to_string())?;
    let mut meter = szx_telemetry::ProgressMeter::new(Some(total_raw_bytes));
    let mut prev_compressed = 0u64;
    for chunk in data.chunks(frame_elems) {
        w.push(chunk).map_err(|e| e.to_string())?;
        let s = *w.stats();
        let snap = meter.on_frame(
            (chunk.len() * F::BYTES) as u64,
            s.compressed_bytes - prev_compressed,
        );
        prev_compressed = s.compressed_bytes;
        if progress {
            eprint!("\r{}", snap.render_line());
        }
    }
    if progress {
        eprintln!();
    }
    let stats = *w.stats();
    Ok((w.into_bytes(), stats))
}

/// `szx stream <in> <out>` — compress a raw float file frame by frame into
/// the self-describing streaming container, the path an instrument
/// pipeline (LCLS-II in the paper's §1) would take. Each frame is an
/// independent SZx stream; `--progress` narrates EWMA throughput, running
/// ratio, and ETA as frames land.
fn cmd_stream(args: &[String]) -> Result<(), String> {
    let (input, output) = io_pair(args)?;
    let cfg = parse_config(args)?;
    let frame_elems: usize = flag_value(args, "--frame")
        .map(|v| v.parse().map_err(|_| "bad --frame value".to_string()))
        .transpose()?
        .unwrap_or(1 << 20);
    if frame_elems == 0 {
        return Err("--frame must be positive".into());
    }
    let progress = has_flag(args, "--progress");
    let stats_on = stats_requested(args);
    let trace = trace_requested(args);
    let obs = obs_begin(args)?;
    let prof = profile_begin(args)?;
    let json = has_flag(args, "--json");
    let want_quality = obs.manifest.is_some();

    let bytes = std::fs::read(&input).map_err(|e| format!("{}: {e}", input.display()))?;
    let start = std::time::Instant::now();
    let (container, fstats, quality) = if has_flag(args, "--f64") {
        if bytes.len() % 8 != 0 {
            return Err("input length is not a multiple of 8".into());
        }
        let data: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let (c, s) = stream_compress(&data, &cfg, frame_elems, progress, bytes.len() as u64)?;
        let q = if want_quality {
            // Frame events are all written; close the sink so the quality
            // decode below doesn't append frame.decoded noise.
            drop(szx_telemetry::take_event_sink());
            Some(szx_metrics::distortion_f64(
                &data,
                &decode_frames_quiet::<f64>(&c)?,
            ))
        } else {
            None
        };
        (c, s, q)
    } else {
        if bytes.len() % 4 != 0 {
            return Err("input length is not a multiple of 4 (use --f64 for doubles?)".into());
        }
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let (c, s) = stream_compress(&data, &cfg, frame_elems, progress, bytes.len() as u64)?;
        let q = if want_quality {
            drop(szx_telemetry::take_event_sink());
            Some(szx_metrics::distortion(
                &data,
                &decode_frames_quiet::<f32>(&c)?,
            ))
        } else {
            None
        };
        (c, s, q)
    };
    let elapsed = start.elapsed();
    std::fs::write(&output, &container).map_err(|e| format!("{}: {e}", output.display()))?;
    let summary = format!(
        "{} -> {} ({} frames, {} -> {} bytes, CR {:.2})",
        input.display(),
        output.display(),
        fstats.frames,
        bytes.len(),
        container.len(),
        fstats.ratio()
    );
    if stats_on && json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    let manifest = obs.manifest.is_some().then(|| {
        use szx_telemetry::json::Json;
        use szx_telemetry::Value;
        let dtype = if has_flag(args, "--f64") {
            "f64"
        } else {
            "f32"
        };
        let mut m = run_manifest("stream", &cfg, "serial", dtype, &input, &bytes);
        let mut q = quality_entries(
            quality.as_ref().expect("quality measured when --manifest"),
            bytes.len(),
            fstats.compressed_bytes as usize,
        );
        q.push((
            "compress_gbps",
            Value::F64(bytes.len() as f64 / 1e9 / elapsed.as_secs_f64().max(1e-12)),
        ));
        m.set_quality(&q);
        m.set(
            "stream",
            Json::Obj(vec![
                ("frames".to_string(), Json::Num(fstats.frames as f64)),
                ("frame_elems".to_string(), Json::Num(frame_elems as f64)),
                (
                    "mean_frame_ns".to_string(),
                    Json::Num(fstats.mean_frame_ns()),
                ),
            ]),
        );
        m
    });
    profile_finish(prof)?;
    obs.finish(manifest)?;
    if stats_on {
        use szx_telemetry::Value;
        let mut extras = pass_extras("stream", bytes.len(), container.len(), elapsed);
        extras.push(("frames", Value::U64(fstats.frames)));
        extras.push(("frame_elems", Value::U64(frame_elems as u64)));
        extras.push(("min_frame_ns", Value::U64(fstats.min_frame_ns)));
        extras.push(("max_frame_ns", Value::U64(fstats.max_frame_ns)));
        emit_stats(json, extras);
    }
    if let Some(path) = trace {
        write_trace(&path)?;
    }
    Ok(())
}

fn cmd_assess(args: &[String]) -> Result<(), String> {
    let (orig_path, comp_path) = io_pair(args)?;
    let bytes = std::fs::read(&comp_path).map_err(|e| format!("{}: {e}", comp_path.display()))?;
    let header = szx_core::inspect(&bytes).map_err(|e| e.to_string())?;
    let stats_on = stats_requested(args);
    let prof = profile_begin(args)?;
    // The stream header knows its element type; read the original in the
    // matching raw layout and share one metric path for both widths.
    let start = std::time::Instant::now();
    let (stats, raw_bytes) = if header.dtype == 0 {
        let orig = read_f32s(&orig_path)?;
        let recon: Vec<f32> = szx_core::decompress(&bytes).map_err(|e| e.to_string())?;
        if recon.len() != orig.len() {
            return Err(format!(
                "length mismatch: {} vs {}",
                orig.len(),
                recon.len()
            ));
        }
        let _z = szx_telemetry::span("assess.distortion");
        (szx_metrics::distortion(&orig, &recon), orig.len() * 4)
    } else {
        let orig = szx_data::io::read_f64_raw(&orig_path)
            .map_err(|e| format!("{}: {e}", orig_path.display()))?;
        let recon: Vec<f64> = szx_core::decompress(&bytes).map_err(|e| e.to_string())?;
        if recon.len() != orig.len() {
            return Err(format!(
                "length mismatch: {} vs {}",
                orig.len(),
                recon.len()
            ));
        }
        let _z = szx_telemetry::span("assess.distortion");
        (szx_metrics::distortion_f64(&orig, &recon), orig.len() * 8)
    };
    let elapsed = start.elapsed();
    profile_finish(prof)?;
    println!(
        "element type: {}",
        if header.dtype == 0 { "f32" } else { "f64" }
    );
    println!("elements:     {}", stats.n);
    println!("error bound:  {:.6e}", header.eb);
    println!("max |error|:  {:.6e}", stats.max_abs_error);
    println!("PSNR:         {:.2} dB", stats.psnr);
    println!("NRMSE:        {:.6e}", stats.nrmse);
    println!("CR:           {:.2}", raw_bytes as f64 / bytes.len() as f64);
    println!(
        "bound ok:     {}",
        if stats.max_abs_error <= header.eb {
            "yes"
        } else {
            "NO — BUG"
        }
    );
    if stats_on {
        emit_stats(
            has_flag(args, "--json"),
            pass_extras("serial", raw_bytes, bytes.len(), elapsed),
        );
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("need a file")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let h = szx_core::inspect(&bytes).map_err(|e| e.to_string())?;
    println!(
        "element type:     {}",
        if h.dtype == 0 { "f32" } else { "f64" }
    );
    println!("elements:         {}", h.n);
    println!("block size:       {}", h.block_size);
    println!("blocks:           {}", h.num_blocks());
    println!(
        "non-constant:     {} ({:.1}%)",
        h.n_nonconstant,
        100.0 * h.n_nonconstant as f64 / h.num_blocks() as f64
    );
    println!("abs error bound:  {:.6e}", h.eb);
    println!("strategy:         {:?}", h.strategy);
    println!("stream bytes:     {}", bytes.len());
    if has_flag(args, "--stats") {
        let mut zs: Vec<u16> = if h.dtype == 0 {
            szx_core::decode::ParsedStream::parse::<f32>(&bytes)
        } else {
            szx_core::decode::ParsedStream::parse::<f64>(&bytes)
        }
        .map_err(|e| e.to_string())?
        .zsizes()
        .to_vec();
        if zs.is_empty() {
            println!("block zsize:      n/a (all blocks constant)");
        } else {
            zs.sort_unstable();
            println!(
                "block zsize:      min {}  median {}  max {}  (over {} non-constant blocks)",
                zs[0],
                zs[zs.len() / 2],
                zs[zs.len() - 1],
                zs.len()
            );
        }
    }
    Ok(())
}

fn cmd_archive(args: &[String]) -> Result<(), String> {
    let bound = if let Some(e) = flag_value(args, "--abs") {
        ErrorBound::Absolute(e.parse().map_err(|_| "bad --abs value".to_string())?)
    } else if let Some(r) = flag_value(args, "--rel") {
        ErrorBound::Relative(r.parse().map_err(|_| "bad --rel value".to_string())?)
    } else {
        return Err("need --abs <e> or --rel <r>".into());
    };
    let cfg = SzxConfig {
        error_bound: bound,
        ..SzxConfig::relative(1e-3)
    };
    let mut positional = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = matches!(a.as_str(), "--abs" | "--rel");
            continue;
        }
        positional.push(PathBuf::from(a));
    }
    if positional.len() < 2 {
        return Err("need an output archive and at least one field file".into());
    }
    let out_path = positional.remove(0);
    let mut w = szx_core::ArchiveWriter::new();
    for path in &positional {
        let data = read_f32s(path)?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("bad field file name {}", path.display()))?;
        w.add(name, &data, &cfg).map_err(|e| e.to_string())?;
        println!("added {name} ({} values)", data.len());
    }
    let bytes = w.finish();
    std::fs::write(&out_path, &bytes).map_err(|e| format!("{}: {e}", out_path.display()))?;
    println!(
        "{} ({} fields, {} bytes)",
        out_path.display(),
        positional.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("need an archive file")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let r = szx_core::ArchiveReader::new(&bytes).map_err(|e| e.to_string())?;
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>8}",
        "field", "elements", "compressed", "eb", "CR"
    );
    for name in r.names() {
        let h = r.header(name).map_err(|e| e.to_string())?;
        let clen = r.stream(name).unwrap().len();
        let elem_bytes = if h.dtype == 0 { 4 } else { 8 };
        println!(
            "{:<20} {:>10} {:>12} {:>12.3e} {:>8.2}",
            name,
            h.n,
            clen,
            h.eb,
            (h.n * elem_bytes) as f64 / clen as f64
        );
    }
    Ok(())
}

fn cmd_extract(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err("need <archive> <field-name> <out.f32>".into());
    }
    let bytes = std::fs::read(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    let r = szx_core::ArchiveReader::new(&bytes).map_err(|e| e.to_string())?;
    let data: Vec<f32> = r.field(&args[1]).map_err(|e| e.to_string())?;
    szx_data::io::write_f32_raw(Path::new(&args[2]), &data).map_err(|e| e.to_string())?;
    println!("{} -> {} ({} values)", args[1], args[2], data.len());
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    use szx_data::{Application, Scale};
    let app = match args.first().map(String::as_str) {
        Some("cesm") => Application::CesmAtm,
        Some("hurricane") => Application::Hurricane,
        Some("miranda") => Application::Miranda,
        Some("nyx") => Application::Nyx,
        Some("qmcpack") => Application::QmcPack,
        Some("scale") => Application::ScaleLetkf,
        other => return Err(format!("unknown application {other:?}")),
    };
    let dir = PathBuf::from(args.get(1).ok_or("need an output directory")?);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let scale = match flag_value(args, "--scale").as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("medium") => Scale::Medium,
        Some("large") => Scale::Large,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };
    let ds = app.generate(scale, 42);
    for f in &ds.fields {
        let path = dir.join(format!("{}.f32", f.name.replace('/', "_")));
        szx_data::io::write_f32_raw(&path, &f.data).map_err(|e| e.to_string())?;
        println!(
            "{}  ({}x{}x{})",
            path.display(),
            f.dims[0],
            f.dims[1],
            f.dims[2]
        );
    }
    Ok(())
}
