//! The `hot-loop-alloc` rule: loop bodies of functions reachable from the
//! kernel/SIMD entry points must not allocate.
//!
//! The paper's throughput claim rests on the block loops being
//! allocation-free: encode and decode reuse the `EncodeScratch` /
//! `DecodeScratch` arenas instead of allocating per block. The
//! `scratch.grows` telemetry test checks this dynamically for the paths a
//! test happens to drive; this rule pins it statically for every loop the
//! kernel entry points can reach. `// ALLOC-OK:` on or above the site is
//! the escape hatch (e.g. a cold error path inside a hot loop).

use super::has_macro;
use crate::callgraph::CallGraph;
use crate::report::{Counts, Finding};
use crate::source::SourceFile;
use std::collections::HashSet;

/// The kernel/SIMD modules: every non-test `fn` defined here is a hot
/// entry point, and everything they reach inherits the discipline.
pub const HOT_ENTRY_FILES: &[&str] = &[
    "crates/szx-core/src/kernels.rs",
    "crates/szx-core/src/dekernels.rs",
    "crates/szx-core/src/simd/mod.rs",
    "crates/szx-core/src/simd/x86.rs",
    "crates/szx-core/src/simd/neon.rs",
];

/// Allocation vectors flagged inside hot loop bodies. Substring patterns
/// are matched against the code channel (strings already blanked).
const CALL_PATTERNS: &[(&str, &str)] = &[
    ("Vec::new(", "`Vec::new`"),
    (".to_vec(", "`.to_vec()`"),
    (".clone(", "`.clone()`"),
    (".collect(", "`.collect()`"),
    (".collect::", "`.collect()`"),
    ("Box::new(", "`Box::new`"),
    ("String::new(", "`String::new`"),
    (".to_string(", "`.to_string()`"),
    (".to_owned(", "`.to_owned()`"),
];

const MACRO_PATTERNS: &[(&str, &str)] = &[("vec!", "`vec![]`"), ("format!", "`format!`")];

/// Scan loop bodies of every function reachable from the kernel entry
/// points for allocation, honoring `// ALLOC-OK:` on or above the site.
pub fn check_hot_loop_allocs(
    files: &[SourceFile],
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            !n.item.is_test && HOT_ENTRY_FILES.contains(&n.rel_path.as_str())
        })
        .collect();
    counts.hot_entries = entries.len();
    let reach = graph.reach(&entries);

    // Nested loops record overlapping ranges; report each line once.
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut suppressed: HashSet<(usize, usize)> = HashSet::new();
    let mut order: Vec<usize> = reach.keys().copied().collect();
    order.sort_by_key(|&i| (reach[&i].len(), graph.nodes[i].item.sym.clone()));

    for ni in order {
        let node = &graph.nodes[ni];
        if super::is_test_context(&node.rel_path) {
            continue;
        }
        let file = &files[node.file];
        let chain: Vec<String> = reach[&ni]
            .iter()
            .map(|s| format!("{} ({}:{})", s.sym, s.rel_path, s.line))
            .collect();
        for &(lo, hi) in &node.item.loops {
            for i in lo..=hi.min(file.lines.len().saturating_sub(1)) {
                if file.in_test[i] {
                    continue;
                }
                let code = &file.lines[i].code;
                let mut hits: Vec<&str> = Vec::new();
                for &(pat, label) in CALL_PATTERNS {
                    if code.contains(pat) && !hits.contains(&label) {
                        hits.push(label);
                    }
                }
                for &(mac, label) in MACRO_PATTERNS {
                    if has_macro(code, mac) && !hits.contains(&label) {
                        hits.push(label);
                    }
                }
                if hits.is_empty() || !seen.insert((node.file, i)) {
                    continue;
                }
                if file.annotated(i, "ALLOC-OK:") {
                    if suppressed.insert((node.file, i)) {
                        counts.alloc_ok += hits.len();
                    }
                    continue;
                }
                for h in hits {
                    findings.push(
                        Finding::in_symbol(
                            "hot-loop-alloc",
                            &file.rel_path,
                            i + 1,
                            &node.item.sym,
                            code.trim(),
                            &format!(
                                "{h} in a loop body reachable from kernel entry points \
                                 (no `// ALLOC-OK:` note) — use the scratch arenas"
                            ),
                        )
                        .with_chain(chain.clone()),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_graph;

    #[test]
    fn allocation_in_kernel_loop_is_flagged() {
        let src = "pub fn encode_nonconstant(d: &[f32]) {\n\
                   for b in d.chunks(128) {\n\
                   let tmp = b.to_vec();\n\
                   }\n\
                   }\n";
        let (f, c) = run_graph(&[("crates/szx-core/src/kernels.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-loop-alloc");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("to_vec"));
        assert_eq!(c.hot_entries, 1);
    }

    #[test]
    fn allocation_outside_loops_is_not_flagged() {
        let src = "pub fn encode_nonconstant(d: &[f32]) {\n\
                   let scratch = d.to_vec();\n\
                   for b in d.chunks(128) {\n\
                   let n = b.len();\n\
                   }\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/kernels.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allocation_in_helper_reached_from_kernel_loop_is_flagged_with_chain() {
        let kernel = "pub fn encode_nonconstant(d: &[f32]) {\n\
                      helper(d);\n\
                      }\n";
        let helper = "pub fn helper(d: &[f32]) {\n\
                      while d.len() > 0 {\n\
                      let s = format!(\"x\");\n\
                      }\n\
                      }\n";
        let (f, _) = run_graph(&[
            ("crates/szx-core/src/kernels.rs", kernel),
            ("crates/szx-core/src/block.rs", helper),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/szx-core/src/block.rs");
        assert_eq!(f[0].chain.len(), 2, "{:?}", f[0].chain);
        assert!(f[0].chain[0].contains("szx_core::kernels::encode_nonconstant"));
    }

    #[test]
    fn alloc_ok_note_suppresses_and_counts() {
        let src = "pub fn decode_nonconstant_block(d: &[u8]) {\n\
                   loop {\n\
                   // ALLOC-OK: cold error path, taken at most once per stream.\n\
                   let msg = format!(\"bad\");\n\
                   break;\n\
                   }\n\
                   }\n";
        let (f, c) = run_graph(&[("crates/szx-core/src/dekernels.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.alloc_ok, 1);
    }

    #[test]
    fn non_kernel_loops_are_exempt() {
        let src = "pub fn cli_main(args: &[String]) {\n\
                   for a in args {\n\
                   let s = a.clone();\n\
                   }\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-cli/src/main.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
