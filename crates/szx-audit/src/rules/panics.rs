//! The `panic-reach` rule: no panic vector transitively reachable from a
//! decode entry point without a `// PANIC-OK:` proof anywhere on the path.
//!
//! This replaces PR-5's `panic-path` file allowlist. Instead of trusting a
//! hand-maintained list of decode-side *files*, the rule starts from the
//! decode entry points — `decompress*`, the `FrameReader`/`RandomAccess`/
//! `ArchiveReader` surfaces, and the header/TOC/stream-index parsers —
//! walks the workspace call graph, and scans every reachable function body
//! (in any file) for `unwrap`/`expect`/panicking macros/unchecked
//! indexing. Each finding reports the full call chain from the entry point
//! so the justification (or fix) can be written where the invariant is
//! actually established.

use super::{has_index_expr, has_macro};
use crate::callgraph::{CallGraph, Node};
use crate::report::{Counts, Finding};
use crate::source::SourceFile;
use std::collections::HashSet;

/// Panicking macros (the `debug_` variants are compiled out of release
/// kernels and deliberately exempt).
const MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Impl types whose methods parse attacker-controllable bytes.
const ENTRY_TYPES: &[&str] = &["FrameReader", "RandomAccess", "ArchiveReader"];

/// Parser types where only the named constructors are entries (other
/// methods are accessors over already-validated state, and are still
/// checked transitively when an entry reaches them).
const PARSER_TYPES: &[&str] = &["Header", "ParsedStream", "StreamIndex", "ArchiveToc"];

/// Is this function a decode entry point — a place where untrusted bytes
/// first enter the library? Scoped to the szx-core crate: the baseline
/// codecs (szx-baselines, szx-gpu-sim) define their own `decompress*`
/// surfaces, but they only ever parse bytes they themselves produced in
/// the bench harness — the untrusted-input contract is szx-core's.
pub fn is_decode_entry(node: &Node) -> bool {
    if node.item.is_test || node.krate != "szx_core" || super::is_test_context(&node.rel_path) {
        return false;
    }
    let name = node.item.name.as_str();
    let impl_type = node.item.impl_type.as_deref().unwrap_or("");
    name.starts_with("decompress")
        || ENTRY_TYPES.contains(&impl_type)
        || (PARSER_TYPES.contains(&impl_type) && matches!(name, "parse" | "build" | "new"))
        || name == "inspect"
}

/// Scan every function reachable from the decode entry points for panic
/// vectors, honoring `// PANIC-OK:` on or directly above the site.
pub fn check_panic_reach(
    files: &[SourceFile],
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| is_decode_entry(&graph.nodes[i]))
        .collect();
    counts.decode_entries = entries.len();
    let reach = graph.reach(&entries);

    // Nested fns sit inside their parent's body range; when both are
    // reachable, report each line once (shortest chain wins via sorted
    // BFS-stable order below).
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut suppressed: HashSet<(usize, usize)> = HashSet::new();
    let mut order: Vec<usize> = reach.keys().copied().collect();
    order.sort_by_key(|&i| (reach[&i].len(), graph.nodes[i].item.sym.clone()));

    for ni in order {
        let node = &graph.nodes[ni];
        if super::is_test_context(&node.rel_path) {
            continue;
        }
        let file = &files[node.file];
        let chain: Vec<String> = reach[&ni]
            .iter()
            .map(|s| format!("{} ({}:{})", s.sym, s.rel_path, s.line))
            .collect();
        let entry_sym = reach[&ni]
            .first()
            .map(|s| s.sym.clone())
            .unwrap_or_default();
        let (lo, hi) = node.item.body;
        for i in lo..=hi.min(file.lines.len().saturating_sub(1)) {
            if file.in_test[i] {
                continue;
            }
            let code = &file.lines[i].code;
            let mut hits: Vec<&str> = Vec::new();
            if code.contains(".unwrap()") {
                hits.push("`.unwrap()`");
            }
            if code.contains(".expect(") {
                hits.push("`.expect(...)`");
            }
            for m in MACROS {
                if has_macro(code, m) {
                    hits.push(m);
                }
            }
            if has_index_expr(code) {
                hits.push("slice index without `.get`");
            }
            if hits.is_empty() || !seen.insert((node.file, i)) {
                continue;
            }
            if file.annotated(i, "PANIC-OK:") {
                if suppressed.insert((node.file, i)) {
                    counts.panic_ok += hits.len();
                }
                continue;
            }
            for h in hits {
                findings.push(
                    Finding::in_symbol(
                        "panic-reach",
                        &file.rel_path,
                        i + 1,
                        &node.item.sym,
                        code.trim(),
                        &format!(
                            "{h} reachable from decode entry `{entry_sym}` \
                             (no `// PANIC-OK:` note)"
                        ),
                    )
                    .with_chain(chain.clone()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_graph;

    #[test]
    fn panic_vector_in_entry_body_is_flagged() {
        let src = "pub fn decompress(b: &[u8]) -> u8 {\n\
                   let x = b.first().unwrap();\n\
                   let y = b[1];\n\
                   panic!(\"no\");\n\
                   }\n";
        let (f, c) = run_graph(&[("crates/szx-core/src/decode.rs", src)]);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["panic-reach"; 3], "{f:?}");
        assert_eq!(c.decode_entries, 1);
    }

    #[test]
    fn panic_in_transitively_called_helper_reports_full_chain() {
        let entry = "pub fn decompress(b: &[u8]) -> u8 {\n\
                     middle(b)\n\
                     }\n";
        let helper = "pub fn middle(b: &[u8]) -> u8 {\n\
                      deep_index(b)\n\
                      }\n\
                      pub fn deep_index(b: &[u8]) -> u8 {\n\
                      b[7]\n\
                      }\n";
        let (f, _) = run_graph(&[
            ("crates/szx-core/src/decode.rs", entry),
            ("crates/szx-core/src/dekernels.rs", helper),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "panic-reach");
        assert_eq!(f[0].path, "crates/szx-core/src/dekernels.rs");
        assert_eq!(f[0].line, 5);
        assert_eq!(f[0].symbol, "szx_core::dekernels::deep_index");
        // Full entry → middle → helper chain, with call-site coordinates.
        assert_eq!(f[0].chain.len(), 3, "{:?}", f[0].chain);
        assert!(f[0].chain[0].contains("szx_core::decode::decompress"));
        assert!(f[0].chain[1].contains("szx_core::dekernels::middle"));
        assert!(f[0].chain[2].contains("szx_core::dekernels::deep_index"));
        assert!(f[0].message.contains("szx_core::decode::decompress"));
    }

    #[test]
    fn panic_ok_note_suppresses_anywhere_on_the_path() {
        let entry = "pub fn decompress(b: &[u8]) -> u8 {\n\
                     helper(b)\n\
                     }\n";
        let helper = "pub fn helper(b: &[u8]) -> u8 {\n\
                      // PANIC-OK: decompress validated b.len() >= 8 above.\n\
                      b[7]\n\
                      }\n";
        let (f, c) = run_graph(&[
            ("crates/szx-core/src/decode.rs", entry),
            ("crates/szx-core/src/dekernels.rs", helper),
        ]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.panic_ok, 1);
    }

    #[test]
    fn unreachable_helpers_are_not_scanned() {
        let entry = "pub fn decompress(b: &[u8]) -> u8 { b.len() as u8 }\n";
        let helper = "pub fn encode_only(b: &[u8]) -> u8 { b[0] }\n";
        let (f, _) = run_graph(&[
            ("crates/szx-core/src/decode.rs", entry),
            ("crates/szx-core/src/kernels.rs", helper),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reader_methods_and_parsers_are_entries() {
        let src = "impl FrameReader {\n\
                   pub fn frame(&self, i: usize) -> u8 { self.toc[i] }\n\
                   }\n\
                   impl Header {\n\
                   pub fn parse(b: &[u8]) -> u8 { b[0] }\n\
                   }\n";
        let (f, c) = run_graph(&[("crates/szx-core/src/streaming.rs", src)]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(c.decode_entries, 2);
    }

    #[test]
    fn test_functions_are_neither_entries_nor_scanned() {
        let src = "pub fn decompress(b: &[u8]) -> u8 { helper(b) }\n\
                   pub fn helper(b: &[u8]) -> u8 { b.len() as u8 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { super::helper(&[0][..1]); x[0].unwrap(); }\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/decode.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn debug_assert_and_unwrap_or_are_not_panic_vectors() {
        let src = "pub fn decompress(v: &[u8]) {\n\
                   debug_assert!(v.len() > 1);\n\
                   debug_assert_eq!(v.len(), 2);\n\
                   let _ = v.first().copied().unwrap_or(0);\n\
                   let _ = v.first().copied().unwrap_or_default();\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/decode.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lifetime_slices_and_attributes_are_not_index_exprs() {
        let src = "#[derive(Debug)]\n\
                   pub struct S<'a> { pub b: &'a [u8], pub n: [u8; 4] }\n\
                   pub fn decompress(x: &'static [u8]) -> Vec<u8> { vec![0; 4] }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/decode.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
