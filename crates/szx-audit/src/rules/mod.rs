//! The audit rules: project-specific invariants phrased over the lexical
//! source model of [`crate::source`] and the call graph of
//! [`crate::callgraph`].
//!
//! | rule id                | invariant                                                        |
//! |------------------------|------------------------------------------------------------------|
//! | `unsafe-allowlist`     | `unsafe` appears only in the allowlisted unsafe surfaces         |
//! | `unsafe-safety`        | every allowlisted `unsafe` site carries a `// SAFETY:` comment   |
//! | `forbid-unsafe`        | safe crates declare `#![forbid(unsafe_code)]` at the crate root  |
//! | `deny-unsafe-op`       | unsafe-bearing crates deny `unsafe_op_in_unsafe_fn`              |
//! | `deny-unsafe-code`     | opt-in crates deny `unsafe_code` at the root (files re-allow)    |
//! | `target-feature-guard` | `#[target_feature]` backends are only called behind a `SAFETY:`  |
//! |                        | note naming the runtime feature-detection guard                  |
//! | `panic-reach`          | no panic vector transitively reachable from a decode entry       |
//! |                        | point without `// PANIC-OK:` (call-graph rule)                   |
//! | `hot-loop-alloc`       | no allocation in loop bodies reachable from kernel/SIMD entry    |
//! |                        | points without `// ALLOC-OK:` (call-graph rule)                  |
//! | `checked-arith`        | `+`/`*`/`<<` on length/offset locals on parse paths must be      |
//! |                        | `checked_*`/`saturating_*` (or `// ARITH-OK:` with proof)        |
//! | `atomics-protocol`     | publish fields in the lock-free modules follow release/acquire   |
//! | `cast-note`            | narrowing `as` casts in the kernels carry a `// CAST:` note      |
//!
//! The first six and the last two are lexical (per-file or per-attribute);
//! `panic-reach` and `hot-loop-alloc` traverse the workspace call graph
//! from their entry-point sets, and `checked-arith` runs over the parsed
//! arithmetic sites of parse-path functions. PR-5's file-allowlist
//! `panic-path` rule is replaced by `panic-reach`: instead of trusting a
//! list of decode-side *files*, the analyzer walks every function the
//! decode entry points can actually reach, in any file, and reports the
//! full offending call chain.

mod allocs;
mod arith;
mod atomics;
mod lexical;
mod panics;

pub use allocs::{check_hot_loop_allocs, HOT_ENTRY_FILES};
pub use arith::{check_parse_arith, PARSE_PATH_FILES};
pub use lexical::{check_crate_attrs, check_target_feature_guards};
pub use panics::{check_panic_reach, is_decode_entry};

use crate::callgraph::CallGraph;
use crate::report::{Counts, Finding};
use crate::source::SourceFile;

/// Files allowed to contain `unsafe` (each site still needs `// SAFETY:`).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/szx-telemetry/src/trace.rs",
    "crates/szx-telemetry/src/json.rs",
];

/// Directory prefixes allowed to contain `unsafe` (same `// SAFETY:`
/// obligation as [`UNSAFE_ALLOWLIST`]). The explicit SIMD backends live
/// here: the szx-core crate root carries `#![deny(unsafe_code)]` and only
/// these files opt back in with an inner `#![allow(unsafe_code)]`, so the
/// crate's entire unsafe surface is this directory.
pub const UNSAFE_ALLOWLIST_PREFIXES: &[&str] = &["crates/szx-core/src/simd/"];

/// Crate roots that must carry `#![forbid(unsafe_code)]`. (szx-core moved
/// to [`DENY_UNSAFE_OP_ROOTS`] when the SIMD backends landed: `forbid`
/// cannot be overridden by a module, `deny` can — see
/// [`UNSAFE_ALLOWLIST_PREFIXES`].)
pub const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "crates/szx-data/src/lib.rs",
    "crates/szx-cli/src/main.rs",
    "crates/szx-metrics/src/lib.rs",
    "crates/szx-baselines/src/lib.rs",
    "crates/szx-gpu-sim/src/lib.rs",
    "crates/szx-io-sim/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/szx-audit/src/lib.rs",
    "crates/szx-fuzz/src/lib.rs",
    "crates/szx-profile/src/lib.rs",
    "tests/src/lib.rs",
];

/// Crate roots that must carry `#![deny(unsafe_op_in_unsafe_fn)]` — the
/// crates allowed to hold unsafe code at all.
pub const DENY_UNSAFE_OP_ROOTS: &[&str] = &[
    "crates/szx-telemetry/src/lib.rs",
    "crates/szx-core/src/lib.rs",
];

/// Crate roots that must carry `#![deny(unsafe_code)]`: crates whose unsafe
/// surface is confined to allowlisted files via per-file
/// `#![allow(unsafe_code)]` opt-ins.
pub const DENY_UNSAFE_CODE_ROOTS: &[&str] = &["crates/szx-core/src/lib.rs"];

/// Kernel modules whose offset arithmetic must annotate narrowing casts.
/// The SIMD dispatch layer and the x86 backend join the portable kernels:
/// their shift/byte-count arithmetic narrows just the same.
pub const CAST_FILES: &[&str] = &[
    "crates/szx-core/src/kernels.rs",
    "crates/szx-core/src/dekernels.rs",
    "crates/szx-core/src/simd/mod.rs",
    "crates/szx-core/src/simd/x86.rs",
    "crates/szx-core/src/simd/neon.rs",
];

/// Lock-free modules and the atomic fields in them that publish other
/// state: the trace buffer's `len` guards `UnsafeCell` slot contents, the
/// zone slot's `gen` is the seqlock generation guarding the profiler's
/// stack frames. Each must pair a release store with an acquire load; any
/// relaxed operation on them needs an `// ORDERING:` justification (and,
/// for relaxed *stores*, a release `fence` in the module — the seqlock
/// write-entry pattern, where the fence does the publishing).
pub const ATOMIC_PROTOCOL_MODULES: &[(&str, &[&str])] = &[
    ("crates/szx-telemetry/src/trace.rs", &["len"]),
    ("crates/szx-telemetry/src/zones.rs", &["gen"]),
];

/// Run every lexical per-file rule on `file`.
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    lexical::unsafe_hygiene(file, findings, counts);
    if CAST_FILES.contains(&file.rel_path.as_str()) {
        lexical::cast_notes(file, findings, counts);
    }
    if let Some(&(_, fields)) = ATOMIC_PROTOCOL_MODULES
        .iter()
        .find(|(m, _)| *m == file.rel_path)
    {
        atomics::atomics_protocol(file, fields, findings, counts);
    }
}

/// Run the call-graph rule families. `files` must be the same slice (same
/// order) the graph was built from, so `Node::file` indexes into it.
pub fn check_graph(
    files: &[SourceFile],
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    panics::check_panic_reach(files, graph, findings, counts);
    allocs::check_hot_loop_allocs(files, graph, findings, counts);
    arith::check_parse_arith(files, graph, findings, counts);
}

/// Files that are test, bench, or example context even though their items
/// carry no `#[cfg(test)]`: integration-test trees, the shared `tests`
/// harness crate, benches, and examples. The graph rules neither treat
/// their fns as entry points nor scan their bodies — their callees are
/// still checked when a real entry reaches them.
pub(crate) fn is_test_context(rel_path: &str) -> bool {
    rel_path.starts_with("examples/")
        || rel_path.starts_with("benches/")
        || rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Word-boundary search for an identifier-like token.
pub(crate) fn has_word(code: &str, word: &str) -> bool {
    let mut from = 0usize;
    while let Some(at) = code[from..].find(word) {
        let abs = from + at;
        let before = code[..abs].chars().next_back();
        let after = code[abs + word.len()..].chars().next();
        if !before.is_some_and(is_ident_char) && !after.is_some_and(is_ident_char) {
            return true;
        }
        from = abs + word.len();
    }
    false
}

/// Macro-call search: `name` must not be preceded by an identifier char
/// (so `assert!` does not match inside `debug_assert!`).
pub(crate) fn has_macro(code: &str, name: &str) -> bool {
    let mut from = 0usize;
    while let Some(at) = code[from..].find(name) {
        let abs = from + at;
        if !code[..abs].chars().next_back().is_some_and(is_ident_char) {
            return true;
        }
        from = abs + name.len();
    }
    false
}

/// Does the line contain an index expression `expr[...]`? A `[` counts when
/// the previous non-space character ends an expression (identifier, `)`,
/// `]`), except when that identifier is a lifetime (`&'a [u8]`).
pub(crate) fn has_index_expr(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = chars[j - 1];
        if prev == ')' || prev == ']' {
            return true;
        }
        if is_ident_char(prev) {
            // Walk back over the identifier; a leading `'` makes it a
            // lifetime, and a keyword (`&mut [F]`, `dyn [..]`, `x in [..]`)
            // starts a type or expression — neither is an indexable value.
            let mut k = j - 1;
            while k > 0 && is_ident_char(chars[k - 1]) {
                k -= 1;
            }
            if k > 0 && chars[k - 1] == '\'' {
                continue;
            }
            const KEYWORDS: &[&str] = &[
                "mut", "dyn", "in", "as", "return", "break", "else", "match", "if", "while",
                "impl", "where", "move", "ref", "const", "static", "let", "loop",
            ];
            let ident: String = chars[k..j].iter().collect();
            if !KEYWORDS.contains(&ident.as_str()) {
                return true;
            }
        }
    }
    false
}

/// The identifier ending `s` (e.g. `"self.len"` → `"len"`).
pub(crate) fn trailing_ident(s: &str) -> String {
    s.chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// The identifier starting `s`.
pub(crate) fn leading_ident(s: &str) -> String {
    s.chars().take_while(|&c| is_ident_char(c)).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::source::parse_source;

    /// Lexical-rule harness: run [`check_file`] on one synthetic source.
    pub(crate) fn run_on(rel_path: &str, src: &str) -> (Vec<Finding>, Counts) {
        let file = parse_source(rel_path, src);
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_file(&file, &mut findings, &mut counts);
        (findings, counts)
    }

    /// Graph-rule harness: lex + parse + build the call graph over a
    /// synthetic workspace, then run [`check_graph`].
    pub(crate) fn run_graph(sources: &[(&str, &str)]) -> (Vec<Finding>, Counts) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| parse_source(rel, src))
            .collect();
        let parsed: Vec<(String, crate::parse::ParsedFile)> = files
            .iter()
            .map(|f| (f.rel_path.clone(), crate::parse::parse_items(f)))
            .collect();
        let graph = CallGraph::build(&parsed);
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_graph(&files, &graph, &mut findings, &mut counts);
        findings.sort();
        (findings, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_expr_heuristic_edges() {
        assert!(has_index_expr("let x = data[i];"));
        assert!(has_index_expr("f()[0]"));
        assert!(!has_index_expr("let a: [u8; 8] = x;"));
        assert!(!has_index_expr("fn f(b: &'a [u8]) {}"));
        assert!(!has_index_expr("let v = vec![0; 4];"));
    }

    #[test]
    fn word_and_macro_helpers() {
        assert!(has_word("unsafe { x }", "unsafe"));
        assert!(!has_word("unsafe_code", "unsafe"));
        assert!(has_macro("assert!(x)", "assert!"));
        assert!(!has_macro("debug_assert!(x)", "assert!"));
    }
}
