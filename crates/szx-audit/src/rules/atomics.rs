//! The `atomics-protocol` rule: publish fields in the lock-free modules
//! follow the release/acquire protocol (seqlock-aware).

use super::{leading_ident, trailing_ident};
use crate::report::{Counts, Finding};
use crate::source::SourceFile;

#[derive(Debug, PartialEq, Clone, Copy)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

/// One atomic operation found in the trace module.
#[derive(Debug)]
struct AtomicOp {
    field: String,
    kind: OpKind,
    ordering: String,
    line: usize,
}

/// The lock-free publish protocol: `fields` guard other state (trace slot
/// contents, profiler stack frames) and must release-store and
/// acquire-load; a relaxed store would let readers observe torn data, and
/// a relaxed cross-thread load would read state before its writes are
/// visible. Two justified exceptions, both requiring an `// ORDERING:`
/// note: owner-thread relaxed *loads* (a thread always sees its own
/// stores), and relaxed *stores* in a module carrying a release `fence`
/// (the seqlock write-entry pattern — the fence, not the store, does the
/// publishing, as in the zone slot's odd-generation store).
pub(super) fn atomics_protocol(
    file: &SourceFile,
    fields: &[&str],
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    let has_release_fence = file
        .lines
        .iter()
        .enumerate()
        .any(|(i, l)| !file.in_test[i] && l.code.contains("fence(Ordering::Release)"));
    let mut ops: Vec<AtomicOp> = Vec::new();
    const METHODS: &[(&str, OpKind)] = &[
        (".load(", OpKind::Load),
        (".store(", OpKind::Store),
        (".swap(", OpKind::Rmw),
        (".fetch_add(", OpKind::Rmw),
        (".fetch_sub(", OpKind::Rmw),
        (".compare_exchange(", OpKind::Rmw),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for &(pat, kind) in METHODS {
            let mut from = 0usize;
            while let Some(at) = line.code[from..].find(pat) {
                let abs = from + at;
                // When rustfmt wraps the receiver onto its own line
                // (`self.len\n    .store(...)`), the field identifier sits
                // on the nearest preceding non-blank code line.
                let mut field = trailing_ident(line.code[..abs].trim_end());
                if field.is_empty() {
                    for j in (i.saturating_sub(3)..i).rev() {
                        let t = file.lines[j].code.trim_end();
                        if !t.is_empty() {
                            field = trailing_ident(t);
                            break;
                        }
                    }
                }
                // The Ordering argument may sit on a continuation line when
                // rustfmt wraps the call.
                let ordering = (i..file.lines.len().min(i + 4))
                    .find_map(|j| {
                        let code = &file.lines[j].code;
                        let start = if j == i { abs } else { 0 };
                        code[start..]
                            .find("Ordering::")
                            .map(|o| leading_ident(&code[start + o + "Ordering::".len()..]))
                    })
                    .unwrap_or_default();
                ops.push(AtomicOp {
                    field,
                    kind,
                    ordering,
                    line: i + 1,
                });
                from = abs + pat.len();
            }
        }
    }

    let snippet = |line: usize| file.lines[line - 1].code.trim().to_string();
    for field in fields {
        let field_ops: Vec<&AtomicOp> = ops.iter().filter(|o| &o.field == field).collect();
        if field_ops.is_empty() {
            continue;
        }
        for op in &field_ops {
            match op.kind {
                OpKind::Store | OpKind::Rmw if op.ordering == "Relaxed" => {
                    if has_release_fence && file.annotated(op.line - 1, "ORDERING:") {
                        counts.ordering_notes += 1;
                    } else {
                        findings.push(Finding::in_symbol(
                            "atomics-protocol",
                            &file.rel_path,
                            op.line,
                            &file.rel_path,
                            &snippet(op.line),
                            &format!(
                                "relaxed store to publish field `{field}` — contents \
                                 published without release ordering (a seqlock-style \
                                 store needs both a release fence in the module and an \
                                 `// ORDERING:` note)"
                            ),
                        ));
                    }
                }
                OpKind::Load if op.ordering == "Relaxed" => {
                    if file.annotated(op.line - 1, "ORDERING:") {
                        counts.ordering_notes += 1;
                    } else {
                        findings.push(Finding::in_symbol(
                            "atomics-protocol",
                            &file.rel_path,
                            op.line,
                            &file.rel_path,
                            &snippet(op.line),
                            &format!(
                                "relaxed load of publish field `{field}` without an \
                                 `// ORDERING:` note (owner-thread reads must be justified)"
                            ),
                        ));
                    }
                }
                _ if op.ordering.is_empty() => {
                    findings.push(Finding::in_symbol(
                        "atomics-protocol",
                        &file.rel_path,
                        op.line,
                        &file.rel_path,
                        &snippet(op.line),
                        &format!("atomic op on `{field}` without an explicit Ordering"),
                    ));
                }
                _ => {}
            }
        }
        let has_release_store = field_ops
            .iter()
            .any(|o| o.kind != OpKind::Load && (o.ordering == "Release" || o.ordering == "SeqCst"));
        let has_acquire_load = field_ops
            .iter()
            .any(|o| o.kind == OpKind::Load && (o.ordering == "Acquire" || o.ordering == "SeqCst"));
        if !(has_release_store && has_acquire_load) {
            findings.push(Finding::in_symbol(
                "atomics-protocol",
                &file.rel_path,
                field_ops[0].line,
                &file.rel_path,
                &snippet(field_ops[0].line),
                &format!(
                    "publish field `{field}` lacks a release-store/acquire-load pair \
                     (stores: {}, loads: {})",
                    field_ops.iter().filter(|o| o.kind != OpKind::Load).count(),
                    field_ops.iter().filter(|o| o.kind == OpKind::Load).count(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_on;

    #[test]
    fn relaxed_publish_store_is_flagged() {
        let src = "fn push(&self) {\n\
                   let n = self.len.load(Ordering::Acquire);\n\
                   self.len.store(n + 1, Ordering::Relaxed);\n\
                   }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "atomics-protocol" && x.line == 3),
            "{f:?}"
        );
    }

    #[test]
    fn release_acquire_pair_passes() {
        let src = "fn push(&self) {\n\
                   // ORDERING: owner-thread read; only this thread stores len.\n\
                   let n = self.len.load(Ordering::Relaxed);\n\
                   self.len.store(n + 1, Ordering::Release);\n\
                   }\n\
                   fn drain(&self) {\n\
                   let n = self.len.load(Ordering::Acquire);\n\
                   self.len.store(0, Ordering::Release);\n\
                   }\n";
        let (f, c) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.ordering_notes, 1);
    }

    #[test]
    fn seqlock_gen_protocol_passes_with_fence_and_notes() {
        // The zone-slot pattern: relaxed odd store justified by a release
        // fence + note, even store Release, reader Acquire + fenced
        // relaxed re-read. Zero findings, every relaxed op counted.
        let src = "fn publish(&self) {\n\
                   // ORDERING: owner-thread read of its own last value.\n\
                   let g = self.gen.load(Ordering::Relaxed);\n\
                   // ORDERING: odd store published by the fence below.\n\
                   self.gen.store(g + 1, Ordering::Relaxed);\n\
                   fence(Ordering::Release);\n\
                   self.gen.store(g + 2, Ordering::Release);\n\
                   }\n\
                   fn snapshot(&self) {\n\
                   let g1 = self.gen.load(Ordering::Acquire);\n\
                   fence(Ordering::Acquire);\n\
                   // ORDERING: re-read ordered by the fence above.\n\
                   let _ = self.gen.load(Ordering::Relaxed);\n\
                   }\n";
        let (f, c) = run_on("crates/szx-telemetry/src/zones.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.ordering_notes, 3);
    }

    #[test]
    fn seqlock_relaxed_store_needs_both_fence_and_note() {
        // A note without any release fence in the module: the store is
        // not actually published by anything — flagged.
        let noteless_fence = "fn f(&self) {\n\
                              self.gen.store(1, Ordering::Relaxed);\n\
                              fence(Ordering::Release);\n\
                              self.gen.store(2, Ordering::Release);\n\
                              let _ = self.gen.load(Ordering::Acquire);\n\
                              }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/zones.rs", noteless_fence);
        assert!(
            f.iter()
                .any(|x| x.rule == "atomics-protocol" && x.line == 2),
            "{f:?}"
        );
        let fenceless_note = "fn f(&self) {\n\
                              // ORDERING: claims a fence that is not there.\n\
                              self.gen.store(1, Ordering::Relaxed);\n\
                              self.gen.store(2, Ordering::Release);\n\
                              let _ = self.gen.load(Ordering::Acquire);\n\
                              }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/zones.rs", fenceless_note);
        assert!(
            f.iter()
                .any(|x| x.rule == "atomics-protocol" && x.line == 3),
            "{f:?}"
        );
    }

    #[test]
    fn missing_acquire_load_breaks_the_pair() {
        let src = "fn f(&self) {\n\
                   self.len.store(1, Ordering::Release);\n\
                   let _ = self.len.load(Ordering::Acquire);\n\
                   }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(f.is_empty(), "{f:?}");
        let src = "fn f(&self) { self.len.store(1, Ordering::Release); }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(
            f.iter()
                .any(|x| x.message.contains("release-store/acquire-load")),
            "{f:?}"
        );
    }

    #[test]
    fn wrapped_ordering_argument_is_found_on_continuation_line() {
        let src = "fn f(&self) {\n\
                   self.len\n\
                   .store(\n\
                   n + 1,\n\
                   Ordering::Release,\n\
                   );\n\
                   let _ = self.len.load(Ordering::Acquire);\n\
                   }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
