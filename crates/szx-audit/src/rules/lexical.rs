//! Lexical rules: unsafe hygiene, crate-root lint attributes,
//! `#[target_feature]` call guards, and narrowing-cast notes.

use super::{
    is_ident_char, leading_ident, DENY_UNSAFE_CODE_ROOTS, DENY_UNSAFE_OP_ROOTS,
    FORBID_UNSAFE_ROOTS, UNSAFE_ALLOWLIST, UNSAFE_ALLOWLIST_PREFIXES,
};
use crate::report::{Counts, Finding};
use crate::source::SourceFile;

/// `unsafe` only in the allowlist, and there only with a `// SAFETY:`
/// justification on or directly above the site.
pub(super) fn unsafe_hygiene(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    let allowed = UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str())
        || UNSAFE_ALLOWLIST_PREFIXES
            .iter()
            .any(|p| file.rel_path.starts_with(p));
    for (i, line) in file.lines.iter().enumerate() {
        if !super::has_word(&line.code, "unsafe") {
            continue;
        }
        counts.unsafe_sites += 1;
        if !allowed {
            findings.push(Finding::in_symbol(
                "unsafe-allowlist",
                &file.rel_path,
                i + 1,
                &file.rel_path,
                line.code.trim(),
                "`unsafe` outside the allowlisted unsafe surfaces",
            ));
        } else if file.annotated(i, "SAFETY:") {
            counts.safety_comments += 1;
        } else {
            findings.push(Finding::in_symbol(
                "unsafe-safety",
                &file.rel_path,
                i + 1,
                &file.rel_path,
                line.code.trim(),
                "unsafe site without a `// SAFETY:` justification",
            ));
        }
    }
}

/// Narrowing `as` casts in kernel offset arithmetic need a `// CAST:` note
/// stating why the value fits.
pub(super) fn cast_notes(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    const NARROW: &[&str] = &["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let mut sites = 0usize;
        for pat in NARROW {
            let mut from = 0usize;
            while let Some(at) = line.code[from..].find(pat) {
                let abs = from + at;
                let before_ok =
                    abs == 0 || !is_ident_char(line.code[..abs].chars().next_back().unwrap_or(' '));
                let after = line.code[abs + pat.len()..].chars().next().unwrap_or(' ');
                if before_ok && !is_ident_char(after) {
                    sites += 1;
                }
                from = abs + pat.len();
            }
        }
        if sites == 0 {
            continue;
        }
        if file.annotated(i, "CAST:") {
            counts.cast_notes += sites;
        } else {
            findings.push(Finding::in_symbol(
                "cast-note",
                &file.rel_path,
                i + 1,
                &file.rel_path,
                line.code.trim(),
                "narrowing `as` cast in kernel arithmetic without a `// CAST:` note",
            ));
        }
    }
}

/// Cross-file rule: crate roots carry their lint attributes. `files` is the
/// full scanned set.
pub fn check_crate_attrs(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let find = |rel: &str| files.iter().find(|f| f.rel_path == rel);
    let declares = |f: &SourceFile, attr: &str| {
        f.lines
            .iter()
            .any(|l| l.code.replace(' ', "").contains(attr))
    };
    let mut require =
        |root: &'static str, rule: &'static str, attr: &str, missing: &str| match find(root) {
            Some(f) if declares(f, attr) => {}
            Some(_) => findings.push(Finding::new(rule, root, 1, missing)),
            None => findings.push(Finding::new(
                rule,
                root,
                1,
                "expected crate root not found under the audit root",
            )),
        };
    for &root in FORBID_UNSAFE_ROOTS {
        require(
            root,
            "forbid-unsafe",
            "#![forbid(unsafe_code)]",
            "crate root is missing #![forbid(unsafe_code)]",
        );
    }
    for &root in DENY_UNSAFE_OP_ROOTS {
        require(
            root,
            "deny-unsafe-op",
            "#![deny(unsafe_op_in_unsafe_fn)]",
            "crate root is missing #![deny(unsafe_op_in_unsafe_fn)]",
        );
    }
    for &root in DENY_UNSAFE_CODE_ROOTS {
        require(
            root,
            "deny-unsafe-code",
            "#![deny(unsafe_code)]",
            "crate root is missing #![deny(unsafe_code)]",
        );
    }
}

/// Cross-file rule: every call of a `#[target_feature]` backend sits behind
/// a `// SAFETY:` note that names the runtime feature-detection guard.
///
/// Definitions are collected from the files under
/// [`UNSAFE_ALLOWLIST_PREFIXES`]; call sites are matched as
/// `<backend-module>::<fn>(` in the *other* prefix files (the dispatch
/// layer). Calls inside a defining file are exempt — there they occur
/// inside functions carrying the same `#[target_feature]` set, where the
/// compiler itself proves the features present. The note must contain the
/// word "detect" (as in `is_x86_feature_detected!` / "runtime detection")
/// so a generic justification cannot satisfy the rule.
pub fn check_target_feature_guards(
    files: &[SourceFile],
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    let in_prefix = |f: &SourceFile| {
        UNSAFE_ALLOWLIST_PREFIXES
            .iter()
            .any(|p| f.rel_path.starts_with(p))
    };
    // (qualified call pattern, fn name) for every target-feature fn.
    let mut backends: Vec<(String, String)> = Vec::new();
    let mut defining: Vec<&str> = Vec::new();
    for file in files.iter().filter(|f| in_prefix(f)) {
        let stem = file
            .rel_path
            .rsplit('/')
            .next()
            .unwrap_or_default()
            .trim_end_matches(".rs");
        let mut defines = false;
        for (i, line) in file.lines.iter().enumerate() {
            if !line.code.contains("#[target_feature(") {
                continue;
            }
            defines = true;
            // The fn item follows the attribute (possibly after more
            // attributes); take the first `fn <name>` within reach.
            for j in i + 1..file.lines.len().min(i + 4) {
                if let Some(at) = file.lines[j].code.find("fn ") {
                    let name = leading_ident(&file.lines[j].code[at + 3..]);
                    if !name.is_empty() {
                        backends.push((format!("{stem}::{name}"), name));
                    }
                    break;
                }
            }
        }
        if defines {
            defining.push(&file.rel_path);
        }
    }
    for file in files.iter().filter(|f| in_prefix(f)) {
        if defining.contains(&file.rel_path.as_str()) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            for (qualified, name) in &backends {
                let mut from = 0usize;
                while let Some(at) = line.code[from..].find(qualified.as_str()) {
                    let abs = from + at;
                    from = abs + qualified.len();
                    let before_ok = !line.code[..abs]
                        .chars()
                        .next_back()
                        .is_some_and(is_ident_char);
                    let called = line.code[from..].trim_start().starts_with('(');
                    if !before_ok || !called {
                        continue;
                    }
                    if detection_noted(file, i) {
                        counts.feature_guards += 1;
                    } else {
                        findings.push(Finding::in_symbol(
                            "target-feature-guard",
                            &file.rel_path,
                            i + 1,
                            &file.rel_path,
                            line.code.trim(),
                            &format!(
                                "call to `#[target_feature]` backend `{name}` without a \
                                 `// SAFETY:` note naming the runtime detection guard"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Is there a `// SAFETY:` note mentioning detection on or directly above
/// line `idx`, or above the enclosing `unsafe {` opener within three lines
/// (rustfmt puts multi-line unsafe blocks' openers on their own line)?
fn detection_noted(file: &SourceFile, idx: usize) -> bool {
    (idx.saturating_sub(3)..=idx).any(|j| {
        let mut text = file.comment_above(j);
        text.push_str(&file.lines[j].comment);
        text.contains("SAFETY:") && text.to_ascii_lowercase().contains("detect")
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_on;
    use super::*;
    use crate::source::parse_source;

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let (f, c) = run_on("crates/szx-core/src/lib.rs", "unsafe { boom() }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-allowlist");
        assert_eq!(c.unsafe_sites, 1);
    }

    #[test]
    fn allowlisted_unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { go() } }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", bad);
        assert!(f.iter().any(|x| x.rule == "unsafe-safety"), "{f:?}");

        let good = "// SAFETY: the owner thread is the only writer.\nfn f() { unsafe { go() } }\n";
        let (f, c) = run_on("crates/szx-telemetry/src/trace.rs", good);
        assert!(f.iter().all(|x| x.rule != "unsafe-safety"), "{f:?}");
        assert_eq!(c.safety_comments, 1);
    }

    /// Allowlist review for the observability layer: the resource-sampler
    /// thread, exporters, manifest, snapshot, and progress modules are pure
    /// safe code, so `szx-telemetry` keeps its `unsafe` confined to the two
    /// long-audited files — nothing new earns an allowance.
    #[test]
    fn observability_modules_need_no_unsafe_allowance() {
        assert_eq!(
            UNSAFE_ALLOWLIST,
            &[
                "crates/szx-telemetry/src/trace.rs",
                "crates/szx-telemetry/src/json.rs",
            ]
        );
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for module in ["snapshot", "export", "resource", "manifest", "progress"] {
            let rel = format!("crates/szx-telemetry/src/{module}.rs");
            let text = std::fs::read_to_string(root.join(&rel)).expect("module exists");
            let (f, c) = run_on(&rel, &text);
            assert_eq!(c.unsafe_sites, 0, "{rel} must stay safe code");
            assert!(f.iter().all(|x| x.rule != "unsafe-allowlist"), "{f:?}");
        }
    }

    #[test]
    fn unsafe_in_word_or_string_does_not_count() {
        let (f, c) = run_on(
            "crates/szx-core/src/lib.rs",
            "#![forbid(unsafe_code)]\nlet s = \"unsafe\";\n",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.unsafe_sites, 0);
    }

    #[test]
    fn narrowing_casts_need_cast_notes() {
        let src = "fn f(x: u64) -> u8 {\n\
                   let a = x as u8;\n\
                   // CAST: leading_zeros() <= 64 fits in u8.\n\
                   let b = (x.leading_zeros() >> 3) as u8;\n\
                   let wide = a as u64;\n\
                   a + b\n\
                   }\n";
        let (f, c) = run_on("crates/szx-core/src/kernels.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cast-note");
        assert_eq!(f[0].line, 2);
        assert_eq!(c.cast_notes, 1);
    }

    #[test]
    fn crate_attr_rule_reports_missing_roots() {
        let present = parse_source(
            "crates/szx-core/src/lib.rs",
            "#![deny(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n",
        );
        let mut findings = Vec::new();
        check_crate_attrs(&[present], &mut findings);
        // szx-core passes both deny checks; every forbid root and the
        // telemetry deny root are missing from the set.
        assert!(findings
            .iter()
            .all(|f| f.path != "crates/szx-core/src/lib.rs"));
        assert_eq!(findings.len(), FORBID_UNSAFE_ROOTS.len() + 1);
    }

    #[test]
    fn simd_prefix_is_allowlisted_but_still_needs_safety() {
        let src = "// SAFETY: caller proved the pointer in bounds.\n\
                   let x = unsafe { load(p) };\n\
                   let y = unsafe { load(q) };\n";
        let (f, c) = run_on("crates/szx-core/src/simd/x86.rs", src);
        assert_eq!(c.unsafe_sites, 2);
        assert_eq!(c.safety_comments, 1);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-safety");
        assert_eq!(f[0].line, 3);
    }

    fn tf_backend() -> SourceFile {
        parse_source(
            "crates/szx-core/src/simd/x86.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             pub(super) fn scan8(d: &[f32]) {}\n\
             fn helper() { scan8(&[]) }\n",
        )
    }

    #[test]
    fn guarded_target_feature_call_passes_and_counts() {
        let caller = parse_source(
            "crates/szx-core/src/simd/mod.rs",
            "// SAFETY: ready() confirmed AVX2 via runtime feature detection.\n\
             let r = unsafe { x86::scan8(d) };\n",
        );
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_target_feature_guards(&[tf_backend(), caller], &mut findings, &mut counts);
        // The intra-backend `scan8(&[])` call is exempt (same-feature
        // context); the dispatch-layer call is counted once.
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(counts.feature_guards, 1);
    }

    #[test]
    fn unguarded_target_feature_call_is_flagged() {
        // A SAFETY note that never names the detection guard does not
        // satisfy the rule.
        let caller = parse_source(
            "crates/szx-core/src/simd/mod.rs",
            "// SAFETY: trust me.\nlet r = unsafe { x86::scan8(d) };\n",
        );
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_target_feature_guards(&[tf_backend(), caller], &mut findings, &mut counts);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "target-feature-guard");
        assert_eq!(counts.feature_guards, 0);
    }

    #[test]
    fn multiline_unsafe_block_note_is_found_from_the_call_line() {
        let caller = parse_source(
            "crates/szx-core/src/simd/mod.rs",
            "// SAFETY: coder_ready() confirmed AVX2 by runtime detection.\n\
             unsafe {\n\
                 x86::scan8(\n\
                     d,\n\
                 )\n\
             };\n",
        );
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_target_feature_guards(&[tf_backend(), caller], &mut findings, &mut counts);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(counts.feature_guards, 1);
    }
}
