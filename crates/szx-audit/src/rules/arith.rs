//! The `checked-arith` rule: raw `+`/`*`/`<<` on length/offset-typed
//! locals on the parse paths must be `checked_*`/`saturating_*` (or carry
//! an `// ARITH-OK:` proof; `wrapping_*` with a `// CAST:` note is the
//! third compliant form and produces no raw operator at all).
//!
//! This generalizes the PR-7 `pos + len` cursor-overflow fix into a rule
//! that would have caught it: on a path that computes offsets from
//! attacker-controllable bytes, an unchecked add or multiply can wrap and
//! defeat a later bounds check. The rule is scoped to the cursor /
//! header / TOC / stream-index code and to operands whose *names* say
//! length or offset — wide enough to catch the real bug class, narrow
//! enough that every finding is actionable.

use crate::callgraph::CallGraph;
use crate::report::{Counts, Finding};
use crate::source::SourceFile;

/// Parse-path files: every non-test `fn` defined here is in scope.
pub const PARSE_PATH_FILES: &[&str] = &[
    "crates/szx-core/src/cursor.rs",
    "crates/szx-core/src/stream.rs",
    "crates/szx-core/src/archive.rs",
];

/// Parse-path types: methods of these are in scope wherever they live
/// (FrameReader's TOC math sits in streaming.rs, StreamIndex's in
/// decode.rs).
const PARSE_PATH_TYPES: &[&str] = &["FrameReader", "StreamIndex", "ParsedStream", "ArchiveToc"];

/// Identifier name segments that mark a local as length/offset-typed.
const LENGTH_SEGMENTS: &[&str] = &[
    "len", "length", "pos", "position", "off", "offs", "offset", "size", "count", "idx", "index",
    "end", "start", "cap", "bytes", "blocks", "nbits", "nbytes", "stride",
];

/// Does this identifier name a length/offset quantity? Matching is by
/// snake_case segment so `coeff` or `append` never match `off`/`end`.
fn length_ish(ident: &str) -> bool {
    if ident.is_empty() {
        return false;
    }
    ident
        .split('_')
        .any(|seg| LENGTH_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// Flag unchecked arithmetic on length/offset operands in parse-path
/// functions, honoring `// ARITH-OK:` on or above the site.
pub fn check_parse_arith(
    files: &[SourceFile],
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    for node in &graph.nodes {
        if node.item.is_test || super::is_test_context(&node.rel_path) {
            continue;
        }
        let impl_type = node.item.impl_type.as_deref().unwrap_or("");
        let in_scope = PARSE_PATH_FILES.contains(&node.rel_path.as_str())
            || PARSE_PATH_TYPES.contains(&impl_type);
        if !in_scope {
            continue;
        }
        let file = &files[node.file];
        for site in &node.item.arith {
            if file.in_test[site.line] {
                continue;
            }
            if !(length_ish(&site.lhs) || length_ish(&site.rhs)) {
                continue;
            }
            if file.annotated(site.line, "ARITH-OK:") {
                counts.arith_ok += 1;
                continue;
            }
            let operand = if length_ish(&site.lhs) {
                &site.lhs
            } else {
                &site.rhs
            };
            findings.push(Finding::in_symbol(
                "checked-arith",
                &file.rel_path,
                site.line + 1,
                &node.item.sym,
                file.lines[site.line].code.trim(),
                &format!(
                    "unchecked `{}` on length/offset operand `{operand}` on a parse path — \
                     use `checked_*`/`saturating_*` (or `// ARITH-OK:` with proof, or \
                     `wrapping_*` with a `// CAST:` note)",
                    site.op
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_graph;
    use super::length_ish;

    #[test]
    fn length_ish_matches_segments_not_substrings() {
        assert!(length_ish("pos"));
        assert!(length_ish("frame_len"));
        assert!(length_ish("byte_offset"));
        assert!(length_ish("num_blocks"));
        assert!(length_ish("end"));
        assert!(!length_ish("coeff"), "`off` must not match inside coeff");
        assert!(!length_ish("append"), "`end` must not match inside append");
        assert!(!length_ish("value"));
        assert!(!length_ish(""));
    }

    #[test]
    fn unchecked_add_on_cursor_path_is_flagged() {
        let src = "pub fn skip(pos: usize, len: usize) -> usize {\n\
                   pos + len\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/cursor.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "checked-arith");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`+`"), "{}", f[0].message);
    }

    #[test]
    fn checked_add_and_non_length_operands_pass() {
        let src = "pub fn skip(pos: usize, len: usize) -> Option<usize> {\n\
                   let a = value * scale;\n\
                   pos.checked_add(len)\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/cursor.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn arith_ok_note_suppresses_and_counts() {
        let src = "pub fn section(len: usize) -> usize {\n\
                   // ARITH-OK: len <= u32::MAX checked by Header::parse.\n\
                   len * 4\n\
                   }\n";
        let (f, c) = run_graph(&[("crates/szx-core/src/stream.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.arith_ok, 1);
    }

    #[test]
    fn parse_path_types_are_in_scope_outside_the_file_list() {
        let src = "impl FrameReader {\n\
                   fn toc_at(&self, idx: usize) -> usize {\n\
                   idx * 8\n\
                   }\n\
                   }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/streaming.rs", src)]);
        assert!(
            f.iter().any(|x| x.rule == "checked-arith" && x.line == 3),
            "{f:?}"
        );
    }

    #[test]
    fn kernel_arithmetic_is_out_of_scope() {
        // The hot kernels live on validated lengths; their index math is
        // covered by cast-note and the scratch discipline, not this rule.
        let src = "pub fn pack(n_bytes: usize) -> usize { n_bytes * 4 }\n";
        let (f, _) = run_graph(&[("crates/szx-core/src/kernels.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "checked-arith"), "{f:?}");
    }
}
