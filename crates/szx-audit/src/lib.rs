//! szx-audit: in-tree static analysis for the szx-rs workspace.
//!
//! Zero dependencies, same ethos as `szx_telemetry::json`: a small,
//! hand-rolled lexer ([`source`]) feeds an item parser ([`parse`]) and a
//! workspace call graph ([`callgraph`]), over which project-specific rules
//! ([`rules`]) enforce the invariants the hot paths rely on — the unsafe
//! allowlist, the trace publish protocol, transitive panic-freedom from
//! the decode entry points, allocation-free hot loops, checked arithmetic
//! on the parse paths, and annotated narrowing casts in kernel
//! arithmetic. See DESIGN.md §10 for the safety model these rules encode.
//!
//! Run it as `cargo run -p szx-audit` (or `scripts/check.sh --audit`);
//! the committed `results/AUDIT.json` must stay clean and fresh.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::Report;
use source::SourceFile;

/// Directories never descended into. `fixtures` holds szx-audit's own
/// seeded-violation test tree — auditing it would report its violations
/// as the workspace's.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Collect every `*.rs` file under `root`, sorted by workspace-relative
/// path so reports are deterministic regardless of filesystem order.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Workspace-relative path with `/` separators (report keys must not vary
/// by platform).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run the full audit over the workspace rooted at `root`: lexical rules
/// per file, then the item parser and call graph feed the transitive rule
/// families.
pub fn run_audit(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut files: Vec<SourceFile> = Vec::new();
    for path in collect_sources(root)? {
        let text = fs::read_to_string(&path)?;
        let file = source::parse_source(&rel_path(root, &path), &text);
        report.counts.files_scanned += 1;
        report.counts.lines_scanned += file.lines.len();
        rules::check_file(&file, &mut report.findings, &mut report.counts);
        files.push(file);
    }
    rules::check_crate_attrs(&files, &mut report.findings);
    rules::check_target_feature_guards(&files, &mut report.findings, &mut report.counts);

    let parsed: Vec<(String, parse::ParsedFile)> = files
        .iter()
        .map(|f| (f.rel_path.clone(), parse::parse_items(f)))
        .collect();
    let graph = callgraph::CallGraph::build(&parsed);
    report.counts.fns_indexed = graph.nodes.len();
    report.counts.call_edges = graph.edge_count;
    rules::check_graph(&files, &graph, &mut report.findings, &mut report.counts);

    report.findings.sort();
    report.findings.dedup();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit's own acceptance gate: the workspace it lives in must be
    /// clean. Runs from the crate dir, so the workspace root is two up.
    #[test]
    fn audit_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_audit(&root).expect("workspace sources must be readable");
        assert!(
            report.is_clean(),
            "szx-audit found violations:\n{}",
            report.render_text()
        );
        // Sanity: the scan actually saw the workspace — the five
        // allowlisted unsafe sites in szx-telemetry plus the SIMD backends
        // under crates/szx-core/src/simd/.
        assert!(report.counts.files_scanned > 20, "{:?}", report.counts);
        assert!(report.counts.unsafe_sites > 5, "{:?}", report.counts);
        assert_eq!(
            report.counts.unsafe_sites, report.counts.safety_comments,
            "every unsafe site carries a SAFETY comment"
        );
        assert!(
            report.counts.feature_guards > 0,
            "the SIMD dispatch layer's guarded #[target_feature] calls must be seen: {:?}",
            report.counts
        );
        // The call-graph stage actually ran: the item parser indexed the
        // workspace fns, resolution produced edges, and both transitive
        // rule families found their entry-point sets.
        assert!(report.counts.fns_indexed > 200, "{:?}", report.counts);
        assert!(report.counts.call_edges > 100, "{:?}", report.counts);
        assert!(report.counts.decode_entries > 10, "{:?}", report.counts);
        assert!(report.counts.hot_entries > 10, "{:?}", report.counts);
    }

    #[test]
    fn committed_report_is_fresh() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let committed = match fs::read_to_string(root.join("results/AUDIT.json")) {
            Ok(s) => s,
            // First run before the report exists: the CI audit job (which
            // regenerates and diffs) is the authority; skip here.
            Err(_) => return,
        };
        let report = run_audit(&root).expect("workspace sources must be readable");
        assert_eq!(
            committed,
            report.to_json(),
            "results/AUDIT.json is stale — regenerate with `cargo run -p szx-audit -- --json results/AUDIT.json`"
        );
    }
}
