//! The audit rules: project-specific invariants phrased over the lexical
//! source model of [`crate::source`].
//!
//! | rule id                | invariant                                                        |
//! |------------------------|------------------------------------------------------------------|
//! | `unsafe-allowlist`     | `unsafe` appears only in the allowlisted unsafe surfaces         |
//! | `unsafe-safety`        | every allowlisted `unsafe` site carries a `// SAFETY:` comment   |
//! | `forbid-unsafe`        | safe crates declare `#![forbid(unsafe_code)]` at the crate root  |
//! | `deny-unsafe-op`       | unsafe-bearing crates deny `unsafe_op_in_unsafe_fn`              |
//! | `deny-unsafe-code`     | opt-in crates deny `unsafe_code` at the root (files re-allow)    |
//! | `target-feature-guard` | `#[target_feature]` backends are only called behind a `SAFETY:`  |
//! |                        | note naming the runtime feature-detection guard                  |
//! | `panic-path`           | decode-side modules are panic-free (or carry `// PANIC-OK:`)     |
//! | `atomics-protocol`     | publish fields in the lock-free modules follow release/acquire   |
//! | `cast-note`            | narrowing `as` casts in the kernels carry a `// CAST:` note      |

use crate::report::{Counts, Finding};
use crate::source::SourceFile;

/// Files allowed to contain `unsafe` (each site still needs `// SAFETY:`).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/szx-telemetry/src/trace.rs",
    "crates/szx-telemetry/src/json.rs",
];

/// Directory prefixes allowed to contain `unsafe` (same `// SAFETY:`
/// obligation as [`UNSAFE_ALLOWLIST`]). The explicit SIMD backends live
/// here: the szx-core crate root carries `#![deny(unsafe_code)]` and only
/// these files opt back in with an inner `#![allow(unsafe_code)]`, so the
/// crate's entire unsafe surface is this directory.
pub const UNSAFE_ALLOWLIST_PREFIXES: &[&str] = &["crates/szx-core/src/simd/"];

/// Crate roots that must carry `#![forbid(unsafe_code)]`. (szx-core moved
/// to [`DENY_UNSAFE_OP_ROOTS`] when the SIMD backends landed: `forbid`
/// cannot be overridden by a module, `deny` can — see
/// [`UNSAFE_ALLOWLIST_PREFIXES`].)
pub const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "crates/szx-data/src/lib.rs",
    "crates/szx-cli/src/main.rs",
    "crates/szx-metrics/src/lib.rs",
    "crates/szx-baselines/src/lib.rs",
    "crates/szx-gpu-sim/src/lib.rs",
    "crates/szx-io-sim/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/szx-audit/src/lib.rs",
    "crates/szx-fuzz/src/lib.rs",
    "crates/szx-profile/src/lib.rs",
    "tests/src/lib.rs",
];

/// Crate roots that must carry `#![deny(unsafe_op_in_unsafe_fn)]` — the
/// crates allowed to hold unsafe code at all.
pub const DENY_UNSAFE_OP_ROOTS: &[&str] = &[
    "crates/szx-telemetry/src/lib.rs",
    "crates/szx-core/src/lib.rs",
];

/// Crate roots that must carry `#![deny(unsafe_code)]`: crates whose unsafe
/// surface is confined to allowlisted files via per-file
/// `#![allow(unsafe_code)]` opt-ins.
pub const DENY_UNSAFE_CODE_ROOTS: &[&str] = &["crates/szx-core/src/lib.rs"];

/// Decode-side modules that parse attacker-controllable bytes: no panics
/// without a `// PANIC-OK:` justification.
pub const DECODE_PATH: &[&str] = &[
    "crates/szx-core/src/decode.rs",
    "crates/szx-core/src/dekernels.rs",
    "crates/szx-core/src/bitio.rs",
    "crates/szx-core/src/archive.rs",
    "crates/szx-core/src/stream.rs",
    "crates/szx-core/src/streaming.rs",
    // The SIMD dispatch layer parses non-constant payload headers before
    // handing validated slices to the backends (which sit below the
    // validation boundary, like kernels.rs).
    "crates/szx-core/src/simd/mod.rs",
];

/// Kernel modules whose offset arithmetic must annotate narrowing casts.
/// The SIMD dispatch layer and the x86 backend join the portable kernels:
/// their shift/byte-count arithmetic narrows just the same.
pub const CAST_FILES: &[&str] = &[
    "crates/szx-core/src/kernels.rs",
    "crates/szx-core/src/dekernels.rs",
    "crates/szx-core/src/simd/mod.rs",
    "crates/szx-core/src/simd/x86.rs",
    "crates/szx-core/src/simd/neon.rs",
];

/// Lock-free modules and the atomic fields in them that publish other
/// state: the trace buffer's `len` guards `UnsafeCell` slot contents, the
/// zone slot's `gen` is the seqlock generation guarding the profiler's
/// stack frames. Each must pair a release store with an acquire load; any
/// relaxed operation on them needs an `// ORDERING:` justification (and,
/// for relaxed *stores*, a release `fence` in the module — the seqlock
/// write-entry pattern, where the fence does the publishing).
pub const ATOMIC_PROTOCOL_MODULES: &[(&str, &[&str])] = &[
    ("crates/szx-telemetry/src/trace.rs", &["len"]),
    ("crates/szx-telemetry/src/zones.rs", &["gen"]),
];

/// Run every per-file rule on `file`.
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    unsafe_hygiene(file, findings, counts);
    if DECODE_PATH.contains(&file.rel_path.as_str()) {
        panic_freedom(file, findings, counts);
    }
    if CAST_FILES.contains(&file.rel_path.as_str()) {
        cast_notes(file, findings, counts);
    }
    if let Some(&(_, fields)) = ATOMIC_PROTOCOL_MODULES
        .iter()
        .find(|(m, _)| *m == file.rel_path)
    {
        atomics_protocol(file, fields, findings, counts);
    }
}

/// Cross-file rule: crate roots carry their lint attributes. `files` is the
/// full scanned set.
pub fn check_crate_attrs(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let find = |rel: &str| files.iter().find(|f| f.rel_path == rel);
    let declares = |f: &SourceFile, attr: &str| {
        f.lines
            .iter()
            .any(|l| l.code.replace(' ', "").contains(attr))
    };
    let mut require =
        |root: &'static str, rule: &'static str, attr: &str, missing: &str| match find(root) {
            Some(f) if declares(f, attr) => {}
            Some(_) => findings.push(Finding::new(rule, root, 1, missing)),
            None => findings.push(Finding::new(
                rule,
                root,
                1,
                "expected crate root not found under the audit root",
            )),
        };
    for &root in FORBID_UNSAFE_ROOTS {
        require(
            root,
            "forbid-unsafe",
            "#![forbid(unsafe_code)]",
            "crate root is missing #![forbid(unsafe_code)]",
        );
    }
    for &root in DENY_UNSAFE_OP_ROOTS {
        require(
            root,
            "deny-unsafe-op",
            "#![deny(unsafe_op_in_unsafe_fn)]",
            "crate root is missing #![deny(unsafe_op_in_unsafe_fn)]",
        );
    }
    for &root in DENY_UNSAFE_CODE_ROOTS {
        require(
            root,
            "deny-unsafe-code",
            "#![deny(unsafe_code)]",
            "crate root is missing #![deny(unsafe_code)]",
        );
    }
}

/// Cross-file rule: every call of a `#[target_feature]` backend sits behind
/// a `// SAFETY:` note that names the runtime feature-detection guard.
///
/// Definitions are collected from the files under
/// [`UNSAFE_ALLOWLIST_PREFIXES`]; call sites are matched as
/// `<backend-module>::<fn>(` in the *other* prefix files (the dispatch
/// layer). Calls inside a defining file are exempt — there they occur
/// inside functions carrying the same `#[target_feature]` set, where the
/// compiler itself proves the features present. The note must contain the
/// word "detect" (as in `is_x86_feature_detected!` / "runtime detection")
/// so a generic justification cannot satisfy the rule.
pub fn check_target_feature_guards(
    files: &[SourceFile],
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    let in_prefix = |f: &SourceFile| {
        UNSAFE_ALLOWLIST_PREFIXES
            .iter()
            .any(|p| f.rel_path.starts_with(p))
    };
    // (qualified call pattern, fn name) for every target-feature fn.
    let mut backends: Vec<(String, String)> = Vec::new();
    let mut defining: Vec<&str> = Vec::new();
    for file in files.iter().filter(|f| in_prefix(f)) {
        let stem = file
            .rel_path
            .rsplit('/')
            .next()
            .unwrap_or_default()
            .trim_end_matches(".rs");
        let mut defines = false;
        for (i, line) in file.lines.iter().enumerate() {
            if !line.code.contains("#[target_feature(") {
                continue;
            }
            defines = true;
            // The fn item follows the attribute (possibly after more
            // attributes); take the first `fn <name>` within reach.
            for j in i + 1..file.lines.len().min(i + 4) {
                if let Some(at) = file.lines[j].code.find("fn ") {
                    let name = leading_ident(&file.lines[j].code[at + 3..]);
                    if !name.is_empty() {
                        backends.push((format!("{stem}::{name}"), name));
                    }
                    break;
                }
            }
        }
        if defines {
            defining.push(&file.rel_path);
        }
    }
    for file in files.iter().filter(|f| in_prefix(f)) {
        if defining.contains(&file.rel_path.as_str()) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            for (qualified, name) in &backends {
                let mut from = 0usize;
                while let Some(at) = line.code[from..].find(qualified.as_str()) {
                    let abs = from + at;
                    from = abs + qualified.len();
                    let before_ok = !line.code[..abs]
                        .chars()
                        .next_back()
                        .is_some_and(is_ident_char);
                    let called = line.code[from..].trim_start().starts_with('(');
                    if !before_ok || !called {
                        continue;
                    }
                    if detection_noted(file, i) {
                        counts.feature_guards += 1;
                    } else {
                        findings.push(Finding::new(
                            "target-feature-guard",
                            &file.rel_path,
                            i + 1,
                            &format!(
                                "call to `#[target_feature]` backend `{name}` without a \
                                 `// SAFETY:` note naming the runtime detection guard"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Is there a `// SAFETY:` note mentioning detection on or directly above
/// line `idx`, or above the enclosing `unsafe {` opener within three lines
/// (rustfmt puts multi-line unsafe blocks' openers on their own line)?
fn detection_noted(file: &SourceFile, idx: usize) -> bool {
    (idx.saturating_sub(3)..=idx).any(|j| {
        let mut text = file.comment_above(j);
        text.push_str(&file.lines[j].comment);
        text.contains("SAFETY:") && text.to_ascii_lowercase().contains("detect")
    })
}

/// `unsafe` only in the allowlist, and there only with a `// SAFETY:`
/// justification on or directly above the site.
fn unsafe_hygiene(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    let allowed = UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str())
        || UNSAFE_ALLOWLIST_PREFIXES
            .iter()
            .any(|p| file.rel_path.starts_with(p));
    for (i, line) in file.lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        counts.unsafe_sites += 1;
        if !allowed {
            findings.push(Finding::new(
                "unsafe-allowlist",
                &file.rel_path,
                i + 1,
                "`unsafe` outside the allowlisted unsafe surfaces",
            ));
        } else if file.annotated(i, "SAFETY:") {
            counts.safety_comments += 1;
        } else {
            findings.push(Finding::new(
                "unsafe-safety",
                &file.rel_path,
                i + 1,
                "unsafe site without a `// SAFETY:` justification",
            ));
        }
    }
}

/// Panic vectors on the untrusted decode path: `.unwrap()` / `.expect(` /
/// panicking macros / slice indexing without `.get`. Suppressed (and
/// counted) by a `// PANIC-OK:` comment on or directly above the line.
fn panic_freedom(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    const MACROS: &[&str] = &[
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
        "assert!",
        "assert_eq!",
        "assert_ne!",
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let mut hits: Vec<&str> = Vec::new();
        if line.code.contains(".unwrap()") {
            hits.push("`.unwrap()`");
        }
        if line.code.contains(".expect(") {
            hits.push("`.expect(...)`");
        }
        for m in MACROS {
            if has_macro(&line.code, m) {
                hits.push(m);
            }
        }
        if has_index_expr(&line.code) {
            hits.push("slice index without `.get`");
        }
        if hits.is_empty() {
            continue;
        }
        if file.annotated(i, "PANIC-OK:") {
            counts.panic_ok += hits.len();
        } else {
            for h in hits {
                findings.push(Finding::new(
                    "panic-path",
                    &file.rel_path,
                    i + 1,
                    &format!("{h} on the untrusted decode path (no `// PANIC-OK:` note)"),
                ));
            }
        }
    }
}

/// Narrowing `as` casts in kernel offset arithmetic need a `// CAST:` note
/// stating why the value fits.
fn cast_notes(file: &SourceFile, findings: &mut Vec<Finding>, counts: &mut Counts) {
    const NARROW: &[&str] = &["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let mut sites = 0usize;
        for pat in NARROW {
            let mut from = 0usize;
            while let Some(at) = line.code[from..].find(pat) {
                let abs = from + at;
                let before_ok =
                    abs == 0 || !is_ident_char(line.code[..abs].chars().next_back().unwrap_or(' '));
                let after = line.code[abs + pat.len()..].chars().next().unwrap_or(' ');
                if before_ok && !is_ident_char(after) {
                    sites += 1;
                }
                from = abs + pat.len();
            }
        }
        if sites == 0 {
            continue;
        }
        if file.annotated(i, "CAST:") {
            counts.cast_notes += sites;
        } else {
            findings.push(Finding::new(
                "cast-note",
                &file.rel_path,
                i + 1,
                "narrowing `as` cast in kernel arithmetic without a `// CAST:` note",
            ));
        }
    }
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

/// One atomic operation found in the trace module.
#[derive(Debug)]
struct AtomicOp {
    field: String,
    kind: OpKind,
    ordering: String,
    line: usize,
}

/// The lock-free publish protocol: `fields` guard other state (trace slot
/// contents, profiler stack frames) and must release-store and
/// acquire-load; a relaxed store would let readers observe torn data, and
/// a relaxed cross-thread load would read state before its writes are
/// visible. Two justified exceptions, both requiring an `// ORDERING:`
/// note: owner-thread relaxed *loads* (a thread always sees its own
/// stores), and relaxed *stores* in a module carrying a release `fence`
/// (the seqlock write-entry pattern — the fence, not the store, does the
/// publishing, as in the zone slot's odd-generation store).
fn atomics_protocol(
    file: &SourceFile,
    fields: &[&str],
    findings: &mut Vec<Finding>,
    counts: &mut Counts,
) {
    let has_release_fence = file
        .lines
        .iter()
        .enumerate()
        .any(|(i, l)| !file.in_test[i] && l.code.contains("fence(Ordering::Release)"));
    let mut ops: Vec<AtomicOp> = Vec::new();
    const METHODS: &[(&str, OpKind)] = &[
        (".load(", OpKind::Load),
        (".store(", OpKind::Store),
        (".swap(", OpKind::Rmw),
        (".fetch_add(", OpKind::Rmw),
        (".fetch_sub(", OpKind::Rmw),
        (".compare_exchange(", OpKind::Rmw),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for &(pat, kind) in METHODS {
            let mut from = 0usize;
            while let Some(at) = line.code[from..].find(pat) {
                let abs = from + at;
                // When rustfmt wraps the receiver onto its own line
                // (`self.len\n    .store(...)`), the field identifier sits
                // on the nearest preceding non-blank code line.
                let mut field = trailing_ident(line.code[..abs].trim_end());
                if field.is_empty() {
                    for j in (i.saturating_sub(3)..i).rev() {
                        let t = file.lines[j].code.trim_end();
                        if !t.is_empty() {
                            field = trailing_ident(t);
                            break;
                        }
                    }
                }
                // The Ordering argument may sit on a continuation line when
                // rustfmt wraps the call.
                let ordering = (i..file.lines.len().min(i + 4))
                    .find_map(|j| {
                        let code = &file.lines[j].code;
                        let start = if j == i { abs } else { 0 };
                        code[start..]
                            .find("Ordering::")
                            .map(|o| leading_ident(&code[start + o + "Ordering::".len()..]))
                    })
                    .unwrap_or_default();
                ops.push(AtomicOp {
                    field,
                    kind,
                    ordering,
                    line: i + 1,
                });
                from = abs + pat.len();
            }
        }
    }

    for field in fields {
        let field_ops: Vec<&AtomicOp> = ops.iter().filter(|o| &o.field == field).collect();
        if field_ops.is_empty() {
            continue;
        }
        for op in &field_ops {
            match op.kind {
                OpKind::Store | OpKind::Rmw if op.ordering == "Relaxed" => {
                    if has_release_fence && file.annotated(op.line - 1, "ORDERING:") {
                        counts.ordering_notes += 1;
                    } else {
                        findings.push(Finding::new(
                            "atomics-protocol",
                            &file.rel_path,
                            op.line,
                            &format!(
                                "relaxed store to publish field `{field}` — contents \
                                 published without release ordering (a seqlock-style \
                                 store needs both a release fence in the module and an \
                                 `// ORDERING:` note)"
                            ),
                        ));
                    }
                }
                OpKind::Load if op.ordering == "Relaxed" => {
                    if file.annotated(op.line - 1, "ORDERING:") {
                        counts.ordering_notes += 1;
                    } else {
                        findings.push(Finding::new(
                            "atomics-protocol",
                            &file.rel_path,
                            op.line,
                            &format!(
                                "relaxed load of publish field `{field}` without an \
                                 `// ORDERING:` note (owner-thread reads must be justified)"
                            ),
                        ));
                    }
                }
                _ if op.ordering.is_empty() => {
                    findings.push(Finding::new(
                        "atomics-protocol",
                        &file.rel_path,
                        op.line,
                        &format!("atomic op on `{field}` without an explicit Ordering"),
                    ));
                }
                _ => {}
            }
        }
        let has_release_store = field_ops
            .iter()
            .any(|o| o.kind != OpKind::Load && (o.ordering == "Release" || o.ordering == "SeqCst"));
        let has_acquire_load = field_ops
            .iter()
            .any(|o| o.kind == OpKind::Load && (o.ordering == "Acquire" || o.ordering == "SeqCst"));
        if !(has_release_store && has_acquire_load) {
            findings.push(Finding::new(
                "atomics-protocol",
                &file.rel_path,
                field_ops[0].line,
                &format!(
                    "publish field `{field}` lacks a release-store/acquire-load pair \
                     (stores: {}, loads: {})",
                    field_ops.iter().filter(|o| o.kind != OpKind::Load).count(),
                    field_ops.iter().filter(|o| o.kind == OpKind::Load).count(),
                ),
            ));
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Word-boundary search for an identifier-like token.
fn has_word(code: &str, word: &str) -> bool {
    let mut from = 0usize;
    while let Some(at) = code[from..].find(word) {
        let abs = from + at;
        let before = code[..abs].chars().next_back();
        let after = code[abs + word.len()..].chars().next();
        if !before.is_some_and(is_ident_char) && !after.is_some_and(is_ident_char) {
            return true;
        }
        from = abs + word.len();
    }
    false
}

/// Macro-call search: `name` must not be preceded by an identifier char
/// (so `assert!` does not match inside `debug_assert!`).
fn has_macro(code: &str, name: &str) -> bool {
    let mut from = 0usize;
    while let Some(at) = code[from..].find(name) {
        let abs = from + at;
        if !code[..abs].chars().next_back().is_some_and(is_ident_char) {
            return true;
        }
        from = abs + name.len();
    }
    false
}

/// Does the line contain an index expression `expr[...]`? A `[` counts when
/// the previous non-space character ends an expression (identifier, `)`,
/// `]`), except when that identifier is a lifetime (`&'a [u8]`).
fn has_index_expr(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = chars[j - 1];
        if prev == ')' || prev == ']' {
            return true;
        }
        if is_ident_char(prev) {
            // Walk back over the identifier; a leading `'` makes it a
            // lifetime, and a keyword (`&mut [F]`, `dyn [..]`, `x in [..]`)
            // starts a type or expression — neither is an indexable value.
            let mut k = j - 1;
            while k > 0 && is_ident_char(chars[k - 1]) {
                k -= 1;
            }
            if k > 0 && chars[k - 1] == '\'' {
                continue;
            }
            const KEYWORDS: &[&str] = &[
                "mut", "dyn", "in", "as", "return", "break", "else", "match", "if", "while",
                "impl", "where", "move", "ref", "const", "static", "let", "loop",
            ];
            let ident: String = chars[k..j].iter().collect();
            if !KEYWORDS.contains(&ident.as_str()) {
                return true;
            }
        }
    }
    false
}

/// The identifier ending `s` (e.g. `"self.len"` → `"len"`).
fn trailing_ident(s: &str) -> String {
    s.chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// The identifier starting `s`.
fn leading_ident(s: &str) -> String {
    s.chars().take_while(|&c| is_ident_char(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::parse_source;

    fn run_on(rel_path: &str, src: &str) -> (Vec<Finding>, Counts) {
        let file = parse_source(rel_path, src);
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_file(&file, &mut findings, &mut counts);
        (findings, counts)
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let (f, c) = run_on("crates/szx-core/src/lib.rs", "unsafe { boom() }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-allowlist");
        assert_eq!(c.unsafe_sites, 1);
    }

    #[test]
    fn allowlisted_unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { go() } }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", bad);
        assert!(f.iter().any(|x| x.rule == "unsafe-safety"), "{f:?}");

        let good = "// SAFETY: the owner thread is the only writer.\nfn f() { unsafe { go() } }\n";
        let (f, c) = run_on("crates/szx-telemetry/src/trace.rs", good);
        assert!(f.iter().all(|x| x.rule != "unsafe-safety"), "{f:?}");
        assert_eq!(c.safety_comments, 1);
    }

    /// Allowlist review for the observability layer: the resource-sampler
    /// thread, exporters, manifest, snapshot, and progress modules are pure
    /// safe code, so `szx-telemetry` keeps its `unsafe` confined to the two
    /// long-audited files — nothing new earns an allowance.
    #[test]
    fn observability_modules_need_no_unsafe_allowance() {
        assert_eq!(
            UNSAFE_ALLOWLIST,
            &[
                "crates/szx-telemetry/src/trace.rs",
                "crates/szx-telemetry/src/json.rs",
            ]
        );
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for module in ["snapshot", "export", "resource", "manifest", "progress"] {
            let rel = format!("crates/szx-telemetry/src/{module}.rs");
            let text = std::fs::read_to_string(root.join(&rel)).expect("module exists");
            let (f, c) = run_on(&rel, &text);
            assert_eq!(c.unsafe_sites, 0, "{rel} must stay safe code");
            assert!(f.iter().all(|x| x.rule != "unsafe-allowlist"), "{f:?}");
        }
    }

    #[test]
    fn unsafe_in_word_or_string_does_not_count() {
        let (f, c) = run_on(
            "crates/szx-core/src/lib.rs",
            "#![forbid(unsafe_code)]\nlet s = \"unsafe\";\n",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.unsafe_sites, 0);
    }

    #[test]
    fn panic_vectors_on_decode_path_are_flagged() {
        let src = "fn parse(b: &[u8]) -> u8 {\n\
                   let x = b.first().unwrap();\n\
                   let y = b[1];\n\
                   panic!(\"no\");\n\
                   }\n";
        let (f, _) = run_on("crates/szx-core/src/decode.rs", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["panic-path"; 3], "{f:?}");
    }

    #[test]
    fn panic_ok_note_suppresses_and_counts() {
        let src = "fn parse(b: &[u8]) -> u8 {\n\
                   // PANIC-OK: caller checked b.len() >= 2 above.\n\
                   let y = b[1] + b.first().unwrap();\n\
                   b[0]\n\
                   }\n";
        let (f, c) = run_on("crates/szx-core/src/decode.rs", src);
        assert_eq!(f.len(), 1, "only the unannotated line remains: {f:?}");
        assert_eq!(c.panic_ok, 2, "index + unwrap on the annotated line");
    }

    #[test]
    fn debug_assert_and_unwrap_or_are_not_panic_vectors() {
        let src = "fn f(v: &[u8]) {\n\
                   debug_assert!(v.len() > 1);\n\
                   debug_assert_eq!(v.len(), 2);\n\
                   let _ = v.first().copied().unwrap_or(0);\n\
                   let _ = v.first().copied().unwrap_or_default();\n\
                   }\n";
        let (f, _) = run_on("crates/szx-core/src/decode.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lifetime_slices_and_attributes_are_not_index_exprs() {
        let src = "#[derive(Debug)]\n\
                   pub struct S<'a> { pub b: &'a [u8], pub n: [u8; 4] }\n\
                   fn f(x: &'static [u8]) -> Vec<u8> { vec![0; 4] }\n";
        let (f, _) = run_on("crates/szx-core/src/decode.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert!(has_index_expr("let x = data[i];"));
        assert!(has_index_expr("f()[0]"));
        assert!(!has_index_expr("let a: [u8; 8] = x;"));
    }

    #[test]
    fn test_modules_are_exempt_from_panic_rules() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { x[0].unwrap(); }\n\
                   }\n";
        let (f, _) = run_on("crates/szx-core/src/decode.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn narrowing_casts_need_cast_notes() {
        let src = "fn f(x: u64) -> u8 {\n\
                   let a = x as u8;\n\
                   // CAST: leading_zeros() <= 64 fits in u8.\n\
                   let b = (x.leading_zeros() >> 3) as u8;\n\
                   let wide = a as u64;\n\
                   a + b\n\
                   }\n";
        let (f, c) = run_on("crates/szx-core/src/kernels.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cast-note");
        assert_eq!(f[0].line, 2);
        assert_eq!(c.cast_notes, 1);
    }

    #[test]
    fn relaxed_publish_store_is_flagged() {
        let src = "fn push(&self) {\n\
                   let n = self.len.load(Ordering::Acquire);\n\
                   self.len.store(n + 1, Ordering::Relaxed);\n\
                   }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "atomics-protocol" && x.line == 3),
            "{f:?}"
        );
    }

    #[test]
    fn release_acquire_pair_passes() {
        let src = "fn push(&self) {\n\
                   // ORDERING: owner-thread read; only this thread stores len.\n\
                   let n = self.len.load(Ordering::Relaxed);\n\
                   self.len.store(n + 1, Ordering::Release);\n\
                   }\n\
                   fn drain(&self) {\n\
                   let n = self.len.load(Ordering::Acquire);\n\
                   self.len.store(0, Ordering::Release);\n\
                   }\n";
        let (f, c) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.ordering_notes, 1);
    }

    #[test]
    fn seqlock_gen_protocol_passes_with_fence_and_notes() {
        // The zone-slot pattern: relaxed odd store justified by a release
        // fence + note, even store Release, reader Acquire + fenced
        // relaxed re-read. Zero findings, every relaxed op counted.
        let src = "fn publish(&self) {\n\
                   // ORDERING: owner-thread read of its own last value.\n\
                   let g = self.gen.load(Ordering::Relaxed);\n\
                   // ORDERING: odd store published by the fence below.\n\
                   self.gen.store(g + 1, Ordering::Relaxed);\n\
                   fence(Ordering::Release);\n\
                   self.gen.store(g + 2, Ordering::Release);\n\
                   }\n\
                   fn snapshot(&self) {\n\
                   let g1 = self.gen.load(Ordering::Acquire);\n\
                   fence(Ordering::Acquire);\n\
                   // ORDERING: re-read ordered by the fence above.\n\
                   let _ = self.gen.load(Ordering::Relaxed);\n\
                   }\n";
        let (f, c) = run_on("crates/szx-telemetry/src/zones.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(c.ordering_notes, 3);
    }

    #[test]
    fn seqlock_relaxed_store_needs_both_fence_and_note() {
        // A note without any release fence in the module: the store is
        // not actually published by anything — flagged.
        let noteless_fence = "fn f(&self) {\n\
                              self.gen.store(1, Ordering::Relaxed);\n\
                              fence(Ordering::Release);\n\
                              self.gen.store(2, Ordering::Release);\n\
                              let _ = self.gen.load(Ordering::Acquire);\n\
                              }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/zones.rs", noteless_fence);
        assert!(
            f.iter()
                .any(|x| x.rule == "atomics-protocol" && x.line == 2),
            "{f:?}"
        );
        let fenceless_note = "fn f(&self) {\n\
                              // ORDERING: claims a fence that is not there.\n\
                              self.gen.store(1, Ordering::Relaxed);\n\
                              self.gen.store(2, Ordering::Release);\n\
                              let _ = self.gen.load(Ordering::Acquire);\n\
                              }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/zones.rs", fenceless_note);
        assert!(
            f.iter()
                .any(|x| x.rule == "atomics-protocol" && x.line == 3),
            "{f:?}"
        );
    }

    #[test]
    fn missing_acquire_load_breaks_the_pair() {
        let src = "fn f(&self) {\n\
                   self.len.store(1, Ordering::Release);\n\
                   let _ = self.len.load(Ordering::Acquire);\n\
                   }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(f.is_empty(), "{f:?}");
        let src = "fn f(&self) { self.len.store(1, Ordering::Release); }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(
            f.iter()
                .any(|x| x.message.contains("release-store/acquire-load")),
            "{f:?}"
        );
    }

    #[test]
    fn wrapped_ordering_argument_is_found_on_continuation_line() {
        let src = "fn f(&self) {\n\
                   self.len\n\
                   .store(\n\
                   n + 1,\n\
                   Ordering::Release,\n\
                   );\n\
                   let _ = self.len.load(Ordering::Acquire);\n\
                   }\n";
        let (f, _) = run_on("crates/szx-telemetry/src/trace.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_attr_rule_reports_missing_roots() {
        let present = parse_source(
            "crates/szx-core/src/lib.rs",
            "#![deny(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n",
        );
        let mut findings = Vec::new();
        check_crate_attrs(&[present], &mut findings);
        // szx-core passes both deny checks; every forbid root and the
        // telemetry deny root are missing from the set.
        assert!(findings
            .iter()
            .all(|f| f.path != "crates/szx-core/src/lib.rs"));
        assert_eq!(findings.len(), FORBID_UNSAFE_ROOTS.len() + 1);
    }

    #[test]
    fn simd_prefix_is_allowlisted_but_still_needs_safety() {
        let src = "// SAFETY: caller proved the pointer in bounds.\n\
                   let x = unsafe { load(p) };\n\
                   let y = unsafe { load(q) };\n";
        let (f, c) = run_on("crates/szx-core/src/simd/x86.rs", src);
        assert_eq!(c.unsafe_sites, 2);
        assert_eq!(c.safety_comments, 1);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-safety");
        assert_eq!(f[0].line, 3);
    }

    fn tf_backend() -> SourceFile {
        parse_source(
            "crates/szx-core/src/simd/x86.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             pub(super) fn scan8(d: &[f32]) {}\n\
             fn helper() { scan8(&[]) }\n",
        )
    }

    #[test]
    fn guarded_target_feature_call_passes_and_counts() {
        let caller = parse_source(
            "crates/szx-core/src/simd/mod.rs",
            "// SAFETY: ready() confirmed AVX2 via runtime feature detection.\n\
             let r = unsafe { x86::scan8(d) };\n",
        );
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_target_feature_guards(&[tf_backend(), caller], &mut findings, &mut counts);
        // The intra-backend `scan8(&[])` call is exempt (same-feature
        // context); the dispatch-layer call is counted once.
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(counts.feature_guards, 1);
    }

    #[test]
    fn unguarded_target_feature_call_is_flagged() {
        // A SAFETY note that never names the detection guard does not
        // satisfy the rule.
        let caller = parse_source(
            "crates/szx-core/src/simd/mod.rs",
            "// SAFETY: trust me.\nlet r = unsafe { x86::scan8(d) };\n",
        );
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_target_feature_guards(&[tf_backend(), caller], &mut findings, &mut counts);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "target-feature-guard");
        assert_eq!(counts.feature_guards, 0);
    }

    #[test]
    fn multiline_unsafe_block_note_is_found_from_the_call_line() {
        let caller = parse_source(
            "crates/szx-core/src/simd/mod.rs",
            "// SAFETY: coder_ready() confirmed AVX2 by runtime detection.\n\
             unsafe {\n\
                 x86::scan8(\n\
                     d,\n\
                 )\n\
             };\n",
        );
        let mut findings = Vec::new();
        let mut counts = Counts::default();
        check_target_feature_guards(&[tf_backend(), caller], &mut findings, &mut counts);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(counts.feature_guards, 1);
    }
}
