//! Audit report model and the deterministic emitters.
//!
//! The JSON report is fully deterministic — findings are sorted, counters
//! are integers, and there is no timestamp — so the committed
//! `results/AUDIT.json` stays byte-stable across machines and CI can verify
//! freshness with a plain `git diff --exit-code`.
//!
//! Schema `szx-audit/2`: findings carry a **stable fingerprint** — FNV-1a
//! over `rule + symbol path + whitespace-normalized snippet` — so a finding
//! survives unrelated edits (line drift, file reshuffles) and the
//! `--baseline` mode can distinguish *new* findings from known ones.
//! Call-graph findings additionally carry the full offending call chain.

use std::fmt::Write as _;

/// Every rule the audit can emit, in report order. Keep in sync with the
/// rule table in `rules/mod.rs` and the SARIF driver metadata.
pub const RULE_IDS: &[&str] = &[
    "unsafe-allowlist",
    "unsafe-safety",
    "forbid-unsafe",
    "deny-unsafe-op",
    "deny-unsafe-code",
    "target-feature-guard",
    "panic-reach",
    "hot-loop-alloc",
    "checked-arith",
    "atomics-protocol",
    "cast-note",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (see `rules` module docs).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Fully qualified symbol the finding sits in (the file path when the
    /// finding has no enclosing function).
    pub symbol: String,
    /// Stable identity: `fnv1a64(rule \0 symbol \0 normalized snippet)`,
    /// 16 hex digits.
    pub fingerprint: String,
    /// For call-graph rules: the chain from the entry point to the
    /// offending function, `sym (path:line)` per step. Empty otherwise.
    pub chain: Vec<String>,
}

impl Finding {
    /// A finding without function context: the symbol is the path and the
    /// snippet is the message (crate-attribute rules, where there is no
    /// meaningful source line to normalize).
    pub fn new(rule: &'static str, path: &str, line: usize, message: &str) -> Self {
        Finding::in_symbol(rule, path, line, path, message, message)
    }

    /// A finding anchored to `symbol` with `snippet` as the normalized
    /// fingerprint payload (pass the offending line's code text).
    pub fn in_symbol(
        rule: &'static str,
        path: &str,
        line: usize,
        symbol: &str,
        snippet: &str,
        message: &str,
    ) -> Self {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message: message.to_string(),
            symbol: symbol.to_string(),
            fingerprint: fingerprint(rule, symbol, snippet),
            chain: Vec::new(),
        }
    }

    pub fn with_chain(mut self, chain: Vec<String>) -> Self {
        self.chain = chain;
        self
    }
}

/// Stable finding identity: FNV-1a 64 over rule, symbol path, and the
/// whitespace-normalized snippet. Line numbers deliberately excluded.
pub fn fingerprint(rule: &str, symbol: &str, snippet: &str) -> String {
    let normalized: String = snippet.split_whitespace().collect::<Vec<_>>().join(" ");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in [rule, "\0", symbol, "\0", &normalized] {
        for b in chunk.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Aggregate counters: what the audit *saw*, not just what it flagged.
/// Annotation counts make silent suppression visible in the report.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counts {
    pub files_scanned: usize,
    pub lines_scanned: usize,
    pub unsafe_sites: usize,
    pub safety_comments: usize,
    pub panic_ok: usize,
    pub cast_notes: usize,
    pub ordering_notes: usize,
    /// `#[target_feature]` call sites verified to carry a SAFETY note
    /// naming the runtime detection guard.
    pub feature_guards: usize,
    /// Functions indexed by the item parser.
    pub fns_indexed: usize,
    /// Resolved call-graph edges.
    pub call_edges: usize,
    /// Decode-side panic-reachability entry points.
    pub decode_entries: usize,
    /// Hot-loop (kernel/SIMD) entry points.
    pub hot_entries: usize,
    /// `// ALLOC-OK:` suppressions honored in hot loops.
    pub alloc_ok: usize,
    /// `// ARITH-OK:` suppressions honored on parse paths.
    pub arith_ok: usize,
}

/// A full audit run: findings (sorted) plus the counters.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub counts: Counts,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per rule id, in [`RULE_IDS`] order.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        RULE_IDS
            .iter()
            .map(|&r| (r, self.findings.iter().filter(|f| f.rule == r).count()))
            .collect()
    }

    /// Findings whose fingerprint is NOT in `baseline` — the set a
    /// `--baseline` run gates on.
    pub fn new_findings<'a>(&'a self, baseline: &[String]) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| !baseline.iter().any(|b| b == &f.fingerprint))
            .collect()
    }

    /// `path:line: [rule] message` diagnostics plus per-rule counts and a
    /// summary block. Call-graph findings print their full chain.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            if !f.chain.is_empty() {
                let _ = writeln!(out, "    call chain:");
                for (i, step) in f.chain.iter().enumerate() {
                    let _ = writeln!(out, "      {}{}", "  ".repeat(i), step);
                }
            }
        }
        let c = &self.counts;
        let _ = writeln!(
            out,
            "szx-audit: {} finding(s) in {} files / {} lines ({} fns, {} call edges)",
            self.findings.len(),
            c.files_scanned,
            c.lines_scanned,
            c.fns_indexed,
            c.call_edges
        );
        let per_rule: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        let _ = writeln!(out, "  per rule: {}", per_rule.join(", "));
        let _ = writeln!(
            out,
            "  entry points: {} decode, {} hot-loop",
            c.decode_entries, c.hot_entries
        );
        let _ = writeln!(
            out,
            "  unsafe sites: {} ({} with SAFETY), PANIC-OK: {}, ALLOC-OK: {}, ARITH-OK: {}, \
             CAST: {}, ORDERING: {}, feature guards: {}",
            c.unsafe_sites,
            c.safety_comments,
            c.panic_ok,
            c.alloc_ok,
            c.arith_ok,
            c.cast_notes,
            c.ordering_notes,
            c.feature_guards
        );
        out
    }

    /// Deterministic, human-diffable JSON (schema `szx-audit/2`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"szx-audit/2\",\n");
        let c = &self.counts;
        let _ = write!(
            out,
            "  \"counts\": {{\n    \"files_scanned\": {},\n    \"lines_scanned\": {},\n    \
             \"unsafe_sites\": {},\n    \"safety_comments\": {},\n    \"panic_ok\": {},\n    \
             \"cast_notes\": {},\n    \"ordering_notes\": {},\n    \"feature_guards\": {},\n    \
             \"fns_indexed\": {},\n    \"call_edges\": {},\n    \"decode_entries\": {},\n    \
             \"hot_entries\": {},\n    \"alloc_ok\": {},\n    \"arith_ok\": {}\n  }},\n",
            c.files_scanned,
            c.lines_scanned,
            c.unsafe_sites,
            c.safety_comments,
            c.panic_ok,
            c.cast_notes,
            c.ordering_notes,
            c.feature_guards,
            c.fns_indexed,
            c.call_edges,
            c.decode_entries,
            c.hot_entries,
            c.alloc_ok,
            c.arith_ok
        );
        out.push_str("  \"rules\": {");
        for (i, (rule, n)) in self.rule_counts().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json_string(rule), n);
        }
        out.push_str("\n  },\n");
        let _ = writeln!(out, "  \"finding_count\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"symbol\": {}, \
                 \"fingerprint\": {}, \"message\": {}",
                json_string(&f.path),
                f.line,
                json_string(f.rule),
                json_string(&f.symbol),
                json_string(&f.fingerprint),
                json_string(&f.message)
            );
            if !f.chain.is_empty() {
                out.push_str(", \"chain\": [");
                for (j, step) in f.chain.iter().enumerate() {
                    let sep = if j == 0 { "" } else { ", " };
                    let _ = write!(out, "{sep}{}", json_string(step));
                }
                out.push(']');
            }
            out.push('}');
        }
        if self.findings.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// Extract every `"fingerprint": "…"` value from a previously written
/// report (the `--baseline` input). A full JSON parse is unnecessary: the
/// emitter above controls the byte format, and fingerprints are plain hex.
pub fn baseline_fingerprints(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    let needle = "\"fingerprint\": \"";
    let mut from = 0usize;
    while let Some(at) = json[from..].find(needle) {
        let start = from + at + needle.len();
        if let Some(end) = json[start..].find('"') {
            out.push(json[start..start + end].to_string());
            from = start + end;
        } else {
            break;
        }
    }
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report::default();
        r.counts.files_scanned = 2;
        r.findings.push(Finding::new(
            "panic-reach",
            "crates/x/src/a.rs",
            7,
            "`.unwrap()` with \"quotes\"\tand tabs",
        ));
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"szx-audit/2\""));
        assert!(a.contains("\\\"quotes\\\"\\tand tabs"));
        assert!(a.contains("\"finding_count\": 1"));
        assert!(a.contains("\"fingerprint\": \""));
        assert!(a.contains("\"panic-reach\": 1"));
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(r.render_text().contains("0 finding(s)"));
    }

    #[test]
    fn fingerprints_ignore_whitespace_and_line_numbers() {
        let a = fingerprint("panic-reach", "szx_core::decode::f", "let x = b [ 0 ] ;");
        let b = fingerprint("panic-reach", "szx_core::decode::f", "let x = b [ 0 ]   ;");
        assert_eq!(a, b);
        let c = fingerprint("panic-reach", "szx_core::decode::g", "let x = b [ 0 ] ;");
        assert_ne!(a, c, "symbol is part of the identity");
        let d = fingerprint("hot-loop-alloc", "szx_core::decode::f", "let x = b [ 0 ] ;");
        assert_ne!(a, d, "rule is part of the identity");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn chains_render_in_text_and_json() {
        let mut r = Report::default();
        r.findings.push(
            Finding::in_symbol(
                "panic-reach",
                "crates/x/src/a.rs",
                3,
                "x::a::helper",
                "b.unwrap()",
                "`.unwrap()` reachable from decode entry",
            )
            .with_chain(vec![
                "x::a::decompress (crates/x/src/a.rs:1)".into(),
                "x::a::helper (crates/x/src/a.rs:3)".into(),
            ]),
        );
        let text = r.render_text();
        assert!(text.contains("call chain:"), "{text}");
        assert!(text.contains("x::a::decompress"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"chain\": ["), "{json}");
    }

    #[test]
    fn baseline_extraction_and_new_finding_diff() {
        let mut r = Report::default();
        r.findings
            .push(Finding::new("cast-note", "crates/x/src/a.rs", 1, "m1"));
        r.findings
            .push(Finding::new("cast-note", "crates/x/src/a.rs", 2, "m2"));
        let json = r.to_json();
        let fps = baseline_fingerprints(&json);
        assert_eq!(fps.len(), 2);
        // Full baseline: nothing new.
        assert!(r.new_findings(&fps).is_empty());
        // Partial baseline: exactly the missing one is new.
        let newf = r.new_findings(&fps[..1]);
        assert_eq!(newf.len(), 1);
        assert_eq!(newf[0].message, "m2");
    }
}
