//! Audit report model and the deterministic emitters.
//!
//! The JSON report is fully deterministic — findings are sorted, counters
//! are integers, and there is no timestamp — so the committed
//! `results/AUDIT.json` stays byte-stable across machines and CI can verify
//! freshness with a plain `git diff --exit-code`.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (see `rules` module docs).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: usize, message: &str) -> Self {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message: message.to_string(),
        }
    }
}

/// Aggregate counters: what the audit *saw*, not just what it flagged.
/// Annotation counts make silent suppression visible in the report.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counts {
    pub files_scanned: usize,
    pub lines_scanned: usize,
    pub unsafe_sites: usize,
    pub safety_comments: usize,
    pub panic_ok: usize,
    pub cast_notes: usize,
    pub ordering_notes: usize,
    /// `#[target_feature]` call sites verified to carry a SAFETY note
    /// naming the runtime detection guard.
    pub feature_guards: usize,
}

/// A full audit run: findings (sorted) plus the counters.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub counts: Counts,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `path:line: [rule] message` diagnostics plus a summary block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        let c = &self.counts;
        let _ = writeln!(
            out,
            "szx-audit: {} finding(s) in {} files / {} lines",
            self.findings.len(),
            c.files_scanned,
            c.lines_scanned
        );
        let _ = writeln!(
            out,
            "  unsafe sites: {} ({} with SAFETY), PANIC-OK: {}, CAST: {}, ORDERING: {}, \
             feature guards: {}",
            c.unsafe_sites,
            c.safety_comments,
            c.panic_ok,
            c.cast_notes,
            c.ordering_notes,
            c.feature_guards
        );
        out
    }

    /// Deterministic, human-diffable JSON (schema `szx-audit/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"szx-audit/1\",\n");
        let c = &self.counts;
        let _ = write!(
            out,
            "  \"counts\": {{\n    \"files_scanned\": {},\n    \"lines_scanned\": {},\n    \
             \"unsafe_sites\": {},\n    \"safety_comments\": {},\n    \"panic_ok\": {},\n    \
             \"cast_notes\": {},\n    \"ordering_notes\": {},\n    \"feature_guards\": {}\n  }},\n",
            c.files_scanned,
            c.lines_scanned,
            c.unsafe_sites,
            c.safety_comments,
            c.panic_ok,
            c.cast_notes,
            c.ordering_notes,
            c.feature_guards
        );
        let _ = writeln!(out, "  \"finding_count\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_string(&f.path),
                f.line,
                json_string(f.rule),
                json_string(&f.message)
            );
        }
        if self.findings.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report::default();
        r.counts.files_scanned = 2;
        r.findings.push(Finding::new(
            "panic-path",
            "crates/x/src/a.rs",
            7,
            "`.unwrap()` with \"quotes\"\tand tabs",
        ));
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"szx-audit/1\""));
        assert!(a.contains("\\\"quotes\\\"\\tand tabs"));
        assert!(a.contains("\"finding_count\": 1"));
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(r.render_text().contains("0 finding(s)"));
    }
}
