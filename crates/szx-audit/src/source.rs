//! Line-oriented lexical model of a Rust source file.
//!
//! The audit rules never need a full parse tree — every invariant they
//! enforce is phrased over *tokens on lines* ("an `unsafe` keyword", "a
//! `.unwrap()` call", "a slice-index bracket") plus the comments around
//! them. What they absolutely do need is to never fire inside string
//! literals or comments, and to know which comment text sits on or above a
//! line (that is where `// SAFETY:` / `// PANIC-OK:` / `// CAST:`
//! justifications live). This module provides exactly that: a small lexer
//! that splits each physical line into its **code** text (string/char
//! literal contents blanked, comments removed) and its **comment** text,
//! and a brace-matching pass that marks `#[cfg(test)]` regions so rules
//! about production code can skip test modules.

/// One physical source line, split into code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and the *contents* of string and
    /// char literals blanked (delimiters are kept, so `x["k"]` still shows
    /// an index expression).
    pub code: String,
    /// Comment text carried by this line — the body of a `//` comment
    /// and/or the part of a `/* */` comment that crosses it.
    pub comment: String,
}

impl Line {
    /// True when the line holds comment text and no code.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    /// True when the line holds neither code nor comment.
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }

    /// True when the line is only an attribute (`#[...]` / `#![...]`),
    /// possibly with a trailing comment.
    pub fn is_attribute_only(&self) -> bool {
        let t = self.code.trim();
        (t.starts_with("#[") || t.starts_with("#![")) && t.ends_with(']')
    }
}

/// A lexed source file plus its test-region map.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the audit root, `/`-separated.
    pub rel_path: String,
    pub lines: Vec<Line>,
    /// `in_test[i]` is true when line `i` sits inside a `#[cfg(test)]`
    /// item (the conventional trailing `mod tests { ... }` block).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Comment text of the contiguous comment block directly above `idx`
    /// (0-based), skipping attribute-only lines, concatenated top-down.
    /// A blank or code-bearing line terminates the block.
    pub fn comment_above(&self, idx: usize) -> String {
        let mut start = idx;
        while start > 0 {
            let prev = &self.lines[start - 1];
            if prev.is_comment_only() || prev.is_attribute_only() {
                start -= 1;
            } else {
                break;
            }
        }
        let mut out = String::new();
        for line in &self.lines[start..idx] {
            out.push_str(&line.comment);
            out.push('\n');
        }
        out
    }

    /// Is the marker (e.g. `"SAFETY:"`) present in this line's own comment
    /// or in the comment block directly above it?
    pub fn annotated(&self, idx: usize, marker: &str) -> bool {
        self.lines[idx].comment.contains(marker) || self.comment_above(idx).contains(marker)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth — Rust block comments nest.
    BlockComment(u32),
    Str,
    /// Number of `#` marks delimiting the raw string.
    RawStr(u32),
}

/// Lex `text` into per-line code/comment channels and mark test regions.
pub fn parse_source(rel_path: &str, text: &str) -> SourceFile {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        code.push(' ');
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' if !prev_is_ident(&chars, i) => {
                        // Possible raw/byte string intro: r", r#", br", b".
                        if let Some((hashes, skip)) = raw_string_intro(&chars, i) {
                            state = if hashes == u32::MAX {
                                State::Str
                            } else {
                                State::RawStr(hashes)
                            };
                            code.push('"');
                            i += skip;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime. A char literal is '\...'
                        // or 'x' (any single scalar followed by a closing
                        // quote); everything else is a lifetime tick.
                        if next == Some('\\') {
                            code.push_str("''");
                            i += 2; // consume '\
                                    // Consume the escaped character itself first
                                    // (`'\''` escapes a quote), then skip the rest
                                    // of the escape body up to the closing quote.
                            if i < chars.len() && chars[i] != '\n' {
                                i += 1;
                            }
                            while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                                i += 1;
                            }
                            // Closing quote — but never swallow a newline: a
                            // malformed literal must still flush the line so
                            // later line numbers stay aligned.
                            if i < chars.len() && chars[i] == '\'' {
                                i += 1;
                            }
                        } else if next.is_some() && chars.get(i + 2).copied() == Some('\'') {
                            code.push_str("''");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character — unless it is a newline
                    // (the `\` line-continuation escape): consuming that
                    // here would merge two physical lines and shift every
                    // later line number, detaching `// SAFETY:`-style
                    // annotations from their sites. Leave the newline for
                    // the flush branch at the top of the loop.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    code.push('"');
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || state != State::Code {
        flush_line!();
    }

    let in_test = mark_test_regions(&lines);
    SourceFile {
        rel_path: rel_path.to_string(),
        lines,
        in_test,
    }
}

/// Is the character before `i` part of an identifier (so `chars[i]` cannot
/// start a raw-string prefix)?
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Match a raw/byte string introduction at `i` (`r"`, `r#"`, `br"`, `b"`,
/// ...). Returns `(hash_count, chars_to_skip)` where `hash_count` is
/// `u32::MAX` for a plain `b"..."` (an ordinary escaped string).
fn raw_string_intro(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    let mut raw = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if !raw {
        // b"..." — an ordinary string with a byte prefix.
        return (chars.get(j) == Some(&'"')).then_some((u32::MAX, j - i + 1));
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j - i + 1))
}

/// Does the `"` at `i` terminate a raw string delimited by `hashes` marks?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Mark every line inside a `#[cfg(test)]` item by matching braces from
/// the attribute forward.
fn mark_test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                in_test[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(text: &str) -> SourceFile {
        parse_source("test.rs", text)
    }

    #[test]
    fn comments_are_split_from_code() {
        let f = lex("let x = 1; // trailing note\n// full line\nlet y = 2;\n");
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
        assert_eq!(f.lines[0].comment.trim(), "trailing note");
        assert!(f.lines[1].is_comment_only());
        assert_eq!(f.lines[2].comment, "");
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = lex("let s = \"unsafe .unwrap() [0] // not code\"; x[i];\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[0].code.contains("not code"));
        assert!(f.lines[0].code.contains("x[i]"), "{:?}", f.lines[0].code);
        assert_eq!(f.lines[0].comment, "");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = lex(r#"let s = "a\"b"; let t = unsafe_tail;"#);
        assert!(f.lines[0].code.contains("unsafe_tail"));
        assert!(!f.lines[0].code.contains("a\\"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = lex("fn f<'a>(x: &'a [u8]) -> char { '[' }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("<'a>"), "{code:?}");
        // The bracket inside the char literal must not leak into code.
        assert!(code.contains("{ '' }"), "{code:?}");
        let f = lex("let c = '\\n'; let idx = v[0];\n");
        assert!(f.lines[0].code.contains("v[0]"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let f = lex("a(); /* one\ntwo /* nested */ still\ntail */ b();\n");
        assert_eq!(f.lines[0].code.trim_end(), "a();");
        assert!(f.lines[1].code.trim().is_empty());
        assert!(f.lines[1].comment.contains("nested"));
        assert!(f.lines[2].code.contains("b();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = lex("let s = r#\"x.unwrap() \"quoted\" [i]\"#; y[j];\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("y[j]"), "{:?}", f.lines[0].code);
        let f = lex("let b = b\"bytes .unwrap()\"; z[k];\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("z[k]"));
    }

    #[test]
    fn test_regions_are_marked_by_brace_matching() {
        let src = "fn prod() { x[0]; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let f = lex(src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn comment_above_gathers_contiguous_block() {
        let src = "let a = 1;\n\
                   // SAFETY: reason one\n\
                   // continued\n\
                   #[inline]\n\
                   unsafe { go() }\n";
        let f = lex(src);
        assert!(f.annotated(4, "SAFETY:"));
        assert!(!f.annotated(0, "SAFETY:"));
        // A blank line breaks the association.
        let src2 = "// SAFETY: stale\n\nunsafe { go() }\n";
        let f2 = lex(src2);
        assert!(!f2.annotated(2, "SAFETY:"));
    }

    #[test]
    fn cfg_test_inside_string_is_ignored() {
        let f = lex("let s = \"#[cfg(test)]\";\nfn prod() {}\n");
        assert!(!f.in_test[0] && !f.in_test[1]);
    }

    #[test]
    fn string_line_continuation_does_not_drift_line_numbers() {
        // `\` at end of line is a string line-continuation escape: the
        // newline must still flush a (string-interior) line, or every
        // later line number shifts and annotations detach from sites.
        let src = "let s = \"abc\\\n   def\";\nx.unwrap();\n";
        let f = lex(src);
        assert_eq!(f.lines.len(), 3, "{:?}", f.lines);
        assert!(f.lines[2].code.contains(".unwrap()"), "{:?}", f.lines);
        assert!(
            !f.lines.iter().any(|l| l.code.contains("def")),
            "string contents leaked into the code channel: {:?}",
            f.lines
        );
    }

    #[test]
    fn quote_char_literal_does_not_leak_a_tick() {
        // `'\''` — the escaped character *is* a quote; the old skip logic
        // treated it as the terminator and leaked the real closing quote
        // into the code channel as a spurious lifetime tick.
        let f = lex("let c = '\\''; let idx = v[0];\n");
        assert!(f.lines[0].code.contains("v[0]"), "{:?}", f.lines[0].code);
        assert!(
            !f.lines[0].code.contains("'' '"),
            "stray tick leaked: {:?}",
            f.lines[0].code
        );
        // Malformed char literal at end of line: the newline still flushes.
        let f = lex("let c = '\\\nx.unwrap();\n");
        assert_eq!(f.lines.len(), 3.min(f.lines.len()).max(2));
        assert!(
            f.lines.iter().skip(1).any(|l| l.code.contains(".unwrap()")),
            "{:?}",
            f.lines
        );
    }

    #[test]
    fn multiline_raw_strings_keep_line_alignment_and_blank_contents() {
        let src = "let s = r##\"line one \"# not closed\nline two .unwrap() [i]\ntail\"##; y.expect(\"m\");\n";
        let f = lex(src);
        assert_eq!(f.lines.len(), 3, "{:?}", f.lines);
        // Interior lines carry no code and no comment.
        assert!(f.lines[1].is_blank(), "{:?}", f.lines[1]);
        assert!(!f.lines[1].code.contains("unwrap"));
        // The close on line 3 returns to the code channel.
        assert!(f.lines[2].code.contains(".expect("), "{:?}", f.lines[2]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let f = lex("let r#type = 1; x[r#type];\nlet b = r#fn();\n");
        assert!(f.lines[0].code.contains("x[r#type]"), "{:?}", f.lines[0]);
        assert!(f.lines[1].code.contains("r#fn()"), "{:?}", f.lines[1]);
    }

    #[test]
    fn raw_strings_ignore_escapes_and_comment_openers() {
        // `\` is not an escape inside a raw string: `r"C:\"` closes at the
        // quote. `//` and `/*` inside raw strings are content, not comments.
        let f = lex("let p = r\"C:\\\"; q.unwrap();\n");
        assert!(f.lines[0].code.contains("q.unwrap()"), "{:?}", f.lines[0]);
        let f = lex("let s = r\"// not a comment /* nor this\"; z[k];\n");
        assert!(f.lines[0].code.contains("z[k]"), "{:?}", f.lines[0]);
        assert!(f.lines[0].comment.is_empty(), "{:?}", f.lines[0]);
    }

    #[test]
    fn deeply_nested_block_comments_track_depth() {
        let src = "a(); /* 1 /* 2 /* 3 */ 2 */ 1 */ b();\n/* /* */ still */ c();\n";
        let f = lex(src);
        assert!(f.lines[0].code.contains("a()") && f.lines[0].code.contains("b()"));
        assert!(!f.lines[0].code.contains('1'), "{:?}", f.lines[0]);
        assert!(f.lines[1].code.contains("c()"), "{:?}", f.lines[1]);
        assert!(f.lines[1].comment.contains("still"));
        // Unbalanced open comment swallows the rest of the file.
        let f = lex("/* /* */ x();\ny();\n");
        assert!(!f.lines[0].code.contains("x()"));
        assert!(!f.lines[1].code.contains("y()"));
    }

    #[test]
    fn quotes_inside_comments_do_not_open_strings() {
        let src = "/* \"not a string */ let x = v[0]; // \"nor here\nlet y = 1;\n";
        let f = lex(src);
        assert!(f.lines[0].code.contains("v[0]"), "{:?}", f.lines[0]);
        assert!(f.lines[1].code.contains("let y"), "{:?}", f.lines[1]);
    }
}
