//! Item-level model of a Rust source file, built on the lexical channels
//! of [`crate::source`].
//!
//! The call-graph rules need more than "tokens on lines": they need to know
//! *which function* a line belongs to, what that function calls, and where
//! its loop bodies are. A full AST is still unnecessary — `fn` items, `impl`
//! blocks, `mod` items, call expressions, and loop bodies can all be
//! recovered from the code channel with token-tree depth tracking, because
//! the lexer has already blanked strings, chars, and comments (every brace
//! in the code channel is a real brace).
//!
//! The parser is deliberately approximate where approximation is safe:
//! closure bodies attribute their calls to the enclosing `fn` (conservative
//! for reachability), struct-literal braces open anonymous blocks, and
//! trait default methods are qualified by the trait name. What it must get
//! right — and what the unit tests pin — is brace balance (a desynced
//! scope stack corrupts every later item) and call-path extraction.

use crate::source::SourceFile;

/// One token of the code channel. `line` is 0-based; `col` is the byte
/// column of the token start, used only for adjacency checks (`<<`).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub line: usize,
    pub col: usize,
    pub kind: Tok,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(String),
    Punct(char),
    Lifetime,
}

impl Token {
    fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
    fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 0-based line of the callee token.
    pub line: usize,
    /// The path as written (`decode_block`, `dekernels::decode_nonconstant_block`,
    /// `Self::parse`), or the bare method name for method calls.
    pub path: String,
    /// True for `.name(...)` receiver calls.
    pub method: bool,
    /// True when the receiver token was literally `self`.
    pub on_self: bool,
}

/// A `+`/`*`/`<<` (or compound-assign) site inside a function body, with
/// the identifier operands the token stream exposes. `lhs`/`rhs` are empty
/// when the operand is a parenthesized expression.
#[derive(Debug, Clone)]
pub struct ArithSite {
    pub line: usize,
    pub op: &'static str,
    pub lhs: String,
    pub rhs: String,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name as written.
    pub name: String,
    /// Fully qualified symbol path: `crate_ident::module::Type::name`.
    pub sym: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based inclusive line range of the body (opening to closing brace).
    pub body: (usize, usize),
    /// True when the item sits in a `#[cfg(test)]` region.
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    /// 0-based inclusive line ranges of loop bodies (`for`/`while`/`loop`),
    /// innermost and outermost both recorded.
    pub loops: Vec<(usize, usize)>,
    pub arith: Vec<ArithSite>,
}

/// Parsed items of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "return", "break", "continue", "let", "mut", "ref", "move", "in", "as",
    "use", "pub", "where", "unsafe", "async", "await", "dyn", "const", "static", "type", "enum",
    "struct", "union", "extern", "crate", "super", "self", "Self", "true", "false", "fn", "mod",
    "impl", "trait", "for", "while", "loop", "box", "yield",
];

/// Tokenize the code channels of `file`.
pub fn tokenize(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // `1.5` — keep the fraction inside one Num token so the
                // `.` is not mistaken for a method-call receiver dot.
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Token {
                    line: li,
                    col: start,
                    kind: Tok::Num(chars[start..i].iter().collect()),
                });
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    line: li,
                    col: start,
                    kind: Tok::Ident(chars[start..i].iter().collect()),
                });
            } else if c == '\'' {
                // The lexer leaves `''` for char literals and `'name` for
                // lifetimes; neither carries information the rules need.
                if chars.get(i + 1) == Some(&'\'') {
                    i += 2;
                } else {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token {
                        line: li,
                        col: i,
                        kind: Tok::Lifetime,
                    });
                }
            } else if c == '"' {
                // Blanked string: skip to the closing delimiter.
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                i += 1;
            } else {
                out.push(Token {
                    line: li,
                    col: i,
                    kind: Tok::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// Module path derived from a workspace-relative file path:
/// `crates/szx-core/src/simd/mod.rs` → `szx_core::simd`.
pub fn module_path_of(rel_path: &str) -> String {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Find the `src` directory owned by a crate dir; the crate ident is
    // the directory before it with `-` mapped to `_`.
    let mut base = String::new();
    let mut rest_start = parts.len();
    for (i, p) in parts.iter().enumerate() {
        if *p == "src" && i > 0 {
            base = parts[i - 1].replace('-', "_");
            rest_start = i + 1;
            break;
        }
    }
    if base.is_empty() {
        // Integration tests, examples, benches: qualify by the path stem so
        // symbols stay unique and recognizably non-library.
        base = parts
            .first()
            .map(|p| p.replace('-', "_"))
            .unwrap_or_default();
        rest_start = 1;
    }
    let mut out = base;
    for p in &parts[rest_start..] {
        let stem = p.trim_end_matches(".rs");
        if stem == "lib" || stem == "main" || stem == "mod" {
            continue;
        }
        out.push_str("::");
        out.push_str(&stem.replace('-', "_"));
    }
    out
}

#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    /// `impl`/`trait` block with the (last-segment) type name.
    Type(String),
    /// Open fn body: index into `fns`.
    Fn(usize),
    /// Loop body: (start line, owning fn index).
    Loop(usize, usize),
    Block,
}

#[derive(Debug, Clone)]
enum Pending {
    Mod(String),
    Type(String),
    Fn {
        name: String,
        sig_line: usize,
    },
    /// Loop keyword seen at this paren depth.
    Loop {
        paren_depth: usize,
    },
}

/// Parse the items of `file`.
pub fn parse_items(file: &SourceFile) -> ParsedFile {
    let toks = tokenize(file);
    let base = module_path_of(&file.rel_path);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut paren_depth = 0usize;
    let mut t = 0usize;

    let current_fn = |scopes: &[Scope]| -> Option<usize> {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(i) => Some(*i),
            _ => None,
        })
    };
    let sym_prefix = |scopes: &[Scope], base: &str| -> String {
        let mut out = base.to_string();
        for s in scopes {
            match s {
                Scope::Mod(m) => {
                    out.push_str("::");
                    out.push_str(m);
                }
                Scope::Type(ty) => {
                    out.push_str("::");
                    out.push_str(ty);
                }
                _ => {}
            }
        }
        out
    };
    let impl_type = |scopes: &[Scope]| -> Option<String> {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Type(ty) => Some(ty.clone()),
            _ => None,
        })
    };

    while t < toks.len() {
        let tok = &toks[t];
        match &tok.kind {
            Tok::Punct('#') => {
                // Attribute: `#[...]` / `#![...]` — skip the bracket tree so
                // `#[derive(Debug)]` is not read as a call.
                let mut j = t + 1;
                if toks.get(j).is_some_and(|x| x.is_punct('!')) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|x| x.is_punct('[')) {
                    let mut depth = 0i64;
                    while j < toks.len() {
                        if toks[j].is_punct('[') {
                            depth += 1;
                        } else if toks[j].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    t = j + 1;
                } else {
                    t += 1;
                }
            }
            Tok::Punct('(') => {
                paren_depth += 1;
                t += 1;
            }
            Tok::Punct(')') => {
                paren_depth = paren_depth.saturating_sub(1);
                t += 1;
            }
            Tok::Punct('{') => {
                let scope = match pending.take() {
                    Some(Pending::Mod(m)) => Scope::Mod(m),
                    Some(Pending::Type(ty)) => Scope::Type(ty),
                    Some(Pending::Fn { name, sig_line }) => {
                        let sym = format!("{}::{}", sym_prefix(&scopes, &base), name);
                        fns.push(FnItem {
                            name,
                            sym,
                            impl_type: impl_type(&scopes),
                            sig_line,
                            body: (tok.line, tok.line),
                            is_test: file.in_test.get(sig_line).copied().unwrap_or(false),
                            calls: Vec::new(),
                            loops: Vec::new(),
                            arith: Vec::new(),
                        });
                        Scope::Fn(fns.len() - 1)
                    }
                    Some(Pending::Loop { paren_depth: pd }) if pd == paren_depth => {
                        match current_fn(&scopes) {
                            Some(f) => Scope::Loop(tok.line, f),
                            None => Scope::Block,
                        }
                    }
                    Some(p @ Pending::Loop { .. }) => {
                        // A `{` inside the loop header's parens (a closure in
                        // the iterator expression): keep waiting for the
                        // body brace at the recorded paren depth.
                        pending = Some(p);
                        Scope::Block
                    }
                    None => Scope::Block,
                };
                scopes.push(scope);
                t += 1;
            }
            Tok::Punct('}') => {
                match scopes.pop() {
                    Some(Scope::Fn(i)) => fns[i].body.1 = tok.line,
                    Some(Scope::Loop(start, f)) => fns[f].loops.push((start, tok.line)),
                    _ => {}
                }
                t += 1;
            }
            Tok::Punct('.') => {
                // Method call: `.name(` or `.name::<T>(`.
                let recv_self = t > 0 && toks[t - 1].ident() == Some("self");
                if let Some(name) = toks.get(t + 1).and_then(|x| x.ident()) {
                    if !KEYWORDS.contains(&name) {
                        let mut j = t + 2;
                        j = skip_turbofish(&toks, j);
                        if toks.get(j).is_some_and(|x| x.is_punct('(')) {
                            if let Some(f) = current_fn(&scopes) {
                                fns[f].calls.push(CallSite {
                                    line: toks[t + 1].line,
                                    path: name.to_string(),
                                    method: true,
                                    on_self: recv_self,
                                });
                            }
                        }
                    }
                }
                t += 1;
            }
            Tok::Punct(op @ ('+' | '*' | '<')) => {
                record_arith(&toks, t, *op, &scopes, &mut fns, current_fn);
                // `<<` is two tokens; advance past the second so it is not
                // re-examined (harmless, but avoids double sites).
                if *op == '<' && is_adjacent_punct(&toks, t, '<') {
                    t += 2;
                } else {
                    t += 1;
                }
            }
            Tok::Ident(id) => {
                let id = id.as_str();
                match id {
                    "mod" => {
                        if let Some(name) = toks.get(t + 1).and_then(|x| x.ident()) {
                            // `mod name;` (out-of-line) sets no pending scope.
                            if toks.get(t + 2).is_some_and(|x| x.is_punct('{')) {
                                pending = Some(Pending::Mod(name.to_string()));
                            }
                            t += 2;
                        } else {
                            t += 1;
                        }
                    }
                    "trait" => {
                        if let Some(name) = toks.get(t + 1).and_then(|x| x.ident()) {
                            pending = Some(Pending::Type(name.to_string()));
                            t += 2;
                        } else {
                            t += 1;
                        }
                    }
                    "impl" => {
                        // Scan the impl header up to its `{`, taking the last
                        // path segment at angle-depth 0; `for` restarts the
                        // capture (`impl Trait for Type`).
                        let mut j = t + 1;
                        let mut angle = 0i64;
                        let mut ty = String::new();
                        let mut in_where = false;
                        while j < toks.len() {
                            match &toks[j].kind {
                                Tok::Punct('{') => break,
                                Tok::Punct(';') => break,
                                Tok::Punct('<') => angle += 1,
                                Tok::Punct('>') => angle -= 1,
                                Tok::Ident(w) if angle == 0 && !in_where => {
                                    if w == "for" {
                                        ty.clear();
                                    } else if w == "where" {
                                        in_where = true;
                                    } else if w != "dyn" && w != "mut" && w != "const" {
                                        ty = w.clone();
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if toks.get(j).is_some_and(|x| x.is_punct('{')) {
                            pending = Some(Pending::Type(ty));
                        }
                        t = j;
                    }
                    "fn" => {
                        if let Some(name) = toks.get(t + 1).and_then(|x| x.ident()) {
                            // Consume the signature: first `{` at paren depth
                            // 0 opens the body; `;` abandons (trait decl).
                            let mut j = t + 2;
                            let mut pd = 0i64;
                            while j < toks.len() {
                                match &toks[j].kind {
                                    Tok::Punct('(') => pd += 1,
                                    Tok::Punct(')') => pd -= 1,
                                    Tok::Punct('{') if pd == 0 => break,
                                    Tok::Punct(';') if pd == 0 => break,
                                    _ => {}
                                }
                                j += 1;
                            }
                            if toks.get(j).is_some_and(|x| x.is_punct('{')) {
                                pending = Some(Pending::Fn {
                                    name: name.to_string(),
                                    sig_line: toks[t].line,
                                });
                            }
                            t = j; // the `{`/`;` handler runs next
                        } else {
                            t += 1;
                        }
                    }
                    "for" | "while" | "loop" => {
                        // Loop keyword inside a fn body. `for<'a>` is a
                        // higher-ranked bound, not a loop.
                        let hrtb = toks.get(t + 1).is_some_and(|x| x.is_punct('<'));
                        if current_fn(&scopes).is_some() && !hrtb && pending.is_none() {
                            pending = Some(Pending::Loop { paren_depth });
                        }
                        t += 1;
                    }
                    _ if KEYWORDS.contains(&id)
                        && id != "Self"
                        && id != "self"
                        && id != "crate"
                        && id != "super" =>
                    {
                        t += 1;
                    }
                    _ => {
                        // Potential call: `path::to::f(` / `f(` / `Self::f(`.
                        let prev_dot = t > 0 && toks[t - 1].is_punct('.');
                        if prev_dot {
                            t += 1;
                            continue;
                        }
                        let start_line = tok.line;
                        let mut segs: Vec<String> = vec![id.to_string()];
                        let mut j = t + 1;
                        loop {
                            if is_path_sep(&toks, j) {
                                // `::<turbofish>` or `::ident`.
                                let after = j + 2;
                                if toks.get(after).is_some_and(|x| x.is_punct('<')) {
                                    let nj = skip_turbofish(&toks, j);
                                    if nj == j {
                                        // Unclosed turbofish: stop the path
                                        // walk instead of spinning on `j`.
                                        break;
                                    }
                                    j = nj;
                                    continue;
                                }
                                if let Some(nx) = toks.get(after).and_then(|x| x.ident()) {
                                    segs.push(nx.to_string());
                                    j = after + 1;
                                    continue;
                                }
                                j = after;
                                break;
                            }
                            break;
                        }
                        let is_macro = toks.get(j).is_some_and(|x| x.is_punct('!'));
                        let is_call = toks.get(j).is_some_and(|x| x.is_punct('('));
                        if is_call && !is_macro {
                            if let Some(f) = current_fn(&scopes) {
                                let last = segs.last().map(String::as_str).unwrap_or("");
                                if !KEYWORDS.contains(&last) || last == "Self" {
                                    fns[f].calls.push(CallSite {
                                        line: start_line,
                                        path: segs.join("::"),
                                        method: false,
                                        on_self: false,
                                    });
                                }
                            }
                        }
                        t = j.max(t + 1);
                    }
                }
            }
            _ => {
                t += 1;
            }
        }
    }
    // Unbalanced braces at EOF (should not happen on rustc-accepted code):
    // close any open fns at the last line so ranges stay usable.
    let last_line = file.lines.len().saturating_sub(1);
    for s in scopes {
        match s {
            Scope::Fn(i) => fns[i].body.1 = last_line,
            Scope::Loop(start, f) => fns[f].loops.push((start, last_line)),
            _ => {}
        }
    }
    ParsedFile { fns }
}

/// Is `toks[j], toks[j+1]` a `::` path separator (adjacent colons)?
fn is_path_sep(toks: &[Token], j: usize) -> bool {
    matches!((toks.get(j), toks.get(j + 1)),
        (Some(a), Some(b)) if a.is_punct(':') && b.is_punct(':')
            && a.line == b.line && b.col == a.col + 1)
}

/// Is `toks[t+1]` the same punct `c` directly adjacent to `toks[t]`?
fn is_adjacent_punct(toks: &[Token], t: usize, c: char) -> bool {
    matches!((toks.get(t), toks.get(t + 1)),
        (Some(a), Some(b)) if b.kind == Tok::Punct(c)
            && a.line == b.line && b.col == a.col + 1)
}

/// If `toks[j]` starts `::<...>`, return the index after the closing `>`;
/// otherwise return `j`.
fn skip_turbofish(toks: &[Token], j: usize) -> usize {
    if !is_path_sep(toks, j) || !toks.get(j + 2).is_some_and(|x| x.is_punct('<')) {
        return j;
    }
    let mut k = j + 2;
    let mut depth = 0i64;
    while k < toks.len() {
        match &toks[k].kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            // After `::` the `<` is necessarily a turbofish, so parens are
            // type syntax (`channel::<()>()`, fn-pointer params) — walk
            // through them. A statement boundary means the source was not
            // what we thought: give up without consuming.
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return j,
            _ => {}
        }
        k += 1;
    }
    j
}

/// Record a binary `+`, `*`, `<<` (or `+=`, `*=`, `<<=`) site when the
/// previous token ends an expression. Deref `*x`, unary contexts, and
/// generic `<` are excluded by the prev-token test plus the adjacency
/// requirement for `<<`.
fn record_arith(
    toks: &[Token],
    t: usize,
    op: char,
    scopes: &[Scope],
    fns: &mut [FnItem],
    current_fn: impl Fn(&[Scope]) -> Option<usize>,
) {
    let Some(f) = current_fn(scopes) else { return };
    let prev = match t.checked_sub(1).and_then(|p| toks.get(p)) {
        Some(p) => p,
        None => return,
    };
    let prev_ends_expr = matches!(
        &prev.kind,
        Tok::Ident(_) | Tok::Num(_) | Tok::Punct(')') | Tok::Punct(']')
    ) && !prev.ident().is_some_and(|w| KEYWORDS.contains(&w));
    if !prev_ends_expr {
        return;
    }
    let (opname, operand_at): (&'static str, usize) = match op {
        '<' => {
            if !is_adjacent_punct(toks, t, '<') {
                return; // single `<`: comparison or generics
            }
            if toks.get(t + 2).is_some_and(|x| x.is_punct('=')) {
                ("<<=", t + 3)
            } else {
                ("<<", t + 2)
            }
        }
        '+' => {
            if toks.get(t + 1).is_some_and(|x| x.is_punct('=')) {
                ("+=", t + 2)
            } else {
                ("+", t + 1)
            }
        }
        '*' => {
            if toks.get(t + 1).is_some_and(|x| x.is_punct('=')) {
                ("*=", t + 2)
            } else {
                ("*", t + 1)
            }
        }
        _ => return,
    };
    let lhs = prev.ident().unwrap_or("").to_string();
    let rhs = toks
        .get(operand_at)
        .and_then(|x| match &x.kind {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    fns[f].arith.push(ArithSite {
        line: toks[t].line,
        op: opname,
        lhs,
        rhs,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::parse_source;

    fn parse(rel: &str, src: &str) -> ParsedFile {
        parse_items(&parse_source(rel, src))
    }

    #[test]
    fn module_paths_from_file_paths() {
        assert_eq!(module_path_of("crates/szx-core/src/lib.rs"), "szx_core");
        assert_eq!(
            module_path_of("crates/szx-core/src/decode.rs"),
            "szx_core::decode"
        );
        assert_eq!(
            module_path_of("crates/szx-core/src/simd/mod.rs"),
            "szx_core::simd"
        );
        assert_eq!(
            module_path_of("crates/szx-core/src/simd/x86.rs"),
            "szx_core::simd::x86"
        );
        assert_eq!(module_path_of("crates/szx-cli/src/main.rs"), "szx_cli");
        assert_eq!(
            module_path_of("tests/tests/roundtrip.rs"),
            "tests::tests::roundtrip"
        );
    }

    #[test]
    fn fn_items_get_symbols_and_body_ranges() {
        let p = parse(
            "crates/szx-core/src/decode.rs",
            "pub fn decompress(b: &[u8]) -> Result<Vec<f32>> {\n\
             helper(b);\n\
             }\n\
             fn helper(b: &[u8]) {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].sym, "szx_core::decode::decompress");
        assert_eq!(p.fns[0].body, (0, 2));
        assert_eq!(p.fns[1].sym, "szx_core::decode::helper");
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].path, "helper");
    }

    #[test]
    fn impl_methods_are_qualified_by_type() {
        let p = parse(
            "crates/szx-core/src/stream.rs",
            "impl<'a> StreamIndex<'a> {\n\
             pub(crate) fn build(b: &[u8]) -> Result<Self> { Cursor::new(b); Ok(x) }\n\
             }\n\
             impl fmt::Debug for Header {\n\
             fn fmt(&self, f: &mut fmt::Formatter) { self.go() }\n\
             }\n",
        );
        assert_eq!(p.fns[0].sym, "szx_core::stream::StreamIndex::build");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("StreamIndex"));
        assert_eq!(p.fns[1].sym, "szx_core::stream::Header::fmt");
        let m = &p.fns[1].calls[0];
        assert!(m.method && m.on_self && m.path == "go");
    }

    #[test]
    fn nested_mods_extend_the_symbol_path() {
        let p = parse(
            "crates/szx-core/src/lib.rs",
            "mod inner {\n pub fn f() {}\n }\n",
        );
        assert_eq!(p.fns[0].sym, "szx_core::inner::f");
    }

    #[test]
    fn calls_capture_paths_and_turbofish() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn f() {\n\
             dekernels::decode_nonconstant_block(p);\n\
             Vec::<u8>::with_capacity(4);\n\
             Self::parse(b);\n\
             write!(out, \"x\");\n\
             s.collect::<Vec<_>>();\n\
             }\n",
        );
        let paths: Vec<&str> = p.fns[0].calls.iter().map(|c| c.path.as_str()).collect();
        assert!(paths.contains(&"dekernels::decode_nonconstant_block"));
        assert!(paths.contains(&"Vec::with_capacity"), "{paths:?}");
        assert!(paths.contains(&"Self::parse"));
        assert!(paths.contains(&"collect"));
        // Macros are not calls.
        assert!(!paths.iter().any(|p| p.contains("write")), "{paths:?}");
    }

    #[test]
    fn unit_type_turbofish_terminates_and_captures_the_call() {
        // Regression: `channel::<()>()` once looped forever — the turbofish
        // skipper refused the inner parens and the path walk never advanced.
        let p = parse(
            "crates/x/src/a.rs",
            "fn f() {\n\
             let (tx, rx) = mpsc::channel::<()>();\n\
             let v = iter.collect::<Vec<(usize, u8)>>();\n\
             }\n",
        );
        let paths: Vec<&str> = p.fns[0].calls.iter().map(|c| c.path.as_str()).collect();
        assert!(paths.contains(&"mpsc::channel"), "{paths:?}");
        assert!(paths.contains(&"collect"), "{paths:?}");
    }

    #[test]
    fn attributes_are_not_calls() {
        let p = parse(
            "crates/x/src/a.rs",
            "#[derive(Debug, Clone)]\nstruct S;\nfn f() { #[allow(dead_code)] g(); }\n",
        );
        let paths: Vec<&str> = p.fns[0].calls.iter().map(|c| c.path.as_str()).collect();
        assert_eq!(paths, vec!["g"]);
    }

    #[test]
    fn loop_bodies_are_ranged_per_fn() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn f(v: &[u8]) {\n\
             for b in v {\n\
             g(b);\n\
             }\n\
             let mut i = 0;\n\
             while i < 4 {\n\
             i += 1;\n\
             }\n\
             }\n",
        );
        let mut loops = p.fns[0].loops.clone();
        loops.sort();
        assert_eq!(loops, vec![(1, 3), (5, 7)]);
    }

    #[test]
    fn closure_in_loop_header_does_not_steal_the_body() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn f(v: &[u8]) {\n\
             for b in v.iter().map(|x| { x }) {\n\
             g(b);\n\
             }\n\
             }\n",
        );
        assert_eq!(p.fns[0].loops, vec![(1, 3)], "{:?}", p.fns[0].loops);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn f<F: for<'a> Fn(&'a u8)>(g: F) { g(&1); }\n",
        );
        assert!(p.fns[0].loops.is_empty(), "{:?}", p.fns[0].loops);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() { prod() }\n}\n",
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert_eq!(p.fns[1].sym, "x::a::tests::t");
    }

    #[test]
    fn arith_sites_record_operands_and_compound_ops() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn f(pos: usize, len: usize) -> usize {\n\
             let end = pos + len;\n\
             let w = x << 3;\n\
             pos += 1;\n\
             let d = *ptr;\n\
             let v: Vec<Vec<u8>> = q(a < b);\n\
             end * 2\n\
             }\n",
        );
        let ops: Vec<(&str, &str, &str)> = p.fns[0]
            .arith
            .iter()
            .map(|a| (a.op, a.lhs.as_str(), a.rhs.as_str()))
            .collect();
        assert!(ops.contains(&("+", "pos", "len")), "{ops:?}");
        assert!(ops.contains(&("<<", "x", "")), "{ops:?}");
        assert!(ops.contains(&("+=", "pos", "")), "{ops:?}");
        assert!(ops.contains(&("*", "end", "")), "{ops:?}");
        // Deref and generics/comparison do not register.
        assert!(!ops.iter().any(|o| o.0 == "*" && o.1.is_empty()), "{ops:?}");
        assert_eq!(ops.iter().filter(|o| o.0 == "<<").count(), 1, "{ops:?}");
    }

    #[test]
    fn brace_balance_survives_struct_literals_and_match() {
        let p = parse(
            "crates/x/src/a.rs",
            "fn f() -> S {\n\
             let s = S { a: 1, b: vec![2] };\n\
             match s.a {\n\
             1 => g(),\n\
             _ => {}\n\
             }\n\
             s\n\
             }\n\
             fn tail() {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].body, (0, 7));
        assert_eq!(p.fns[1].sym, "x::a::tail");
    }
}
