//! Workspace-wide call graph over the items of [`crate::parse`].
//!
//! Resolution is name-based — there is no type inference — so it is tuned
//! to be *honest* rather than complete:
//!
//! * **Qualified path calls** (`dekernels::decode_nonconstant_block(…)`,
//!   `Header::parse(…)`, `crate::x::f(…)`) resolve by suffix match against
//!   fully qualified symbols, preferring same-file, then same-crate
//!   candidates. These are the precise edges the rules lean on.
//! * **Bare calls** (`helper(…)`) resolve same-file first — the dominant
//!   Rust idiom — then same-crate, then workspace-wide free functions.
//! * **Method calls** (`x.parse(…)`) are the ambiguous case: a name-only
//!   match against every `impl` method would fabricate edges through std
//!   shadows (`.len()`, `.get()`, …) and force untruthful annotations on
//!   whatever they happen to reach. Receiver-`self` calls resolve against
//!   the caller's own impl type; other receivers resolve only when the
//!   name is not on the std-shadow blocklist, tiered same-file → same
//!   crate → workspace.
//!
//! Unresolved calls (std, rayon, unknown methods) simply have no edge; the
//! fixture suite proves the edges the rules *require* do exist.

use std::collections::{HashMap, VecDeque};

use crate::parse::{CallSite, FnItem, ParsedFile};

/// Method names whose workspace definitions shadow ubiquitous std methods;
/// resolving them by name alone would wire false edges through the graph.
/// Calls to these resolve only via an explicit qualified path
/// (`Type::name(…)`) or a receiver-`self` match inside the defining impl.
const METHOD_SHADOWS: &[&str] = &[
    "len", "is_empty", "get", "fill", "parse", "clone", "push", "pop", "insert", "remove",
    "extend", "iter", "store", "load", "swap", "send", "recv", "join", "lock", "contains", "add",
    "sub", "set", "set_max", "observe", "next", "write", "read", "flush", "take", "clear", "new",
    "default", "fmt", "drop", "min", "max", "finish", "reset", "state",
];

/// One function node plus the file it came from.
#[derive(Debug)]
pub struct Node {
    pub item: FnItem,
    /// Index into the audit's file list.
    pub file: usize,
    /// Workspace-relative path (duplicated for rendering convenience).
    pub rel_path: String,
    /// Crate ident (first segment of the symbol path).
    pub krate: String,
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    /// 0-based line of the call site in the caller's file.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    pub edges: Vec<Vec<Edge>>,
    /// Total resolved edge count (for the report's counters).
    pub edge_count: usize,
}

/// A step in a reported call chain.
#[derive(Debug, Clone)]
pub struct ChainStep {
    pub sym: String,
    pub rel_path: String,
    /// 1-based line: the call site that took the traversal here (the entry
    /// step carries its signature line).
    pub line: usize,
}

impl CallGraph {
    /// Build the graph from every parsed file. `files` pairs each parsed
    /// item set with its workspace-relative path.
    pub fn build(files: &[(String, ParsedFile)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, (rel, parsed)) in files.iter().enumerate() {
            for item in &parsed.fns {
                let krate = item.sym.split("::").next().unwrap_or_default().to_string();
                nodes.push(Node {
                    item: item.clone(),
                    file: fi,
                    rel_path: rel.clone(),
                    krate,
                });
            }
        }

        // Name index: bare name → node indices.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.item.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let mut edge_count = 0usize;
        for i in 0..nodes.len() {
            let calls = nodes[i].item.calls.clone();
            for call in &calls {
                let targets = resolve(&nodes, &by_name, i, call);
                for tgt in targets {
                    if tgt != i {
                        edges[i].push(Edge {
                            callee: tgt,
                            line: call.line,
                        });
                        edge_count += 1;
                    }
                }
            }
        }
        CallGraph {
            nodes,
            edges,
            edge_count,
        }
    }

    /// Every node reachable from `entries` (indices), with, for each, the
    /// chain of steps from its entry point. Entries themselves are
    /// included. Test fns never traverse.
    pub fn reach(&self, entries: &[usize]) -> HashMap<usize, Vec<ChainStep>> {
        let mut chains: HashMap<usize, Vec<ChainStep>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if self.nodes[e].item.is_test || chains.contains_key(&e) {
                continue;
            }
            chains.insert(
                e,
                vec![ChainStep {
                    sym: self.nodes[e].item.sym.clone(),
                    rel_path: self.nodes[e].rel_path.clone(),
                    line: self.nodes[e].item.sig_line + 1,
                }],
            );
            queue.push_back(e);
        }
        while let Some(i) = queue.pop_front() {
            let base = chains.get(&i).cloned().unwrap_or_default();
            for edge in &self.edges[i] {
                let c = edge.callee;
                if self.nodes[c].item.is_test || chains.contains_key(&c) {
                    continue;
                }
                let mut chain = base.clone();
                chain.push(ChainStep {
                    sym: self.nodes[c].item.sym.clone(),
                    rel_path: self.nodes[c].rel_path.clone(),
                    line: edge.line + 1,
                });
                chains.insert(c, chain);
                queue.push_back(c);
            }
        }
        chains
    }
}

/// Resolve one call site from node `caller` to target node indices.
fn resolve(
    nodes: &[Node],
    by_name: &HashMap<&str, Vec<usize>>,
    caller: usize,
    call: &CallSite,
) -> Vec<usize> {
    let me = &nodes[caller];
    if call.method {
        let name = call.path.as_str();
        let Some(cands) = by_name.get(name) else {
            return Vec::new();
        };
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| nodes[c].item.impl_type.is_some())
            .collect();
        if methods.is_empty() {
            return Vec::new();
        }
        // `self.name(…)`: the receiver type is the caller's own impl type.
        if call.on_self {
            if let Some(ty) = &me.item.impl_type {
                let own: Vec<usize> = methods
                    .iter()
                    .copied()
                    .filter(|&c| {
                        nodes[c].item.impl_type.as_deref() == Some(ty) && nodes[c].krate == me.krate
                    })
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        if METHOD_SHADOWS.contains(&name) {
            return Vec::new();
        }
        return tiered(nodes, me, &methods);
    }

    // Path call. Normalize leading `crate`/`self`/`super` (suffix matching
    // below subsumes their module meaning) and `Self` (caller impl type).
    let mut segs: Vec<String> = call.path.split("::").map(str::to_string).collect();
    while segs
        .first()
        .is_some_and(|s| s == "crate" || s == "self" || s == "super")
    {
        segs.remove(0);
    }
    if segs.first().is_some_and(|s| s == "Self") {
        match &me.item.impl_type {
            Some(ty) => segs[0] = ty.clone(),
            None => return Vec::new(),
        }
    }
    if segs.is_empty() {
        return Vec::new();
    }
    let name = segs.last().cloned().unwrap_or_default();
    let Some(cands) = by_name.get(name.as_str()) else {
        return Vec::new();
    };

    if segs.len() == 1 {
        // Bare call: same-file fns (free or same-impl associated) first.
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| nodes[c].file == me.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| nodes[c].item.impl_type.is_none())
            .collect();
        return tiered(nodes, me, &free);
    }

    // Qualified: match `…::a::b::name` as a segment-suffix of the symbol.
    let suffix = segs.join("::");
    let matches: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            let sym = &nodes[c].item.sym;
            sym == &suffix || sym.ends_with(&format!("::{suffix}"))
        })
        .collect();
    tiered(nodes, me, &matches)
}

/// Narrow `cands` to the best locality tier: same file, then same crate,
/// then all.
fn tiered(nodes: &[Node], me: &Node, cands: &[usize]) -> Vec<usize> {
    if cands.is_empty() {
        return Vec::new();
    }
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].file == me.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].krate == me.krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_items;
    use crate::source::parse_source;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse_items(&parse_source(rel, src))))
            .collect();
        CallGraph::build(&parsed)
    }

    fn idx(g: &CallGraph, sym: &str) -> usize {
        g.nodes.iter().position(|n| n.item.sym == sym).unwrap()
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let f = idx(g, from);
        let t = idx(g, to);
        g.edges[f].iter().any(|e| e.callee == t)
    }

    #[test]
    fn qualified_cross_file_calls_resolve() {
        let g = graph(&[
            (
                "crates/szx-core/src/decode.rs",
                "pub fn decompress(b: &[u8]) { dekernels::decode_block(b); }\n",
            ),
            (
                "crates/szx-core/src/dekernels.rs",
                "pub(crate) fn decode_block(b: &[u8]) {}\n",
            ),
        ]);
        assert!(has_edge(
            &g,
            "szx_core::decode::decompress",
            "szx_core::dekernels::decode_block"
        ));
        assert_eq!(g.edge_count, 1);
    }

    #[test]
    fn bare_calls_prefer_same_file_then_crate() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "fn top() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/a/src/y.rs", "pub fn helper() {}\n"),
            (
                "crates/b/src/z.rs",
                "pub fn helper() {}\nfn user() { helper(); }\n",
            ),
        ]);
        assert!(has_edge(&g, "a::x::top", "a::x::helper"));
        assert!(!has_edge(&g, "a::x::top", "a::y::helper"));
        assert!(has_edge(&g, "b::z::user", "b::z::helper"));
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl_type() {
        let g = graph(&[(
            "crates/a/src/x.rs",
            "impl Reader {\n\
             pub fn parse(&self) { self.load(); }\n\
             fn load(&self) {}\n\
             }\n\
             impl Other {\n\
             fn load(&self) {}\n\
             }\n",
        )]);
        assert!(has_edge(&g, "a::x::Reader::parse", "a::x::Reader::load"));
        assert!(!has_edge(&g, "a::x::Reader::parse", "a::x::Other::load"));
    }

    #[test]
    fn std_shadow_method_names_do_not_wire_false_edges() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "pub fn walk(v: &[u8]) { let n = v.len(); }\n",
            ),
            (
                "crates/a/src/y.rs",
                "impl Archive { pub fn len(&self) -> usize { 0 } }\n",
            ),
        ]);
        assert!(!has_edge(&g, "a::x::walk", "a::y::Archive::len"));
        // But the qualified form still resolves.
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "pub fn walk(a: &Archive) { Archive::len(a); }\n",
            ),
            (
                "crates/a/src/y.rs",
                "impl Archive { pub fn len(&self) -> usize { 0 } }\n",
            ),
        ]);
        assert!(has_edge(&g, "a::x::walk", "a::y::Archive::len"));
    }

    #[test]
    fn distinctive_method_names_resolve_tiered() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "pub fn drive(r: &Reader) { r.decode_range(0, 4); }\n",
            ),
            (
                "crates/a/src/y.rs",
                "impl Reader { pub fn decode_range(&self, a: usize, b: usize) {} }\n",
            ),
        ]);
        assert!(has_edge(&g, "a::x::drive", "a::y::Reader::decode_range"));
    }

    #[test]
    fn self_path_calls_use_the_impl_type() {
        let g = graph(&[(
            "crates/a/src/x.rs",
            "impl Header {\n\
             pub fn parse(b: &[u8]) {}\n\
             pub fn read(b: &[u8]) { Self::parse(b); }\n\
             }\n",
        )]);
        assert!(has_edge(&g, "a::x::Header::read", "a::x::Header::parse"));
    }

    #[test]
    fn reach_reports_full_chains_and_skips_tests() {
        let g = graph(&[
            (
                "crates/szx-core/src/decode.rs",
                "pub fn decompress(b: &[u8]) { mid(b); }\n\
                 fn mid(b: &[u8]) { float::load(b); }\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                 fn t() { super::secret(); }\n\
                 }\n\
                 fn secret() {}\n",
            ),
            (
                "crates/szx-core/src/float.rs",
                "pub fn load(b: &[u8]) -> f32 { 0.0 }\n",
            ),
        ]);
        let entry = idx(&g, "szx_core::decode::decompress");
        let reach = g.reach(&[entry]);
        let tgt = idx(&g, "szx_core::float::load");
        let chain = reach.get(&tgt).expect("load reachable");
        let syms: Vec<&str> = chain.iter().map(|s| s.sym.as_str()).collect();
        assert_eq!(
            syms,
            vec![
                "szx_core::decode::decompress",
                "szx_core::decode::mid",
                "szx_core::float::load"
            ]
        );
        // `secret` is only called from a test module: unreachable.
        assert!(!reach.contains_key(&idx(&g, "szx_core::decode::secret")));
    }

    #[test]
    fn recursion_terminates() {
        let g = graph(&[(
            "crates/a/src/x.rs",
            "pub fn a() { b(); }\nfn b() { a(); }\n",
        )]);
        let reach = g.reach(&[idx(&g, "a::x::a")]);
        assert_eq!(reach.len(), 2);
    }
}
