//! SARIF 2.1.0 renderer.
//!
//! Emits a single-run SARIF log suitable for GitHub code scanning
//! (`github/codeql-action/upload-sarif`). The output is deterministic —
//! findings arrive pre-sorted from the report, rule metadata comes from the
//! static [`RULE_IDS`] table, and there are no timestamps — so the file can
//! be diffed across runs just like `results/AUDIT.json`.
//!
//! Mapping:
//! - each rule id becomes a `tool.driver.rules[]` entry (`ruleId` matches),
//! - each finding becomes a `results[]` entry with one physical location,
//! - the stable finding fingerprint lands in
//!   `partialFingerprints.szxAuditFingerprint/v1`, which GitHub uses to
//!   track alert identity across commits,
//! - panic-reachability call chains are appended to the message text (code
//!   scanning renders only `message.text`, so the chain must live there).

use crate::report::{json_string, Report, RULE_IDS};
use std::fmt::Write as _;

/// Short human description per rule, surfaced in the SARIF rule metadata.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "unsafe-allowlist" => "`unsafe` appears outside the allowlisted modules",
        "unsafe-safety" => "`unsafe` block without an adjacent `// SAFETY:` comment",
        "forbid-unsafe" => "crate root is missing `#![forbid(unsafe_code)]`",
        "deny-unsafe-op" => "crate root is missing `#![deny(unsafe_op_in_unsafe_fn)]`",
        "deny-unsafe-code" => "crate root is missing `#![deny(unsafe_code)]`",
        "target-feature-guard" => {
            "`#[target_feature]` fn without a SAFETY note naming the runtime detection guard"
        }
        "panic-reach" => {
            "panic vector transitively reachable from a decode entry point without `// PANIC-OK:`"
        }
        "hot-loop-alloc" => {
            "allocation in a loop body reachable from a kernel entry point without `// ALLOC-OK:`"
        }
        "checked-arith" => "unchecked `+`/`*`/`<<` on a length/offset local on a parse path",
        "atomics-protocol" => "atomic access violating the documented ordering protocol",
        "cast-note" => "numeric cast on a kernel path without a `// CAST:` note",
        _ => "szx-audit rule",
    }
}

/// Render `report` as a SARIF 2.1.0 log.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"szx-audit\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/szx/szx\",\n");
    out.push_str("          \"version\": \"2.0.0\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in RULE_IDS.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_string(rule),
            json_string(rule_description(rule))
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let mut message = f.message.clone();
        if !f.chain.is_empty() {
            message.push_str("\ncall chain:\n");
            for step in &f.chain {
                message.push_str("  -> ");
                message.push_str(step);
                message.push('\n');
            }
        }
        let _ = write!(
            out,
            "{sep}\n        {{\n          \"ruleId\": {},\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": {}}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}\n          ],\n          \
             \"partialFingerprints\": {{\"szxAuditFingerprint/v1\": {}}}\n        }}",
            json_string(f.rule),
            json_string(&message),
            json_string(&f.path),
            f.line.max(1),
            json_string(&f.fingerprint)
        );
    }
    if report.findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    #[test]
    fn empty_report_is_valid_skeleton() {
        let s = to_sarif(&Report::default());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"szx-audit\""));
        assert!(s.contains("\"results\": []"));
        // Every rule id is declared in driver metadata.
        for rule in RULE_IDS {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "missing {rule}");
        }
    }

    #[test]
    fn findings_map_to_results_with_fingerprints_and_chains() {
        let mut r = Report::default();
        r.findings.push(
            Finding::in_symbol(
                "panic-reach",
                "crates/szx-core/src/decode.rs",
                42,
                "szx_core::decode::helper",
                "x.unwrap()",
                "`.unwrap()` reachable from `szx_core::decode::decompress`",
            )
            .with_chain(vec![
                "szx_core::decode::decompress (crates/szx-core/src/decode.rs:10)".into(),
                "szx_core::decode::helper (crates/szx-core/src/decode.rs:42)".into(),
            ]),
        );
        let s = to_sarif(&r);
        assert!(s.contains("\"ruleId\": \"panic-reach\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("szxAuditFingerprint/v1"));
        assert!(s.contains(&r.findings[0].fingerprint));
        assert!(s.contains("call chain:"), "{s}");
        assert!(s.contains("-> szx_core::decode::decompress"));
        // Deterministic.
        assert_eq!(s, to_sarif(&r));
    }
}
