//! CLI wrapper:
//!
//! ```text
//! szx-audit [--root DIR] [--json FILE] [--sarif FILE] [--baseline FILE] [--quiet]
//! szx-audit explain <rule>
//! ```
//!
//! Prints `path:line: [rule] message` diagnostics (with call chains for the
//! graph rules) and a summary, optionally writes the deterministic JSON
//! report and a SARIF 2.1.0 file for code-scanning upload, and exits 1 when
//! any finding remains — so CI can gate on a plain exit code. With
//! `--baseline`, findings whose fingerprints appear in the baseline report
//! are tolerated and only *new* findings fail the run, so a new rule can
//! land before its annotation sweep is complete.
//!
//! `explain <rule>` prints the rule's contract, its annotation escape
//! hatch, and a minimal violating example — sourced verbatim from the
//! fixture suite under `tests/fixtures/ws/`, so the documentation cannot
//! drift from what the analyzer actually flags.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use szx_audit::report::{baseline_fingerprints, RULE_IDS};

/// Per-rule documentation for `explain`: rule id, contract, escape hatch,
/// and the fixture files (path, source) seeding a minimal violation.
type RuleDoc = (
    &'static str,
    &'static str,
    &'static str,
    &'static [(&'static str, &'static str)],
);

/// `include_str!` ties the examples to the same sources the fixture tests
/// assert on, so the documentation cannot drift from the analyzer.
const EXPLAIN: &[RuleDoc] = &[
    (
        "unsafe-allowlist",
        "`unsafe` appears only in the allowlisted unsafe surfaces \
         (szx-telemetry's trace/json modules and crates/szx-core/src/simd/).",
        "None — move the code into an allowlisted file or make it safe. The \
         allowlist itself changes only by editing rules::UNSAFE_ALLOWLIST \
         alongside a review of the new surface.",
        &[(
            "crates/szx-core/src/huffman.rs",
            include_str!("../tests/fixtures/ws/crates/szx-core/src/huffman.rs"),
        )],
    ),
    (
        "unsafe-safety",
        "Every allowlisted `unsafe` site carries a `// SAFETY:` comment on \
         or directly above the site stating why it is sound.",
        "`// SAFETY: <proof>` — the comment *is* the compliance mechanism.",
        &[(
            "crates/szx-telemetry/src/json.rs",
            include_str!("../tests/fixtures/ws/crates/szx-telemetry/src/json.rs"),
        )],
    ),
    (
        "forbid-unsafe",
        "Safe crates declare `#![forbid(unsafe_code)]` at the crate root, \
         so no module can opt back in.",
        "None — add the attribute. A crate that newly needs unsafe moves to \
         the deny lists instead (see rules::DENY_UNSAFE_OP_ROOTS).",
        &[(
            "crates/szx-data/src/lib.rs",
            include_str!("../tests/fixtures/ws/crates/szx-data/src/lib.rs"),
        )],
    ),
    (
        "deny-unsafe-op",
        "Crates allowed to hold unsafe code deny `unsafe_op_in_unsafe_fn`, \
         so every unsafe operation sits in an explicit `unsafe {}` block \
         with its own SAFETY comment.",
        "None — add the attribute at the crate root.",
        &[(
            "crates/szx-telemetry/src/lib.rs",
            include_str!("../tests/fixtures/ws/crates/szx-telemetry/src/lib.rs"),
        )],
    ),
    (
        "deny-unsafe-code",
        "Crates whose unsafe surface is confined to allowlisted files carry \
         `#![deny(unsafe_code)]` at the root; the allowlisted files opt back \
         in with an inner `#![allow(unsafe_code)]`.",
        "None — add the attribute at the crate root.",
        &[(
            "crates/szx-core/src/lib.rs",
            include_str!("../tests/fixtures/ws/crates/szx-core/src/lib.rs"),
        )],
    ),
    (
        "target-feature-guard",
        "Every dispatch-layer call of a `#[target_feature]` backend sits \
         behind a `// SAFETY:` note that names the runtime feature-detection \
         guard (the note must mention detection).",
        "`// SAFETY: ... runtime feature detection ...` naming the guard, \
         e.g. the cached `is_x86_feature_detected!(\"avx2\")` check.",
        &[
            (
                "crates/szx-core/src/simd/mod.rs",
                include_str!("../tests/fixtures/ws/crates/szx-core/src/simd/mod.rs"),
            ),
            (
                "crates/szx-core/src/simd/x86.rs",
                include_str!("../tests/fixtures/ws/crates/szx-core/src/simd/x86.rs"),
            ),
        ],
    ),
    (
        "panic-reach",
        "No panic vector (`unwrap`/`expect`/panicking macro/unchecked \
         indexing) is transitively reachable from a decode entry point — \
         `decompress*`, the FrameReader/RandomAccess/ArchiveReader surfaces, \
         and the header/TOC/stream-index parsers. The analyzer walks the \
         workspace call graph and reports the full call chain from the \
         entry point to the offending line.",
        "`// PANIC-OK: <proof>` on or directly above the site, stating the \
         invariant that makes the panic unreachable (e.g. a bounds check \
         performed where the value was parsed).",
        &[
            (
                "crates/szx-core/src/decode.rs",
                include_str!("../tests/fixtures/ws/crates/szx-core/src/decode.rs"),
            ),
            (
                "crates/szx-core/src/dekernels.rs",
                include_str!("../tests/fixtures/ws/crates/szx-core/src/dekernels.rs"),
            ),
        ],
    ),
    (
        "hot-loop-alloc",
        "Loop bodies of functions reachable from the kernel/SIMD entry \
         points do not allocate (`Vec::new`, `vec![]`, `to_vec`, `clone`, \
         `collect`, `Box::new`, `format!`, ...) — the paper's throughput \
         claim rests on the block loops reusing the scratch arenas.",
        "`// ALLOC-OK: <reason>` on or directly above the site (e.g. a cold \
         error path taken at most once per stream).",
        &[(
            "crates/szx-core/src/kernels.rs",
            include_str!("../tests/fixtures/ws/crates/szx-core/src/kernels.rs"),
        )],
    ),
    (
        "checked-arith",
        "Raw `+`/`*`/`<<` on length/offset-named locals in cursor/header/\
         TOC/stream-index code must be `checked_*`/`saturating_*`: on a \
         path that computes offsets from attacker-controllable bytes, an \
         unchecked add can wrap and defeat a later bounds check.",
        "`// ARITH-OK: <proof>` that the arithmetic cannot wrap, or \
         `wrapping_*` with a `// CAST:` note when wrapping is intended.",
        &[(
            "crates/szx-core/src/cursor.rs",
            include_str!("../tests/fixtures/ws/crates/szx-core/src/cursor.rs"),
        )],
    ),
    (
        "atomics-protocol",
        "Publish fields in the lock-free modules (the trace buffer's `len`, \
         the zone slot's `gen`) pair release stores with acquire loads; \
         relaxed operations need justification.",
        "`// ORDERING: <reason>` — owner-thread relaxed loads, or relaxed \
         stores in a module carrying a release `fence` (the seqlock \
         write-entry pattern).",
        &[(
            "crates/szx-telemetry/src/trace.rs",
            include_str!("../tests/fixtures/ws/crates/szx-telemetry/src/trace.rs"),
        )],
    ),
    (
        "cast-note",
        "Narrowing `as` casts in kernel offset arithmetic carry a \
         `// CAST:` note stating why the value fits.",
        "`// CAST: <why the value fits>` on or directly above the cast.",
        &[(
            "crates/szx-core/src/simd/neon.rs",
            include_str!("../tests/fixtures/ws/crates/szx-core/src/simd/neon.rs"),
        )],
    ),
];

const USAGE: &str = "usage: szx-audit [--root DIR] [--json FILE] [--sarif FILE] \
                     [--baseline FILE] [--quiet]\n       szx-audit explain <rule>";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "explain" => return explain(args.next().as_deref()),
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a file path"),
            },
            "--sarif" => match args.next() {
                Some(v) => sarif_out = Some(PathBuf::from(v)),
                None => return usage("--sarif needs a file path"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a report path"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match szx_audit::run_audit(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("szx-audit: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("szx-audit: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = sarif_out {
        if let Err(e) = std::fs::write(&path, szx_audit::sarif::to_sarif(&report)) {
            eprintln!("szx-audit: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_text());
    }

    if let Some(path) = baseline {
        let known = match std::fs::read_to_string(&path) {
            Ok(s) => baseline_fingerprints(&s),
            Err(e) => {
                eprintln!("szx-audit: failed to read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let new = report.new_findings(&known);
        if !quiet {
            println!(
                "baseline: {} known fingerprint(s), {} finding(s) new",
                known.len(),
                new.len()
            );
        }
        return if new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Print one rule's contract, escape hatch, and seeded example.
fn explain(rule: Option<&str>) -> ExitCode {
    let Some(rule) = rule else {
        eprintln!(
            "szx-audit: explain needs a rule id\nrules: {}",
            RULE_IDS.join(", ")
        );
        return ExitCode::from(2);
    };
    let Some(&(id, contract, escape, examples)) = EXPLAIN.iter().find(|e| e.0 == rule) else {
        eprintln!(
            "szx-audit: unknown rule `{rule}`\nrules: {}",
            RULE_IDS.join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{id}");
    println!("{}", "=".repeat(id.len()));
    println!("\ncontract:\n  {}", rewrap(contract));
    println!("\nescape hatch:\n  {}", rewrap(escape));
    println!("\nviolating example (from the fixture suite):");
    for (path, text) in examples {
        println!("\n  --- tests/fixtures/ws/{path} ---");
        for line in text.lines() {
            println!("  {line}");
        }
    }
    ExitCode::SUCCESS
}

/// Re-wrap a doc string for 2-space-indented terminal output.
fn rewrap(text: &str) -> String {
    let words: Vec<&str> = text.split_whitespace().collect();
    let mut out = String::new();
    let mut col = 0usize;
    for w in words {
        if col > 0 && col + 1 + w.len() > 76 {
            out.push_str("\n  ");
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(w);
        col += w.len();
    }
    out
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("szx-audit: {msg}\n{USAGE}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_table_covers_every_rule_in_order() {
        let explained: Vec<&str> = EXPLAIN.iter().map(|e| e.0).collect();
        assert_eq!(explained, RULE_IDS, "EXPLAIN must track report::RULE_IDS");
        for &(id, contract, escape, examples) in EXPLAIN {
            assert!(!contract.is_empty() && !escape.is_empty(), "{id}");
            assert!(!examples.is_empty(), "{id} needs a fixture example");
        }
    }

    #[test]
    fn rewrap_preserves_words_and_bounds_lines() {
        let text = "a ".repeat(100);
        let wrapped = rewrap(&text);
        assert_eq!(wrapped.split_whitespace().count(), 100);
        assert!(wrapped.lines().all(|l| l.len() <= 78), "{wrapped}");
    }
}
